"""Fig. 18: flash write traffic per design.

Paper result: SkyByte reduces write traffic to the flash chips by 23.08x
on average -- the write log's coalescing window dwarfs the page cache's.
The context switch can add a little traffic back (more concurrent
threads, more compactions), visible as Full >= WP.
"""

from conftest import bench_cache, bench_jobs, bench_records, geomean, print_table

from repro.experiments.overall import fig18_write_traffic


def test_fig18_write_traffic(benchmark):
    rows = benchmark.pedantic(
        fig18_write_traffic,
        kwargs={"records": bench_records(), "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    print_table("Fig. 18: flash write traffic (Base-CSSD = 1.0, lower is better)", rows)
    reductions = {
        v: geomean([1.0 / max(rows[wl][v], 1e-9) for wl in rows])
        for v in next(iter(rows.values()))
    }
    print("geomean traffic reduction:",
          {v: round(r, 2) for v, r in reductions.items()})
    # Shape: the full design cuts write traffic on every workload, and
    # promotion alone also helps.
    for wl, row in rows.items():
        assert row["SkyByte-Full"] < 1.0
        assert row["SkyByte-P"] <= 1.05
    assert reductions["SkyByte-Full"] > 1.5
