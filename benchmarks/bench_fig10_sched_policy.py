"""Fig. 10: thread scheduling policies (RR / Random / CFS).

Paper result: the three policies deliver similar performance -- all give
waiting threads comparable chances to issue SSD requests -- so SkyByte
defaults to CFS, the standard Linux policy.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_table

from repro.experiments.design import fig10_scheduling_policies


def test_fig10_sched_policy(benchmark):
    rows = benchmark.pedantic(
        fig10_scheduling_policies,
        kwargs={"records": bench_records(), "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    table = {
        f"{wl}/{policy}": data
        for wl, policies in rows.items()
        for policy, data in policies.items()
    }
    print_table("Fig. 10: scheduling policies (normalized to RR)", table)
    for wl, policies in rows.items():
        times = [p["normalized_time"] for p in policies.values()]
        # Policies within ~40% of each other ("similar performance").
        assert max(times) / min(times) < 1.4
