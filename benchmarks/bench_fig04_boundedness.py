"""Fig. 4: memory- vs compute-bounded execution breakdown.

Paper result: memory-bounded cycles grow from 62.9-98.7% (DRAM) to
77-99.8% (CXL-SSD) -- the device turns everything memory-bound.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_table

from repro.experiments.motivation import fig4_boundedness


def test_fig04_boundedness(benchmark):
    rows = benchmark.pedantic(
        fig4_boundedness,
        kwargs={"records": bench_records(), "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    print_table("Fig. 4: memory-bounded fraction (paper: DRAM 63-99%, CSSD 77-99.8%)", rows)
    for wl, row in rows.items():
        assert row["cssd_memory_bound"] >= row["dram_memory_bound"] - 0.02
        assert row["cssd_memory_bound"] > 0.7
