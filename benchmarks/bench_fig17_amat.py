"""Fig. 17: average memory access time and its breakdown.

Paper result: SkyByte-WP/Full cut the flash component drastically; the
full design's AMAT lands within ~1.4x of the DRAM-Only ideal, with the
residual dominated by CXL protocol + SSD DRAM time.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_table

from repro.experiments.overall import fig17_amat


def test_fig17_amat(benchmark):
    rows = benchmark.pedantic(
        fig17_amat,
        kwargs={"records": bench_records(), "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    table = {
        f"{wl}/{variant}": data
        for wl, variants in rows.items()
        for variant, data in variants.items()
    }
    print_table("Fig. 17: AMAT (ns) and components", table)
    for wl, variants in rows.items():
        base = variants["Base-CSSD"]["amat_ns"]
        full = variants["SkyByte-Full"]["amat_ns"]
        dram = variants["DRAM-Only"]["amat_ns"]
        assert full < base  # SkyByte improves AMAT
        assert dram < full  # but the ideal stays ahead
        # The flash component shrinks from Base to Full.
        assert variants["SkyByte-Full"]["Flash"] <= variants["Base-CSSD"]["Flash"]
