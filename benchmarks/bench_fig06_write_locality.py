"""Fig. 6: per-page dirty-line locality of flash writebacks.

Paper result: dirty lines are even sparser than read-touched lines --
whole-page writebacks ship mostly-clean data, the write-amplification
SkyByte's cacheline log removes.
"""

from conftest import bench_records, print_series

from repro.experiments.motivation import fig6_write_locality


def test_fig06_write_locality(benchmark):
    rows = benchmark.pedantic(
        fig6_write_locality,
        kwargs={"records": bench_records() * 4},
        rounds=1,
        iterations=1,
    )
    series = {
        f"{wl} 1:{ratio}": {"<40% dirty": data["pages_below_40pct"],
                            "mean ratio": data["mean_ratio"]}
        for wl, ratios in rows.items()
        for ratio, data in ratios.items()
    }
    print_series("Fig. 6: pages flushed with <40% dirty lines", series)
    for wl, ratios in rows.items():
        # At the tightest ratio, flushed pages are mostly clean.
        assert ratios[128]["pages_below_40pct"] > 0.5
        assert ratios[128]["mean_ratio"] < 0.5
