"""Fig. 14: the headline ablation across all eight designs.

Paper result: SkyByte-Full outperforms Base-CSSD by 6.11x on average
(up to 16.35x), reaches 75% of the DRAM-Only ideal, and every individual
mechanism (P: 1.84x, C: 1.49x, W: 2.16x) improves on the baseline.  At
this reproduction's scale the ordering and direction hold with smaller
magnitudes (see EXPERIMENTS.md).
"""

from conftest import bench_cache, bench_jobs, bench_records, geomean, print_table

from repro.experiments.overall import fig14_overall
from repro.variants import MAIN_VARIANTS


def test_fig14_overall(benchmark):
    # The headline figure deserves longer traces: promotion needs enough
    # reuse after its warmup to pay off.
    records = max(bench_records(), 3000)
    rows = benchmark.pedantic(
        fig14_overall,
        kwargs={"records": records, "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Fig. 14: normalized execution time (Base-CSSD = 1.0, lower is better)",
        rows,
    )
    speedup = {
        v: geomean([1.0 / rows[wl][v] for wl in rows]) for v in MAIN_VARIANTS
    }
    print("geomean speedups over Base-CSSD:",
          {v: round(s, 2) for v, s in speedup.items()})

    # Shape assertions (paper's qualitative ordering):
    assert speedup["DRAM-Only"] > speedup["SkyByte-Full"] > 1.0
    assert speedup["SkyByte-Full"] >= speedup["SkyByte-WP"] * 0.95
    assert speedup["SkyByte-CP"] > speedup["SkyByte-P"]
    assert speedup["SkyByte-C"] > 1.0
    assert speedup["SkyByte-P"] > 0.98
