"""Fig. 19: SkyByte performance vs write-log size.

Paper result: a log of no more than 1/8 of the SSD DRAM already gives a
sufficient coalescing window for most workloads; going smaller hurts
write-heavy / high-locality workloads (srad, tpcc).
"""

from conftest import bench_cache, bench_jobs, bench_records, print_series

from repro.config import KB
from repro.experiments.sensitivity import fig19_log_size_performance


def test_fig19_logsize_perf(benchmark):
    sizes = (16 * KB, 64 * KB, 128 * KB, 256 * KB)
    rows = benchmark.pedantic(
        fig19_log_size_performance,
        kwargs={
            "jobs": bench_jobs(),
            "cache": bench_cache(),
            "records": bench_records(),
            "workloads": ["bc", "srad", "tpcc"],
            "log_sizes": sizes,
        },
        rounds=1,
        iterations=1,
    )
    series = {
        wl: {f"{s//KB}KB": t for s, t in sweep.items()} for wl, sweep in rows.items()
    }
    print_series("Fig. 19: normalized time vs log size (largest = 1.0)", series)
    for wl, sweep in rows.items():
        # The default (128KB = 1/8 of DRAM) should be within ~30% of the
        # biggest log -- "a small write log already provides a
        # sufficiently large coalescing window".
        assert sweep[128 * KB] <= sweep[16 * KB] * 1.3 or sweep[128 * KB] < 1.35
