"""Fig. 22: sensitivity to flash technology (ULL/ULL2/SLC/MLC).

Paper result: with slower flash, the write log and context switching
matter more (their job is hiding flash latency), and SkyByte-Full keeps
scaling with threads -- making cheap commodity NAND viable for
parallelizable applications.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_series

from repro.experiments.sensitivity import fig22_flash_latency


def test_fig22_flash_latency(benchmark):
    rows = benchmark.pedantic(
        fig22_flash_latency,
        kwargs={
            "jobs": bench_jobs(),
            "cache": bench_cache(),
            "records": bench_records(),
            "workloads": ["bc", "srad", "tpcc"],
            "timings": ("ULL", "SLC", "MLC"),
            "variants": ["SkyByte-WP"],
            "thread_counts": (24,),
        },
        rounds=1,
        iterations=1,
    )
    series = {
        f"{wl}/{timing}": cell
        for wl, timings in rows.items()
        for timing, cell in timings.items()
    }
    print_series("Fig. 22: normalized time per flash type (Full-24@ULL = 1.0)", series)
    for wl, timings in rows.items():
        # Slower flash slows everything down...
        assert timings["MLC"]["SkyByte-WP"] >= timings["ULL"]["SkyByte-WP"] * 0.9
        # ...but context switching keeps Full competitive: its MLC
        # penalty is no worse than WP's on every workload.
        full_penalty = timings["MLC"]["SkyByte-Full-24"] / max(
            timings["ULL"]["SkyByte-Full-24"], 1e-9
        )
        wp_penalty = timings["MLC"]["SkyByte-WP"] / max(
            timings["ULL"]["SkyByte-WP"], 1e-9
        )
        assert full_penalty <= wp_penalty * 1.5
