"""Fig. 23: alternative page migration mechanisms.

Paper result (normalized to SkyByte-C): SkyByte-CP beats SkyByte-CT
(TPP's sampling is less precise than per-page counters) and
AstriFlash-CXL (fully-associative hot-page placement beats
set-associative on-demand paging) by ~1.09x; SkyByte-WCT shows the write
log also composes with TPP; SkyByte-Full is best overall.
"""

from conftest import bench_cache, bench_jobs, bench_records, geomean, print_table

from repro.experiments.migration_study import fig23_migration_mechanisms


def test_fig23_migration(benchmark):
    rows = benchmark.pedantic(
        fig23_migration_mechanisms,
        kwargs={"records": bench_records(), "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    print_table("Fig. 23: normalized time (SkyByte-C = 1.0, lower is better)", rows)
    gm = {
        v: geomean([rows[wl][v] for wl in rows]) for v in next(iter(rows.values()))
    }
    print("geomean:", {v: round(t, 3) for v, t in gm.items()})
    # Shape: exact per-page tracking (CP) is not worse than sampling
    # (CT), migration beats no-migration, and the full design is the
    # best of the SkyByte mechanisms.  (AstriFlash-CXL over-performs at
    # this scale relative to the paper's 1.09x CP advantage -- its
    # on-demand host cache pays no CXL protocol cost and short traces
    # never expose its conflict-miss weakness; see EXPERIMENTS.md.)
    assert gm["SkyByte-CP"] <= gm["SkyByte-CT"] * 1.1
    assert gm["SkyByte-CP"] < 1.0  # migration helps over SkyByte-C
    skybyte_only = {v: t for v, t in gm.items() if v.startswith("SkyByte")}
    assert gm["SkyByte-Full"] <= min(t for v, t in skybyte_only.items()
                                     if v != "SkyByte-Full") * 1.05
