"""Fig. 15: SkyByte-Full throughput scaling with thread count.

Paper result: throughput tracks SSD bandwidth utilisation; workloads
with many flash reads (bfs-dense, srad) keep scaling, while those whose
flash latency is already near the switch overhead (bc, dlrm) saturate
around two threads per core.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_series

from repro.experiments.overall import fig15_thread_scaling
from repro.workloads.suites import representative_four


def test_fig15_threads(benchmark):
    rows = benchmark.pedantic(
        fig15_thread_scaling,
        kwargs={
            "jobs": bench_jobs(),
            "cache": bench_cache(),
            "records": bench_records(),
            "workloads": representative_four(),
            "thread_counts": (8, 16, 24, 48),
        },
        rounds=1,
        iterations=1,
    )
    series = {
        wl: {t: data["throughput"] for t, data in sweep.items()}
        for wl, sweep in rows.items()
    }
    print_series("Fig. 15: throughput vs threads (SkyByte-WP@8 = 1.0)", series)
    bw = {
        wl: {t: data["ssd_bandwidth"] for t, data in sweep.items()}
        for wl, sweep in rows.items()
    }
    print_series("Fig. 15: SSD read bandwidth vs threads", bw)
    for wl, sweep in rows.items():
        # Oversubscription with switching should beat or match 8 threads.
        best = max(data["throughput"] for data in sweep.values())
        assert best >= sweep[8]["throughput"] * 0.95
