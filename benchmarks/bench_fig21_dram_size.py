"""Fig. 21: sensitivity to SSD DRAM cache size.

Paper result: SkyByte-Full is the best design at every DRAM size, and a
SkyByte device with a small DRAM matches or beats Base-CSSD with a much
larger one -- the cost argument for the CXL-aware organisation.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_series

from repro.config import KB
from repro.experiments.sensitivity import fig21_dram_size


def test_fig21_dram_size(benchmark):
    sizes = (512 * KB, 1024 * KB, 2048 * KB)
    rows = benchmark.pedantic(
        fig21_dram_size,
        kwargs={
            "jobs": bench_jobs(),
            "cache": bench_cache(),
            "records": bench_records(),
            "workloads": ["bc", "tpcc"],
            "dram_sizes": sizes,
        },
        rounds=1,
        iterations=1,
    )
    series = {
        f"{wl}/{variant}": {f"{s//KB}KB": t for s, t in sweep.items()}
        for wl, variants in rows.items()
        for variant, sweep in variants.items()
    }
    print_series("Fig. 21: normalized time vs SSD DRAM size", series)
    for wl, variants in rows.items():
        for size in sizes:
            # Full never loses to the baseline at the same size.
            assert (
                variants["SkyByte-Full"][size]
                <= variants["Base-CSSD"][size] * 1.05
            )
        # Small-DRAM SkyByte vs large-DRAM baseline (the cost pitch).
        assert (
            variants["SkyByte-Full"][sizes[0]]
            <= variants["Base-CSSD"][sizes[-1]] * 1.6
        )
