"""Fig. 20: flash write traffic vs write-log size.

Paper result: larger logs coalesce more rewrites before each compaction,
so traffic falls steeply with log size -- especially for workloads with
strong temporal write locality (srad, tpcc).
"""

from conftest import bench_cache, bench_jobs, bench_records, print_series

from repro.config import KB
from repro.experiments.sensitivity import fig20_log_size_traffic


def test_fig20_logsize_traffic(benchmark):
    sizes = (16 * KB, 64 * KB, 128 * KB, 256 * KB)
    rows = benchmark.pedantic(
        fig20_log_size_traffic,
        kwargs={
            "jobs": bench_jobs(),
            "cache": bench_cache(),
            "records": bench_records(),
            "workloads": ["bc", "srad", "tpcc"],
            "log_sizes": sizes,
        },
        rounds=1,
        iterations=1,
    )
    series = {
        wl: {f"{s//KB}KB": t for s, t in sweep.items()} for wl, sweep in rows.items()
    }
    print_series("Fig. 20: write traffic vs log size (smallest = 1.0)", series)
    for wl, sweep in rows.items():
        # The biggest log must not write more than the smallest.
        assert sweep[256 * KB] <= sweep[16 * KB] * 1.05
