"""Shared helpers for the per-figure benchmark targets.

Every benchmark regenerates one table or figure of the paper's
evaluation.  Trace length per thread is controlled by REPRO_BENCH_RECORDS
(default 1500) so the full suite stays laptop-friendly; raise it for
higher-fidelity numbers.

All drivers submit their cells through the experiment orchestrator:
REPRO_BENCH_JOBS sets the worker-process count (default 1 so timing
numbers stay comparable across machines) and REPRO_BENCH_CACHE=1 turns
on the on-disk result cache, which makes re-running a figure with
unchanged parameters near-instant.
"""

import os
from typing import Mapping


def bench_records() -> int:
    return int(os.environ.get("REPRO_BENCH_RECORDS", "1500"))


def bench_jobs() -> int:
    """Worker processes per sweep (REPRO_BENCH_JOBS, default serial)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def bench_cache():
    """Cache argument for the experiment drivers: enabled only when
    REPRO_BENCH_CACHE is truthy (cached timings measure the cache, not
    the simulator, so opt in deliberately)."""
    return os.environ.get("REPRO_BENCH_CACHE", "").lower() in {
        "1", "true", "yes", "on"
    }


def print_table(title: str, rows: Mapping[str, Mapping[str, object]]) -> None:
    """Render {row: {column: value}} as an aligned text table."""
    print(f"\n=== {title} ===")
    columns = []
    for row in rows.values():
        for col in row:
            if col not in columns:
                columns.append(col)
    width = max((len(str(r)) for r in rows), default=8) + 2
    header = " " * width + "".join(f"{str(c):>14}" for c in columns)
    print(header)
    for name, row in rows.items():
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                cells.append(f"{value:>14.3f}")
            else:
                cells.append(f"{str(value):>14}")
        print(f"{str(name):<{width}}" + "".join(cells))


def print_series(title: str, series: Mapping[str, Mapping[object, float]]) -> None:
    """Render {name: {x: y}} sweeps."""
    print(f"\n=== {title} ===")
    for name, points in series.items():
        pts = "  ".join(f"{x}:{y:.3f}" for x, y in points.items())
        print(f"  {name}: {pts}")


def geomean(values) -> float:
    import math

    values = [max(v, 1e-12) for v in values]
    return math.exp(sum(map(math.log, values)) / len(values)) if values else 0.0
