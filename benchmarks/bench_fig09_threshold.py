"""Fig. 9: sensitivity to the context-switch trigger threshold.

Paper result: the 2 us threshold (matching the measured switch overhead)
is best; raising it toward 80 us forfeits profitable switches and costs
up to ~2x on switch-sensitive workloads.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_series

from repro.experiments.design import fig9_threshold_sweep


def test_fig09_threshold(benchmark):
    thresholds = (2, 10, 40, 80)
    rows = benchmark.pedantic(
        fig9_threshold_sweep,
        kwargs={"records": bench_records(), "thresholds_us": thresholds, "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    print_series("Fig. 9: normalized execution time vs threshold (2us = 1.0)", rows)
    for wl, sweep in rows.items():
        assert sweep[2] == 1.0
        # The largest threshold (fewest switches) should not beat the
        # tuned 2us default by more than noise.
        assert sweep[80] >= 0.9
