"""Fig. 5: per-page cacheline locality of flash reads.

Paper result: many workloads access fewer than 40% of the cachelines in
more than 75% of the pages brought into the SSD DRAM cache -- page-
granular caching wastes most of its capacity.
"""

from conftest import bench_records, print_series

from repro.experiments.motivation import fig5_read_locality


def test_fig05_read_locality(benchmark):
    rows = benchmark.pedantic(
        fig5_read_locality,
        kwargs={"records": bench_records() * 4},
        rounds=1,
        iterations=1,
    )
    series = {
        f"{wl} 1:{ratio}": {"<40% lines": data["pages_below_40pct"],
                            "mean ratio": data["mean_ratio"]}
        for wl, ratios in rows.items()
        for ratio, data in ratios.items()
    }
    print_series("Fig. 5: pages touching <40% of lines when read (paper: >75%)", series)
    # Sparse-access workloads (bc, dlrm, ycsb) at high footprint:cache
    # ratios leave most of each cached page untouched.
    for wl in ("bc", "dlrm", "ycsb"):
        assert rows[wl][128]["pages_below_40pct"] > 0.6
    # Tighter caches (1:128) are at least as sparse as roomy ones (1:2).
    for wl, ratios in rows.items():
        assert ratios[128]["mean_ratio"] <= ratios[2]["mean_ratio"] + 0.05
