"""Table III: average flash read latency under SkyByte-WP.

Paper values (us): bc 3.5, bfs-dense 25.7, dlrm 3.4, radix 4.9,
srad 22.5, tpcc 19.6, ycsb 3.3.  The shape to hold: some workloads sit
near the 3 us device latency while queueing and compaction interference
push others several times higher.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_table

from repro.experiments.overall import table3_flash_read_latency

PAPER_US = {
    "bc": 3.5, "bfs-dense": 25.7, "dlrm": 3.4, "radix": 4.9,
    "srad": 22.5, "tpcc": 19.6, "ycsb": 3.3,
}


def test_tab03_flash_read_latency(benchmark):
    rows = benchmark.pedantic(
        table3_flash_read_latency,
        kwargs={"records": bench_records(), "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    table = {
        wl: {"measured_us": us, "paper_us": PAPER_US[wl]}
        for wl, us in rows.items()
    }
    print_table("Table III: avg flash read latency, SkyByte-WP", table)
    device_read_us = 3.0
    for wl, us in rows.items():
        # Every average is at least the device read latency...
        assert us >= device_read_us
    # ...and interference spreads the workloads apart.  (The paper's
    # SimpleSSD-style FIFO channels queue far harder than this model's
    # die-parallel, program-suspending channels, so its spread is wider
    # -- see EXPERIMENTS.md.)
    assert max(rows.values()) > min(rows.values()) * 1.05
