"""Fig. 3: off-chip memory latency distribution, DRAM vs CXL-SSD.

Paper result: with the CXL-SSD, most requests are served fast by the SSD
DRAM cache, but the tail reaches hundreds of microseconds (flash reads,
GC) -- orders of magnitude beyond DRAM's tail.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_table

from repro.experiments.motivation import fig3_latency_distribution


def test_fig03_latency_cdf(benchmark):
    rows = benchmark.pedantic(
        fig3_latency_distribution,
        kwargs={"records": bench_records(), "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    table = {}
    for wl, out in rows.items():
        table[wl] = {
            "dram_p99_ns": out["DRAM"]["p99_ns"],
            "cssd_p99_ns": out["CXL-SSD"]["p99_ns"],
            "cssd_max_us": out["CXL-SSD"]["max_ns"] / 1000.0,
            "cssd_fast_frac": out["CXL-SSD"]["fast_fraction"],
        }
    print_table("Fig. 3: latency distribution (DRAM vs CXL-SSD)", table)
    for wl, out in rows.items():
        # DRAM's tail is tight; the CXL-SSD's tail reaches flash scale.
        assert out["DRAM"]["max_ns"] < 10_000
        assert out["CXL-SSD"]["max_ns"] > 3_000
        # A large share of CXL-SSD requests is still served fast.
        assert out["CXL-SSD"]["fast_fraction"] > 0.5
