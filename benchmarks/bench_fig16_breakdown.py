"""Fig. 16: memory request breakdown under SkyByte.

Paper result: promoted pages absorb much of the traffic (H-R/W), SSD
DRAM hits (S-R-H) dominate the remaining reads, flash-bound misses
(S-R-M) are a small minority, and writes (S-W) all land in the log.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_table

from repro.experiments.overall import fig16_request_breakdown


def test_fig16_breakdown(benchmark):
    rows = benchmark.pedantic(
        fig16_request_breakdown,
        kwargs={"records": bench_records(), "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    print_table("Fig. 16: request classes under SkyByte-Full", rows)
    for wl, row in rows.items():
        assert abs(sum(row.values()) - 1.0) < 1e-6
        # Flash-bound read misses are the smallest read class.
        assert row["S-R-M"] < row["S-R-H"] + row["H-R/W"]
    # Graph traversal keeps a larger flash-bound share than the
    # locality-friendly OLTP workload (Fig. 16's left-right contrast).
    assert rows["bfs-dense"]["S-R-M"] > rows["tpcc"]["S-R-M"]
