"""§VI-B cost-effectiveness: performance-per-dollar vs DRAM-Only.

Paper result: at $4.28/GB (DDR5) vs $0.27/GB (ULL SSD), SkyByte-Full
costs 15.9x less than the DRAM-only setup, achieves 75% of its
performance, and so improves cost-effectiveness by 11.8x.
"""

from conftest import bench_cache, bench_jobs, bench_records, print_table

from repro.experiments.cost import cost_effectiveness


def test_cost_effectiveness(benchmark):
    out = benchmark.pedantic(
        cost_effectiveness,
        kwargs={"records": bench_records(), "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    table = {
        wl: {"perf_fraction": frac}
        for wl, frac in out["performance_fraction"].items()
    }
    print_table("SkyByte-Full performance as a fraction of DRAM-Only", table)
    print(
        f"geomean perf fraction: {out['performance_fraction_geomean']:.3f} "
        f"(paper: 0.75)\n"
        f"cost ratio: {out['cost_ratio']:.1f}x cheaper (paper: 15.9x)\n"
        f"cost-effectiveness: {out['cost_effectiveness']:.2f}x (paper: 11.8x)"
    )
    # The hardware cost ratio is pure Table-price arithmetic: exact.
    assert out["cost_ratio"] > 10.0
    # Cost-effectiveness must favour SkyByte even at reduced perf.
    assert out["cost_effectiveness"] > 1.0
