"""Fig. 2: end-to-end execution time, host DRAM vs baseline CXL-SSD.

Paper result: workloads run 1.5x-31.4x worse on the naive CXL-SSD than
in DRAM, because of flash latency exposed through the byte interface.
"""

from conftest import bench_cache, bench_jobs, bench_records, geomean, print_table

from repro.experiments.motivation import fig2_dram_vs_cssd


def test_fig02_dram_vs_cssd(benchmark):
    rows = benchmark.pedantic(
        fig2_dram_vs_cssd,
        kwargs={"records": bench_records(), "jobs": bench_jobs(), "cache": bench_cache()},
        rounds=1,
        iterations=1,
    )
    print_table("Fig. 2: slowdown of Base-CSSD vs DRAM (paper: 1.5x-31.4x)", rows)
    slowdowns = [r["slowdown"] for r in rows.values()]
    # Shape: every workload slower on CXL-SSD; spread of at least ~2x
    # between the best and worst case (tpcc mild, bfs-dense severe).
    assert all(s > 1.2 for s in slowdowns)
    assert max(slowdowns) / min(slowdowns) > 2.0
    assert rows["bfs-dense"]["slowdown"] > rows["tpcc"]["slowdown"]
    print(f"geomean slowdown: {geomean(slowdowns):.2f}x")
