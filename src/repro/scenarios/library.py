"""Named scenario registry: composable workloads the CLI can sweep.

Two families live here:

* **Composite scenarios** -- tenant mixes built from the phase
  primitives (``web-tier``, ``analytics-scan``, ``graph-walk``,
  ``log-ingest``).  These open workload space beyond Table I: any
  sweep, figure or colocation study can name them exactly like a paper
  workload (``python -m repro sweep --scenario web-tier``).
* **Table I instances** -- every paper workload re-expressed as a
  one-phase scenario (``tab1-bc`` ... ``tab1-ycsb``).  They generate
  **bit-identical** traces to the seed models (golden-pinned), proving
  the DSL subsumes the hand-coded specs.

Names are resolved case-insensitively and accept an optional
``scenario:`` prefix; bare Table I workload names also resolve (to
their DSL instance) so colocation tenants can mix paper workloads with
composites freely.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import GB
from repro.scenarios.phases import (
    BurstyWritePhase,
    DriftPhase,
    PointerChasePhase,
    ScanPhase,
    Scenario,
    TableIPhase,
    ZipfPhase,
)
from repro.workloads.suites import TABLE_I, WORKLOAD_ALIASES

#: Prefix accepted (and stripped) anywhere a scenario is named.
SCENARIO_PREFIX = "scenario:"


def scenario_for_workload(name: str) -> Scenario:
    """The Table I workload ``name`` as a single-phase DSL scenario.

    Generates traces bit-identical to
    :class:`~repro.workloads.models.WorkloadModel` for the same
    ``(scale, seed, threads, records)`` -- the golden suite pins this.
    """
    spec = TABLE_I[name]
    return Scenario(
        name=f"tab1-{name}",
        footprint_bytes=spec.footprint_bytes,
        phases=(TableIPhase(workload=name),),
        mlp=spec.mlp,
        description=f"Table I workload {name} ({spec.suite}) via the phase DSL",
    )


def _builtin_scenarios() -> Dict[str, Scenario]:
    scenarios = {
        # A front-end cache + database tier: skewed point reads with a
        # churning session working set.
        "web-tier": Scenario(
            name="web-tier",
            footprint_bytes=int(8 * GB),
            phases=(
                ZipfPhase(alpha=1.3, write_ratio=0.06, mpki=60.0,
                          burst_mean=4.0, weight=0.7),
                DriftPhase(alpha=1.1, write_ratio=0.25, mpki=30.0,
                           window_fraction=0.1, weight=0.3),
            ),
            mlp=2,
            description="Zipf point reads over a drifting session set",
        ),
        # Column scans with a bursty result spool.
        "analytics-scan": Scenario(
            name="analytics-scan",
            footprint_bytes=int(12 * GB),
            phases=(
                ScanPhase(write_ratio=0.02, mpki=10.0, lines_per_page=32,
                          weight=0.8),
                BurstyWritePhase(burst_lines=48, idle_gap_mean=3000.0,
                                 weight=0.2),
            ),
            mlp=8,
            partitioned=True,
            description="partitioned column sweeps spooling bursty results",
        ),
        # Graph traversal: dependent chase with skewed frontier updates.
        "graph-walk": Scenario(
            name="graph-walk",
            footprint_bytes=int(9 * GB),
            phases=(
                PointerChasePhase(write_ratio=0.04, mpki=80.0, weight=0.75),
                ZipfPhase(alpha=1.4, write_ratio=0.5, mpki=20.0,
                          burst_mean=2.0, weight=0.25),
            ),
            mlp=2,
            description="pointer chase plus hot frontier/rank updates",
        ),
        # Ingest pipeline: an append-heavy WAL with index point lookups.
        "log-ingest": Scenario(
            name="log-ingest",
            footprint_bytes=int(6 * GB),
            phases=(
                BurstyWritePhase(burst_lines=64, idle_gap_mean=1500.0,
                                 inner_gap_mean=8.0, weight=0.6),
                ZipfPhase(alpha=1.2, write_ratio=0.1, mpki=25.0,
                          burst_mean=3.0, weight=0.4),
            ),
            mlp=4,
            description="append bursts into a log region + index lookups",
        ),
    }
    for workload in TABLE_I:
        instance = scenario_for_workload(workload)
        scenarios[instance.name] = instance
    return scenarios


#: Registry of named scenarios (composites + ``tab1-*`` instances).
SCENARIOS: Dict[str, Scenario] = _builtin_scenarios()


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def find_scenario(name: str) -> Optional[Scenario]:
    """The scenario ``name`` refers to, or None.

    Accepts registry names, the ``scenario:`` prefix, and bare Table I
    workload names/aliases (resolved to their ``tab1-*`` DSL instance).
    """
    key = name.lower()
    if key.startswith(SCENARIO_PREFIX):
        key = key[len(SCENARIO_PREFIX):]
    if key in SCENARIOS:
        return SCENARIOS[key]
    table = WORKLOAD_ALIASES.get(key, key)
    if table in TABLE_I:
        return SCENARIOS[f"tab1-{table}"]
    return None


def canonical_scenario(name: str) -> str:
    """Map a scenario name (any accepted spelling) to its registry key."""
    scenario = find_scenario(name)
    if scenario is None:
        raise KeyError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        )
    return scenario.name


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (raises KeyError like get_spec)."""
    scenario = find_scenario(name)
    if scenario is None:
        raise KeyError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        )
    return scenario
