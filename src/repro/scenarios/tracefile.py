"""Portable, versioned, compressed trace files (``.sbt``).

The ``.npz`` helpers in :mod:`repro.workloads.trace` are fine for local
snapshots, but a trace that travels -- between hosts, backends, CI jobs
and commits -- needs a real format: self-describing, streaming, and
**able to say no** to truncated or corrupt input instead of silently
replaying a prefix.  Layout::

    "SBTF"  u8 version=1
    u32be meta_len, gzip(JSON metadata)
    repeat per thread:
        u8 0x01   u32be record_count   u32be frame_len
        gzip(varint-encoded records)
    u8 0x00
    sha256 over every byte between the metadata and the end marker

Records are delta-encoded: ``varint(gap)`` then
``varint(zigzag(address - previous_address) << 1 | is_write)`` --
spatially local traces compress to ~2 bytes/record before gzip.  All
gzip members are written with ``mtime=0``, so the same traces + metadata
produce **byte-identical files** (they can be content-addressed and
diffed in CI).

Metadata is free-form JSON; the generators in this repo record
provenance (scenario/workload definition, seed, scale, resolved
``SimConfig``, tenant map for colocation traces) so ``python -m repro
trace replay`` can rebuild the exact simulation a file came from.

Every malformed-input path raises
:class:`~repro.workloads.trace.TraceFormatError` with a message naming
what broke; short reads are never treated as end-of-trace.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import struct
from pathlib import Path
from typing import BinaryIO, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.workloads.trace import TraceFormatError, TraceRecord

MAGIC = b"SBTF"
VERSION = 1
THREAD_MARKER = 0x01
END_MARKER = 0x00
_DIGEST_BYTES = 32

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Varint / zigzag primitives
# ---------------------------------------------------------------------------


def _write_varint(buf: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TraceFormatError(
                "truncated trace frame: varint ends mid-byte-sequence"
            )
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise TraceFormatError("corrupt trace frame: varint too long")


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value // 2) - 1


def encode_records(records: Sequence[TraceRecord]) -> bytes:
    """Varint-delta encode one thread's records (pre-compression)."""
    buf = bytearray()
    prev_addr = 0
    for gap, is_write, address in records:
        if gap < 0:
            raise ValueError(f"negative gap {gap} in trace record")
        if address < 0:
            raise ValueError(f"negative address {address} in trace record")
        _write_varint(buf, int(gap))
        delta = int(address) - prev_addr
        _write_varint(buf, (_zigzag(delta) << 1) | (1 if is_write else 0))
        prev_addr = int(address)
    return bytes(buf)


def decode_records(data: bytes, count: int) -> List[TraceRecord]:
    """Inverse of :func:`encode_records`; validates count and bounds."""
    out: List[TraceRecord] = []
    pos = 0
    prev_addr = 0
    for index in range(count):
        gap, pos = _read_varint(data, pos)
        packed, pos = _read_varint(data, pos)
        is_write = bool(packed & 1)
        address = prev_addr + _unzigzag(packed >> 1)
        if address < 0:
            raise TraceFormatError(
                f"corrupt trace frame: negative address at record {index}"
            )
        prev_addr = address
        out.append((gap, is_write, address))
    if pos != len(data):
        raise TraceFormatError(
            f"corrupt trace frame: {len(data) - pos} byte(s) beyond the "
            f"declared {count} record(s)"
        )
    return out


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class TraceFileWriter:
    """Streaming writer: metadata up front, one frame per thread.

    Usable as a context manager; :meth:`close` finalizes the end marker
    and content digest (a file missing them is detected as truncated).
    """

    def __init__(self, path: PathLike, meta: Dict[str, object]) -> None:
        self.path = Path(path)
        self._fh: Optional[BinaryIO] = open(self.path, "wb")
        self._sha = hashlib.sha256()
        self.threads_written = 0
        self.records_written = 0
        header = gzip.compress(
            json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8"),
            mtime=0,
        )
        self._fh.write(MAGIC)
        self._fh.write(bytes([VERSION]))
        self._fh.write(struct.pack(">I", len(header)))
        self._fh.write(header)

    def _emit(self, data: bytes) -> None:
        assert self._fh is not None, "writer already closed"
        self._fh.write(data)
        self._sha.update(data)

    def write_thread(self, records: Sequence[TraceRecord]) -> None:
        frame = gzip.compress(encode_records(records), mtime=0)
        self._emit(bytes([THREAD_MARKER]))
        self._emit(struct.pack(">II", len(records), len(frame)))
        self._emit(frame)
        self.threads_written += 1
        self.records_written += len(records)

    def close(self) -> None:
        if self._fh is None:
            return
        self._emit(bytes([END_MARKER]))
        self._fh.write(self._sha.digest())
        self._fh.close()
        self._fh = None

    def abort(self) -> None:
        """Discard the file: close without finalizing and unlink it.

        A partial file must never be left with a valid end marker and
        digest -- it would read back as a smaller-but-valid trace, the
        exact silent-prefix failure this format exists to prevent.
        """
        if self._fh is None:
            return
        self._fh.close()
        self._fh = None
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def write_tracefile(
    path: PathLike,
    traces: Sequence[Sequence[TraceRecord]],
    meta: Dict[str, object],
) -> None:
    """Write per-thread ``traces`` with ``meta`` to one ``.sbt`` file."""
    with TraceFileWriter(path, meta) as writer:
        for trace in traces:
            writer.write_thread(trace)


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


def _must_read(fh: BinaryIO, n: int, what: str) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise TraceFormatError(
            f"truncated tracefile: expected {n} byte(s) of {what}, "
            f"got {len(data)}"
        )
    return data


def _read_header(fh: BinaryIO) -> Dict[str, object]:
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise TraceFormatError(
            f"not a SkyByte tracefile (bad magic {magic!r}; expected {MAGIC!r})"
        )
    version = _must_read(fh, 1, "version")[0]
    if version != VERSION:
        raise TraceFormatError(
            f"unsupported tracefile version {version} (this build reads "
            f"version {VERSION})"
        )
    (meta_len,) = struct.unpack(">I", _must_read(fh, 4, "metadata length"))
    blob = _must_read(fh, meta_len, "metadata")
    try:
        meta = json.loads(gzip.decompress(blob).decode("utf-8"))
    except (OSError, ValueError) as exc:
        raise TraceFormatError(f"corrupt tracefile metadata: {exc}") from exc
    if not isinstance(meta, dict):
        raise TraceFormatError("corrupt tracefile metadata: not a JSON object")
    return meta


def read_meta(path: PathLike) -> Dict[str, object]:
    """Just the metadata header (cheap: no frames are read)."""
    with open(path, "rb") as fh:
        return _read_header(fh)


class TraceFileReader:
    """Streaming reader: iterate thread frames without holding them all.

    The content digest is verified when the end marker is reached --
    callers that stop early skip the check; :func:`read_tracefile`
    always reaches it.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._fh: Optional[BinaryIO] = open(self.path, "rb")
        try:
            self.meta = _read_header(self._fh)
        except Exception:
            self._fh.close()
            self._fh = None
            raise
        self._sha = hashlib.sha256()

    def iter_threads(self) -> Iterator[List[TraceRecord]]:
        """Yield each thread's records in file order, verifying at EOF."""
        assert self._fh is not None, "reader already closed"
        fh = self._fh
        while True:
            marker = _must_read(fh, 1, "frame marker")
            self._sha.update(marker)
            if marker[0] == END_MARKER:
                stored = _must_read(fh, _DIGEST_BYTES, "content digest")
                if stored != self._sha.digest():
                    raise TraceFormatError(
                        "corrupt tracefile: content digest mismatch"
                    )
                trailing = fh.read(1)
                if trailing:
                    raise TraceFormatError(
                        "corrupt tracefile: data after the end marker"
                    )
                return
            if marker[0] != THREAD_MARKER:
                raise TraceFormatError(
                    f"corrupt tracefile: unknown frame marker {marker[0]:#x}"
                )
            head = _must_read(fh, 8, "frame header")
            self._sha.update(head)
            count, frame_len = struct.unpack(">II", head)
            frame = _must_read(fh, frame_len, "thread frame")
            self._sha.update(frame)
            try:
                data = gzip.decompress(frame)
            except (OSError, EOFError) as exc:
                raise TraceFormatError(
                    f"corrupt thread frame: {exc}"
                ) from exc
            yield decode_records(data, count)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_tracefile(
    path: PathLike,
) -> Tuple[Dict[str, object], List[List[TraceRecord]]]:
    """Read a whole ``.sbt`` file; digest-verified, truncation-checked."""
    with TraceFileReader(path) as reader:
        traces = list(reader.iter_threads())
        return reader.meta, traces


def inspect_tracefile(path: PathLike) -> Dict[str, object]:
    """Header + per-thread shape summary (reads and verifies the file)."""
    path = Path(path)
    with TraceFileReader(path) as reader:
        threads = []
        total = 0
        for records in reader.iter_threads():
            writes = sum(1 for r in records if r[1])
            threads.append({
                "records": len(records),
                "write_ratio": writes / len(records) if records else 0.0,
                "pages": len({r[2] // 4096 for r in records}),
            })
            total += len(records)
        return {
            "path": str(path),
            "file_bytes": path.stat().st_size,
            "version": VERSION,
            "threads": len(threads),
            "records": total,
            "per_thread": threads,
            "meta": reader.meta,
        }


def file_sha256(path: PathLike) -> str:
    """Content hash of the whole file (cache keys for replay cells)."""
    sha = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            sha.update(chunk)
    return sha.hexdigest()
