"""Workload synthesis: phase DSL, named scenarios, portable trace files,
and multi-tenant colocation plans.

See ``docs/SCENARIOS.md`` for the DSL reference, the ``.sbt`` trace
format specification, and the colocation guide.
"""

from repro.scenarios.colocate import (
    ColocationPlan,
    Tenant,
    build_colocation,
    tenants_from_names,
)
from repro.scenarios.library import (
    SCENARIOS,
    canonical_scenario,
    find_scenario,
    get_scenario,
    scenario_for_workload,
    scenario_names,
)
from repro.scenarios.phases import (
    BurstyWritePhase,
    DriftPhase,
    Phase,
    PhaseContext,
    PointerChasePhase,
    ScanPhase,
    Scenario,
    TableIPhase,
    ZipfPhase,
    phase_from_dict,
)
from repro.scenarios.tracefile import (
    TraceFileReader,
    TraceFileWriter,
    file_sha256,
    inspect_tracefile,
    read_meta,
    read_tracefile,
    write_tracefile,
)

__all__ = [
    "BurstyWritePhase",
    "ColocationPlan",
    "DriftPhase",
    "Phase",
    "PhaseContext",
    "PointerChasePhase",
    "SCENARIOS",
    "ScanPhase",
    "Scenario",
    "TableIPhase",
    "Tenant",
    "TraceFileReader",
    "TraceFileWriter",
    "ZipfPhase",
    "build_colocation",
    "canonical_scenario",
    "file_sha256",
    "find_scenario",
    "get_scenario",
    "inspect_tracefile",
    "phase_from_dict",
    "read_meta",
    "read_tracefile",
    "scenario_for_workload",
    "scenario_names",
    "tenants_from_names",
    "write_tracefile",
]
