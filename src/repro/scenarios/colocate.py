"""Multi-tenant colocation: interleave N scenarios onto one device.

The paper evaluates one application at a time, but a CXL-SSD sold as
cheap expanded memory will be *shared*: several tenants hammering one
device, each seeing the others only through queueing, cache pressure,
GC and write-log contention.  This module builds the combined workload:

* each tenant is a :class:`Tenant` naming a scenario (composite or
  Table I), a thread count and a seed;
* tenants get **disjoint address partitions** -- tenant *i*'s footprint
  is rebased past the footprints before it, so there is no accidental
  sharing and any interference measured is purely device-level;
* the combined per-thread traces replay through a completely standard
  :class:`~repro.sim.system.System` (the simulator does not know about
  tenants), while the plan's ``tenant_of_thread`` map lets the
  colocation driver attribute per-thread behaviour back to tenants.

Plans serialize into tracefile metadata, so a colocation trace captured
on one machine replays bit-exactly anywhere (the CI smoke test replays
one on the local and distributed backends and asserts identical stats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import PAGE_SIZE
from repro.scenarios.library import get_scenario
from repro.scenarios.phases import Scenario
from repro.workloads.trace import TraceRecord


@dataclass(frozen=True)
class Tenant:
    """One colocated workload: a scenario plus its share of threads."""

    name: str
    scenario: str
    threads: int = 2
    records_per_thread: Optional[int] = None
    seed: int = 42

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "threads": self.threads,
            "records_per_thread": self.records_per_thread,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Tenant":
        records = data.get("records_per_thread")
        return cls(
            name=str(data["name"]),
            scenario=str(data["scenario"]),
            threads=int(data.get("threads", 2)),
            records_per_thread=None if records is None else int(records),
            seed=int(data.get("seed", 42)),
        )


@dataclass
class ColocationPlan:
    """The built colocation: combined traces plus the attribution maps."""

    tenants: List[Tenant]
    scenarios: List[Scenario]
    traces: List[List[TraceRecord]]
    #: Global thread id -> tenant index.
    tenant_of_thread: List[int]
    #: Per tenant: (base_page, pages) of its address partition.
    partitions: List[Tuple[int, int]]
    scale: int
    records_per_thread: int

    @property
    def total_pages(self) -> int:
        base, pages = self.partitions[-1]
        return base + pages

    @property
    def mlp(self) -> int:
        """The combined run's memory-level parallelism: the thread mix is
        heterogeneous, so use the median tenant MLP (one core model serves
        all threads)."""
        values = sorted(s.mlp for s in self.scenarios)
        return values[len(values) // 2]

    def meta(self) -> Dict[str, object]:
        """Tracefile metadata block describing this plan."""
        return {
            "tenants": [t.to_dict() for t in self.tenants],
            "tenant_of_thread": list(self.tenant_of_thread),
            "partitions": [list(p) for p in self.partitions],
            "scenarios": [s.to_dict() for s in self.scenarios],
            "scale": self.scale,
            "records_per_thread": self.records_per_thread,
            "mlp": self.mlp,
        }

    def qos_config(
        self,
        isolation: str,
        weights: Optional[Sequence[float]] = None,
        priorities: Optional[Sequence[int]] = None,
        slo_read_ns: float = 20_000.0,
    ) -> "QoSConfig":
        """A :class:`~repro.config.QoSConfig` activating ``isolation``
        for this plan's tenants.  Everything a backend needs (partitions,
        thread ownership, weights) is baked in, so embedding the result
        in a trace's config makes replay QoS-identical anywhere."""
        from repro.config import QoSConfig

        n = len(self.tenants)
        return QoSConfig(
            isolation=isolation,
            partitions=tuple((base, pages) for base, pages in self.partitions),
            tenant_of_thread=tuple(self.tenant_of_thread),
            weights=tuple(weights) if weights is not None
            else (1.0,) * n,
            priorities=tuple(priorities) if priorities is not None
            else (0,) * n,
            slo_read_ns=slo_read_ns,
        )


def build_colocation(
    tenants: Sequence[Tenant],
    scale: int,
    records_per_thread: int,
) -> ColocationPlan:
    """Generate every tenant's traces and rebase them into disjoint
    partitions of one device address space.

    Thread order is tenant order (tenant 0's threads first), matching
    how the scheduler will enqueue them; partition order likewise, so
    the layout is reproducible from the tenant list alone.
    """
    if not tenants:
        raise ValueError("colocation needs at least one tenant")
    scenarios = [get_scenario(t.scenario) for t in tenants]
    traces: List[List[TraceRecord]] = []
    tenant_of_thread: List[int] = []
    partitions: List[Tuple[int, int]] = []
    base_page = 0
    for index, (tenant, scenario) in enumerate(zip(tenants, scenarios)):
        records = tenant.records_per_thread or records_per_thread
        pages = scenario.footprint_pages(scale)
        offset = base_page * PAGE_SIZE
        for trace in scenario.generate(
            tenant.threads, records, scale=scale, seed=tenant.seed
        ):
            traces.append([(g, w, a + offset) for g, w, a in trace])
            tenant_of_thread.append(index)
        partitions.append((base_page, pages))
        base_page += pages
    return ColocationPlan(
        tenants=list(tenants),
        scenarios=scenarios,
        traces=traces,
        tenant_of_thread=tenant_of_thread,
        partitions=partitions,
        scale=scale,
        records_per_thread=records_per_thread,
    )


def tenants_from_names(
    names: Sequence[str],
    threads: int = 2,
    seed: int = 42,
) -> List[Tenant]:
    """Tenants for a list of scenario names (CLI convenience).

    Duplicate names get distinct tenant labels (``web-tier``,
    ``web-tier-2``, ...) and shifted seeds so they do not generate
    identical traces.
    """
    tenants: List[Tenant] = []
    seen: Dict[str, int] = {}
    for name in names:
        canonical = get_scenario(name).name
        seen[canonical] = seen.get(canonical, 0) + 1
        label = canonical if seen[canonical] == 1 else (
            f"{canonical}-{seen[canonical]}"
        )
        tenants.append(Tenant(
            name=label,
            scenario=canonical,
            threads=threads,
            seed=seed + 101 * (seen[canonical] - 1),
        ))
    return tenants
