"""Composable workload synthesis: typed phase primitives and scenarios.

The seven Table I applications are *fixed points* in a much larger space
of memory behaviours a CXL-SSD must serve.  This module provides the
vocabulary for the rest of that space: a scenario is an ordered,
weighted composition of **phase primitives** --

* :class:`ZipfPhase` -- skewed point accesses (databases, KV stores);
* :class:`ScanPhase` -- sequential sweeps (analytics, stencils);
* :class:`PointerChasePhase` -- dependent random walks (graphs, trees);
* :class:`BurstyWritePhase` -- append bursts into a log region
  (ingest pipelines, WALs);
* :class:`DriftPhase` -- Zipf accesses over a working-set window that
  slides through the footprint (diurnal churn, LRU-hostile tenants);
* :class:`TableIPhase` -- one of the seven paper workloads, verbatim.

Every primitive draws from a seeded :mod:`numpy` generator derived from
``(scenario seed, thread id, phase index)``, so a scenario is exactly as
deterministic as the Table I models: same spec + seed -> byte-identical
traces on every host and backend.  The seven Table I models are
themselves scenario instances (a single :class:`TableIPhase` delegating
to :class:`~repro.workloads.models.WorkloadModel`), pinned
golden-identical to the seed models in ``tests/golden/``.

Scenarios serialize to plain JSON (:meth:`Scenario.to_dict` /
:meth:`Scenario.from_dict`), which is how trace files record their
provenance and how the sweep cache keys scenario cells.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Tuple, Type

import numpy as np

from repro.config import CACHELINE_SIZE, CACHELINES_PER_PAGE, PAGE_SIZE
from repro.workloads.trace import TraceRecord


@dataclass(frozen=True)
class PhaseContext:
    """Everything a phase needs to know about where it is generating.

    ``base_page``/``pages`` describe this thread's page domain (the
    whole scenario footprint, or its slice of it when the scenario is
    partitioned); addresses the phase emits must stay inside it.
    """

    base_page: int
    pages: int
    scale: int
    seed: int
    tid: int
    threads: int


class Phase:
    """Base class for phase primitives.

    Subclasses are frozen dataclasses with a ``kind`` class attribute
    (the serialization tag) and a ``weight`` field (its share of the
    scenario's records).  ``generate`` must be deterministic given
    ``(ctx, rng)`` and return ``records`` trace records (the synthesis
    primitives are exact; :class:`TableIPhase` inherits the seed
    models' best-effort count, which can land a few records short).
    """

    kind: str = ""
    weight: float = 1.0

    def generate(
        self, ctx: PhaseContext, rng: np.random.Generator, records: int
    ) -> List[TraceRecord]:
        raise NotImplementedError

    # -- serialization (shared by every primitive) -------------------------

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind}
        for f in fields(self):  # type: ignore[arg-type]
            data[f.name] = getattr(self, f.name)
        return data


def _addr(page: int, line: int) -> int:
    return page * PAGE_SIZE + line * CACHELINE_SIZE


def _gaps(rng: np.random.Generator, mpki: float, n: int) -> np.ndarray:
    """Exponential compute gaps with the Table I models' MPKI rule."""
    gap_mean = max(1.0, 1000.0 / max(mpki, 1e-6))
    return rng.exponential(gap_mean, size=n).astype(np.int64)


def _zipf_sampler(rng: np.random.Generator, alpha: float, pages: int):
    """A ``sample(n)`` closure drawing Zipf(alpha)-popular page indices
    in ``[0, pages)``.  The rank->page permutation is drawn **once** (hot
    pages keep their identity across batches, scattered through the
    domain as in the Table I models); each call consumes fresh draws
    from ``rng``, so repeated sampling stays deterministic."""
    ranks = np.arange(1, pages + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights) / weights.sum()
    perm = rng.permutation(pages)

    def sample(n: int) -> np.ndarray:
        draws = rng.random(n)
        ranked = np.searchsorted(cdf, draws, side="left")
        return perm[np.minimum(ranked, pages - 1)]

    return sample


def _bursts(rng: np.random.Generator, mean_burst: float, n: int) -> np.ndarray:
    bursts = rng.geometric(min(1.0, 1.0 / mean_burst), size=n)
    return np.clip(bursts, 1, CACHELINES_PER_PAGE)


@dataclass(frozen=True)
class ZipfPhase(Phase):
    """Skewed point accesses: Zipf page choice, geometric line bursts."""

    kind = "zipf"
    alpha: float = 1.2
    write_ratio: float = 0.1
    mpki: float = 30.0
    burst_mean: float = 4.0
    in_page_sequential: bool = False
    weight: float = 1.0

    def generate(
        self, ctx: PhaseContext, rng: np.random.Generator, records: int
    ) -> List[TraceRecord]:
        out: List[TraceRecord] = []
        if records <= 0:
            return out
        mean_burst = max(1.0, self.burst_mean)
        sample = _zipf_sampler(rng, self.alpha, ctx.pages)
        gaps = _gaps(rng, self.mpki, records)
        # Outer loop refills visit batches until the exact count is met
        # (a fixed visit estimate can undershoot when bursts run long).
        while len(out) < records:
            batch = max(1, int((records - len(out)) / mean_burst) + 8)
            bursts = _bursts(rng, mean_burst, batch)
            pages = sample(batch)
            for v in range(batch):
                if len(out) >= records:
                    break
                page = ctx.base_page + int(pages[v])
                burst = int(bursts[v])
                if self.in_page_sequential:
                    start = int(rng.integers(0, CACHELINES_PER_PAGE))
                    lines = [(start + i) % CACHELINES_PER_PAGE
                             for i in range(burst)]
                else:
                    lines = rng.choice(
                        CACHELINES_PER_PAGE,
                        size=min(burst, CACHELINES_PER_PAGE),
                        replace=False,
                    ).tolist()
                writes = rng.random(len(lines)) < self.write_ratio
                for i, line in enumerate(lines):
                    out.append((int(gaps[len(out)]), bool(writes[i]),
                                _addr(page, int(line))))
                    if len(out) >= records:
                        break
        return out


@dataclass(frozen=True)
class ScanPhase(Phase):
    """Sequential sweep: consecutive pages, consecutive lines."""

    kind = "scan"
    write_ratio: float = 0.0
    mpki: float = 8.0
    #: Consecutive lines touched per visited page before moving on.
    lines_per_page: int = 16
    #: Page step between visits (1 = dense sweep; larger = strided).
    stride_pages: int = 1
    weight: float = 1.0

    def generate(
        self, ctx: PhaseContext, rng: np.random.Generator, records: int
    ) -> List[TraceRecord]:
        out: List[TraceRecord] = []
        if records <= 0:
            return out
        lines_per_page = max(1, min(self.lines_per_page, CACHELINES_PER_PAGE))
        stride = max(1, self.stride_pages)
        cursor = int(rng.integers(0, ctx.pages))
        gaps = _gaps(rng, self.mpki, records)
        writes = rng.random(records) < self.write_ratio
        while len(out) < records:
            page = ctx.base_page + (cursor % ctx.pages)
            cursor += stride
            for line in range(lines_per_page):
                i = len(out)
                out.append((int(gaps[i]), bool(writes[i]), _addr(page, line)))
                if len(out) >= records:
                    break
        return out


@dataclass(frozen=True)
class PointerChasePhase(Phase):
    """Dependent random walk: each access's page derives from the last.

    Walks a random permutation cycle of the page domain (next pointer =
    the permutation's successor), so every page is visited exactly once
    per lap with zero spatial locality -- the uniform stream that makes
    out-of-order execution "less effective for hiding the long flash
    access latency" (SS II-C).
    """

    kind = "chase"
    write_ratio: float = 0.05
    mpki: float = 60.0
    weight: float = 1.0

    def generate(
        self, ctx: PhaseContext, rng: np.random.Generator, records: int
    ) -> List[TraceRecord]:
        out: List[TraceRecord] = []
        if records <= 0:
            return out
        perm = rng.permutation(ctx.pages)
        start = int(rng.integers(0, ctx.pages))
        gaps = _gaps(rng, self.mpki, records)
        writes = rng.random(records) < self.write_ratio
        lines = rng.integers(0, CACHELINES_PER_PAGE, size=records)
        for i in range(records):
            page = int(perm[(start + i) % ctx.pages])
            out.append((int(gaps[i]), bool(writes[i]),
                        _addr(ctx.base_page + page, int(lines[i]))))
        return out


@dataclass(frozen=True)
class BurstyWritePhase(Phase):
    """Append bursts into a log region at the top of the domain.

    Long idle gaps separate dense write bursts -- the WAL/ingest shape
    whose sparse, write-only pages the SkyByte write log absorbs without
    read-modify-write flash fetches.
    """

    kind = "write-burst"
    #: Lines appended per burst.
    burst_lines: int = 64
    #: Mean compute instructions between bursts.
    idle_gap_mean: float = 2000.0
    #: Mean compute instructions between appends inside a burst.
    inner_gap_mean: float = 10.0
    #: Tail fraction of the domain used as the append region.
    region_fraction: float = 0.25
    weight: float = 1.0

    def generate(
        self, ctx: PhaseContext, rng: np.random.Generator, records: int
    ) -> List[TraceRecord]:
        out: List[TraceRecord] = []
        if records <= 0:
            return out
        frac = min(max(self.region_fraction, 1.0 / max(ctx.pages, 1)), 1.0)
        region_pages = max(1, int(ctx.pages * frac))
        region_base = ctx.base_page + ctx.pages - region_pages
        burst = max(1, self.burst_lines)
        cursor = int(rng.integers(0, region_pages * CACHELINES_PER_PAGE))
        idle = rng.exponential(max(1.0, self.idle_gap_mean),
                               size=records).astype(np.int64)
        inner = rng.exponential(max(1.0, self.inner_gap_mean),
                                size=records).astype(np.int64)
        while len(out) < records:
            for b in range(burst):
                i = len(out)
                gap = int(idle[i]) if b == 0 else int(inner[i])
                page = region_base + (cursor // CACHELINES_PER_PAGE) % region_pages
                line = cursor % CACHELINES_PER_PAGE
                cursor += 1
                out.append((gap, True, _addr(page, line)))
                if len(out) >= records:
                    break
        return out


@dataclass(frozen=True)
class DriftPhase(Phase):
    """Zipf accesses over a working-set window sliding through the
    footprint -- the page-promotion-hostile churn pattern (a hot set
    that will not stay hot)."""

    kind = "drift"
    alpha: float = 1.1
    write_ratio: float = 0.2
    mpki: float = 25.0
    burst_mean: float = 4.0
    #: Working-set window size as a fraction of the footprint.
    window_fraction: float = 0.125
    #: Pages the window advances per page visit.
    drift_per_visit: float = 0.5
    weight: float = 1.0

    def generate(
        self, ctx: PhaseContext, rng: np.random.Generator, records: int
    ) -> List[TraceRecord]:
        out: List[TraceRecord] = []
        if records <= 0:
            return out
        window = max(1, int(ctx.pages * min(max(self.window_fraction, 0.0), 1.0)))
        mean_burst = max(1.0, self.burst_mean)
        sample = _zipf_sampler(rng, self.alpha, window)
        gaps = _gaps(rng, self.mpki, records)
        origin = float(rng.integers(0, ctx.pages))
        # Refill visit batches until the exact count is met; the window
        # origin keeps drifting across batches.
        while len(out) < records:
            batch = max(1, int((records - len(out)) / mean_burst) + 8)
            bursts = _bursts(rng, mean_burst, batch)
            offsets = sample(batch)
            for v in range(batch):
                if len(out) >= records:
                    break
                page = ctx.base_page + (int(origin) + int(offsets[v])) % ctx.pages
                origin += self.drift_per_visit
                burst = int(bursts[v])
                lines = rng.choice(
                    CACHELINES_PER_PAGE,
                    size=min(burst, CACHELINES_PER_PAGE),
                    replace=False,
                ).tolist()
                writes = rng.random(len(lines)) < self.write_ratio
                for i, line in enumerate(lines):
                    out.append((int(gaps[len(out)]), bool(writes[i]),
                                _addr(page, int(line))))
                    if len(out) >= records:
                        break
        return out


@dataclass(frozen=True)
class TableIPhase(Phase):
    """One of the seven Table I applications, generated verbatim.

    Delegates to :class:`~repro.workloads.models.WorkloadModel` with the
    scenario's ``(scale, seed, tid, threads)``, so a scenario consisting
    of exactly one ``TableIPhase`` reproduces the seed model's traces
    **bit-exactly** (pinned in ``tests/golden/scenario_table1.json``).
    """

    kind = "table1"
    workload: str = "bc"
    weight: float = 1.0

    def generate(
        self, ctx: PhaseContext, rng: np.random.Generator, records: int
    ) -> List[TraceRecord]:
        # Local import: repro.workloads.suites must stay importable
        # without this package (it is lower in the layer map).
        from repro.workloads.models import WorkloadModel
        from repro.workloads.suites import get_spec

        del rng  # the model derives its own generators from (seed, tid)
        model = WorkloadModel(get_spec(self.workload), scale=ctx.scale,
                              seed=ctx.seed)
        return model.generate_thread(ctx.tid, ctx.threads, records)


#: Serialization tag -> primitive class.
PHASE_KINDS: Dict[str, Type[Phase]] = {
    cls.kind: cls
    for cls in (ZipfPhase, ScanPhase, PointerChasePhase, BurstyWritePhase,
                DriftPhase, TableIPhase)
}


def phase_from_dict(data: Dict[str, object]) -> Phase:
    """Inverse of :meth:`Phase.to_dict`."""
    kind = data.get("kind")
    cls = PHASE_KINDS.get(str(kind))
    if cls is None:
        raise ValueError(
            f"unknown phase kind {kind!r}; known: {sorted(PHASE_KINDS)}"
        )
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    names = {f.name for f in fields(cls)}  # type: ignore[arg-type]
    unknown = set(kwargs) - names
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)} for phase kind {kind!r}"
        )
    return cls(**kwargs)


@dataclass(frozen=True)
class Scenario:
    """A named, deterministic workload built from phase primitives.

    Phases execute sequentially per thread; each phase's share of the
    thread's records is its ``weight`` over the sum of weights (the last
    phase absorbs rounding).  ``partitioned`` slices the footprint per
    thread like the Table I radix model; otherwise threads share it.
    """

    name: str
    footprint_bytes: int
    phases: Tuple[Phase, ...]
    mlp: int = 8
    partitioned: bool = False
    description: str = ""

    def footprint_pages(self, scale: int = 1) -> int:
        """Working-set size in 4 KB pages (the WorkloadSpec rule)."""
        return max(64, int(self.footprint_bytes / scale) // PAGE_SIZE)

    def _record_split(self, records: int) -> List[int]:
        weights = [max(0.0, float(p.weight)) for p in self.phases]
        total = sum(weights) or 1.0
        counts = [int(records * w / total) for w in weights]
        counts[-1] += records - sum(counts)
        return counts

    def generate_thread(
        self,
        tid: int,
        threads: int,
        records: int,
        scale: int = 1,
        seed: int = 42,
    ) -> List[TraceRecord]:
        """One thread's trace: each phase contributes its weighted share."""
        if not self.phases:
            raise ValueError(f"scenario {self.name!r} has no phases")
        pages = self.footprint_pages(scale)
        if self.partitioned and threads > 1:
            span = pages // threads
            base_page = tid * span
            local_pages = max(1, span)
        else:
            base_page = 0
            local_pages = pages
        out: List[TraceRecord] = []
        for index, (phase, count) in enumerate(
            zip(self.phases, self._record_split(records))
        ):
            rng = np.random.default_rng(
                ((seed * 1_000_003 + tid) ^ (0x5CE0A0 + index)) & 0x7FFFFFFF
            )
            ctx = PhaseContext(
                base_page=base_page,
                pages=local_pages,
                scale=scale,
                seed=seed,
                tid=tid,
                threads=threads,
            )
            out.extend(phase.generate(ctx, rng, count))
        return out

    def generate(
        self,
        threads: int,
        records_per_thread: int,
        scale: int = 1,
        seed: int = 42,
    ) -> List[List[TraceRecord]]:
        """Per-thread traces (the :class:`WorkloadModel.generate` shape)."""
        return [
            self.generate_thread(tid, threads, records_per_thread,
                                 scale=scale, seed=seed)
            for tid in range(threads)
        ]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "footprint_bytes": self.footprint_bytes,
            "phases": [p.to_dict() for p in self.phases],
            "mlp": self.mlp,
            "partitioned": self.partitioned,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        return cls(
            name=str(data["name"]),
            footprint_bytes=int(data["footprint_bytes"]),
            phases=tuple(phase_from_dict(p) for p in data["phases"]),
            mlp=int(data.get("mlp", 8)),
            partitioned=bool(data.get("partitioned", False)),
            description=str(data.get("description", "")),
        )
