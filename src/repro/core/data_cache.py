"""SkyByte's page-granular read-write data cache (§III-B).

Reuses the set-associative structure of the baseline cache but with
SkyByte's fill/writeback policy:

* pages are filled only by *read* misses (writes never allocate -- they go
  to the write log), exploiting spatial locality where it exists;
* on fill, any newer cachelines sitting in the write log are merged into
  the fetched page (read path R3);
* writes update a resident copy in parallel with the log append (W2), so
  resident pages are always up to date and a data-cache hit can be served
  with the cheaper 49 ns index lookup;
* evictions never write back to flash: the write log is the authority for
  dirty data, so dropping a page is free.  This is a key source of the
  flash-traffic reduction of Fig. 18.
"""

from __future__ import annotations

from typing import Optional

from repro.ssd.base_cache import CacheEntry, SetAssociativePageCache
from repro.sim.stats import SimStats


class SkyByteDataCache:
    """Read-write page cache backing the CXL-aware DRAM manager."""

    def __init__(self, capacity_pages: int, ways: int, stats: SimStats) -> None:
        self._cache = SetAssociativePageCache(capacity_pages, ways)
        self._stats = stats

    @property
    def capacity_pages(self) -> int:
        return self._cache.capacity_pages

    def __contains__(self, lpa: int) -> bool:
        return lpa in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, lpa: int, line: int) -> Optional[CacheEntry]:
        """Read-path lookup; marks the line touched on hit."""
        entry = self._cache.lookup(lpa, touch_line=line)
        if entry is not None and self._stats.enabled:
            self._stats.cache_hits += 1
        return entry

    def update_on_write(self, lpa: int, line: int) -> bool:
        """W2: parallel update of a resident copy.  Never allocates.

        Returns True if the page was resident.  The line is recorded in
        ``dirty_mask`` (it is newer than the flash copy) and counts as a
        touch.
        """
        entry = self._cache.peek(lpa)
        if entry is None:
            return False
        entry.touch_mask |= 1 << line
        entry.dirty_mask |= 1 << line
        return True

    def fill(
        self, lpa: int, touch_line: Optional[int], merged_lines: int
    ) -> Optional[CacheEntry]:
        """R3: install a page fetched from flash.

        ``merged_lines`` is the bitmask of cachelines patched in from the
        write log so the resident copy is up to date.  Returns the evicted
        entry, if any (never written back -- see module docstring).
        """
        victim = self._cache.insert(lpa, touch_line=touch_line)
        entry = self._cache.peek(lpa)
        entry.dirty_mask |= merged_lines
        if victim is not None and self._stats.enabled:
            self._stats.cache_evictions += 1
            self._stats.read_locality.record(victim.lines_touched)
        return victim

    def peek(self, lpa: int) -> Optional[CacheEntry]:
        return self._cache.peek(lpa)

    def invalidate(self, lpa: int) -> Optional[CacheEntry]:
        """Drop a page (after promotion to host DRAM or compaction flush)."""
        return self._cache.evict(lpa)

    def entries(self):
        return self._cache.entries()


class QuotaDataCache:
    """Per-tenant data-cache quotas ("cache-quota" isolation).

    The shared page cache is carved into per-tenant set-associative
    shares sized proportionally to tenant weights, so a scan-heavy
    tenant evicts only inside its own quota instead of flushing its
    neighbours' working sets.  Same interface as
    :class:`SkyByteDataCache`; pages outside every partition use
    share 0.
    """

    def __init__(self, capacity_pages: int, ways: int, stats: SimStats,
                 tenant_map) -> None:
        from repro.qos import partition_capacities

        self._map = tenant_map
        shares = partition_capacities(
            capacity_pages, tenant_map.weights, minimum=1
        )
        self.shards = [
            SkyByteDataCache(share, ways, stats) for share in shares
        ]

    def _shard(self, lpa: int) -> SkyByteDataCache:
        tenant = self._map.tenant_of_page(lpa)
        return self.shards[tenant if tenant is not None else 0]

    @property
    def capacity_pages(self) -> int:
        return sum(s.capacity_pages for s in self.shards)

    def __contains__(self, lpa: int) -> bool:
        return lpa in self._shard(lpa)

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def lookup(self, lpa: int, line: int) -> Optional[CacheEntry]:
        return self._shard(lpa).lookup(lpa, line)

    def update_on_write(self, lpa: int, line: int) -> bool:
        return self._shard(lpa).update_on_write(lpa, line)

    def fill(
        self, lpa: int, touch_line: Optional[int], merged_lines: int
    ) -> Optional[CacheEntry]:
        return self._shard(lpa).fill(lpa, touch_line, merged_lines)

    def peek(self, lpa: int) -> Optional[CacheEntry]:
        return self._shard(lpa).peek(lpa)

    def invalidate(self, lpa: int) -> Optional[CacheEntry]:
        return self._shard(lpa).invalidate(lpa)

    def entries(self):
        for shard in self.shards:
            yield from shard.entries()
