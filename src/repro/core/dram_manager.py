"""CXL-aware SSD DRAM manager (§III-B, Fig. 11).

Splits the SSD DRAM into the cacheline-granular write log and the
page-granular data cache, and implements the paper's access paths:

Reads:
  * **R1** data-cache hit: serve from the cached page (49 ns index).
  * **R2** cache miss, write-log hit: serve the logged line (72 ns index).
  * **R3** both miss: fetch the page from flash, merge any logged lines
    into it, install in the data cache, serve the target line.

Writes:
  * **W1** append the line to the write log (never a flash access on the
    critical path).
  * **W2** update the resident data-cache copy in parallel, if any.
  * **W3** update the two-level log index.

When the active log buffer fills, the buffers swap and the full one is
compacted in the background.  If the standby buffer has not finished
draining (extreme write pressure), the write stalls until it has --
double-buffering makes this rare, matching the paper's claim that
compaction stays off the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from repro.config import SSDConfig
from repro.core.compaction import LogCompactor
from repro.core.data_cache import QuotaDataCache, SkyByteDataCache
from repro.core.write_log import PartitionedWriteLog, WriteLog
from repro.sim.engine import Engine
from repro.sim.stats import SimStats
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import PageFTL
from repro.ssd.gc import GarbageCollector


@dataclass
class ReadOutcome:
    """Result of a DRAM-manager read."""

    hit: bool  # served without flash (R1 or R2)
    path: str  # "R1", "R2" or "R3"
    ready_ns: float  # absolute time the line is in SSD DRAM
    indexing_ns: float
    flash_ns: float


@dataclass
class WriteOutcome:
    """Result of a DRAM-manager write."""

    ready_ns: float
    indexing_ns: float
    stalled_ns: float  # time spent waiting for a draining buffer


class SkyByteDRAMManager:
    """The write log + data cache pair and their interaction."""

    def __init__(
        self,
        config: SSDConfig,
        ftl: PageFTL,
        flash: FlashArray,
        gc: GarbageCollector,
        engine: Engine,
        stats: SimStats,
        qos=None,
    ) -> None:
        self._config = config
        self._ftl = ftl
        self._flash = flash
        self._gc = gc
        self._engine = engine
        self._stats = stats
        # ``qos`` is a repro.qos.TenantMap (or None).  It selects the
        # write-log / data-cache organisation; the flash arbiter is
        # installed by the controller.
        self._qos = qos
        if qos is not None and qos.log_partitioning:
            self.write_log = PartitionedWriteLog(config.write_log_entries, qos)
        else:
            self.write_log = WriteLog(config.write_log_entries)
        cache_pages = max(1, config.data_cache_bytes // config.geometry.page_size)
        if qos is not None and qos.cache_quota:
            self.data_cache = QuotaDataCache(
                cache_pages, config.cache_ways, stats, qos
            )
        else:
            self.data_cache = SkyByteDataCache(
                cache_pages, config.cache_ways, stats
            )
        self.compactor = LogCompactor(
            config, self.write_log, self.data_cache, ftl, flash, gc, engine, stats
        )

    # -- read path ------------------------------------------------------------

    def read(
        self, lpa: int, line: int, now: float, tenant: Optional[int] = None
    ) -> ReadOutcome:
        """Parallel lookup of data cache and write log (R1/R2/R3)."""
        cache_idx = self._config.cache_index_ns
        log_idx = self._config.log_index_ns
        entry = self.data_cache.lookup(lpa, line)
        if entry is not None:
            # R1 -- resident pages are kept up to date by W2/R3 merges.
            return ReadOutcome(
                hit=True,
                path="R1",
                ready_ns=now + cache_idx,
                indexing_ns=cache_idx,
                flash_ns=0.0,
            )
        if self.write_log.has_line(lpa, line):
            # R2 -- newest copy lives in the log.
            return ReadOutcome(
                hit=True,
                path="R2",
                ready_ns=now + log_idx,
                indexing_ns=log_idx,
                flash_ns=0.0,
            )
        # R3 -- fetch from flash; both lookups were needed to know (pay the
        # slower of the two parallel lookups).
        indexing = max(cache_idx, log_idx)
        if self._stats.enabled:
            self._stats.cache_misses += 1
        ppa = self._ftl.translate(lpa)
        if ppa is None:
            # Never-written page: zero-fill without flash access.
            flash_ready = now + indexing
        else:
            flash_ready = self._flash.read_page(
                ppa, now + indexing, tenant=tenant
            )
        merged_mask = 0
        for line_offset in self.write_log.lines_for_page(lpa):
            merged_mask |= 1 << line_offset
        self.data_cache.fill(lpa, touch_line=line, merged_lines=merged_mask)
        return ReadOutcome(
            hit=False,
            path="R3",
            ready_ns=flash_ready,
            indexing_ns=indexing,
            flash_ns=max(0.0, flash_ready - now - indexing),
        )

    #: High-water mark: compaction starts when the active buffer reaches
    #: this fill fraction (waiting for completely full risks stalling
    #: writers whenever the drain is slower than the fill).
    COMPACT_HIGH_WATER = 0.75

    # -- write path --------------------------------------------------------------

    def write(self, lpa: int, line: int, now: float) -> WriteOutcome:
        """W1 append + W2 parallel cache update + W3 index update.

        All log operations go through ``log_for(lpa)``: the whole log in
        the default organisation, the owning tenant's share under
        "log-partition" isolation -- so a stalled writer waits only on
        *its own* share's drain horizon, never a neighbour's.
        """
        log = self.write_log.log_for(lpa)
        log_idx = self._config.log_index_ns
        stalled = 0.0
        if log.active.full:
            # Both buffers saturated: wait for the draining one.  The
            # engine's finish event may not have fired yet at this logical
            # time, so reclaim the drained buffer directly.
            if not log.can_swap():
                wait_until = log.drain_until
                stalled = max(0.0, wait_until - now)
                now = max(now, wait_until)
                if log.standby.draining:
                    log.standby.reset()
            self._swap_and_compact(log, now)
        log.append(lpa, line)
        if self._stats.enabled:
            self._stats.log_appends += 1
        self.data_cache.update_on_write(lpa, line)
        high_water = log.active.used >= int(
            self.COMPACT_HIGH_WATER * log.active.capacity
        )
        if high_water and log.can_swap():
            self._swap_and_compact(log, now)
        return WriteOutcome(
            ready_ns=now + log_idx,
            indexing_ns=log_idx,
            stalled_ns=stalled,
        )

    # -- warmup (metadata-only, no timing) ---------------------------------------

    def warm_read(self, lpa: int, line: int) -> None:
        """Warmup replay of a read: bring the page into the data cache as
        a zero-cost fill so LRU state reaches steady state (§VI-A)."""
        entry = self.data_cache.lookup(lpa, line)
        if entry is not None:
            return
        if self.write_log.has_line(lpa, line):
            return
        merged = 0
        for line_offset in self.write_log.lines_for_page(lpa):
            merged |= 1 << line_offset
        self.data_cache.fill(lpa, touch_line=line, merged_lines=merged)

    def warm_write(self, lpa: int, line: int) -> None:
        """Warmup replay of a write: append to the log without scheduling
        compaction; a full buffer is silently recycled."""
        log = self.write_log.log_for(lpa)
        if log.active.full:
            if log.can_swap():
                log.swap()
            log.standby.reset()
            if log.active.full:
                log.swap()
                log.standby.reset()
        log.append(lpa, line)
        self.data_cache.update_on_write(lpa, line)

    # -- maintenance -----------------------------------------------------------------

    def _swap_and_compact(self, log: WriteLog, now: float) -> None:
        full_buffer = log.swap()
        completion = self.compactor.compact(full_buffer, now)
        log.drain_until = max(log.drain_until, completion)

    def flush_all(self, now: float) -> float:
        """Drain both buffers (end-of-run accounting)."""
        completion = now
        for buffer in self.write_log.buffers:
            if buffer.used and not buffer.draining:
                buffer.draining = True
                completion = max(completion, self.compactor.compact(buffer, now))
        return completion

    def invalidate_page(self, lpa: int) -> None:
        """Remove a promoted page from both structures (§III-C)."""
        self.data_cache.invalidate(lpa)
        self.write_log.remove_page(lpa)

    def contains_page(self, lpa: int) -> bool:
        return lpa in self.data_cache or self.write_log.has_page(lpa)

    @property
    def index_memory_bytes(self) -> int:
        return self.write_log.memory_bytes
