"""Two-level hash index for the write log (Fig. 12).

The first level is a hash table keyed by logical page address (LPA); each
valid entry points to a second-level table keyed by the cacheline offset
within that page (6 bits for 64 lines/4 KB page) and storing the log
offset (26 bits).  Grouping by page makes compaction cheap: all logged
lines of one page are found by traversing one second-level table.

The paper sizes the structures precisely -- 16 B first-level entries, 4 B
second-level entries, second-level tables starting at four entries and
doubling when the load factor exceeds 0.75 -- because DRAM footprint
matters inside an SSD controller.  This implementation reproduces that
sizing model (:meth:`LogIndex.memory_bytes`) so the paper's worst-case
32 MB / measured 5.6 MB numbers can be checked, while using Python dicts
for the actual storage.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.config import CACHELINES_PER_PAGE

FIRST_LEVEL_ENTRY_BYTES = 16  # 8 B LPA + 8 B second-level pointer
SECOND_LEVEL_ENTRY_BYTES = 4  # 6-bit page offset + 26-bit log offset
SECOND_LEVEL_INITIAL_SLOTS = 4
SECOND_LEVEL_LOAD_FACTOR = 0.75


class SecondLevelTable:
    """Per-page table: cacheline offset -> log offset.

    Tracks the number of *slots* a resizable open hash table of this load
    factor would hold, for footprint accounting.
    """

    __slots__ = ("entries", "slots")

    def __init__(self) -> None:
        self.entries: Dict[int, int] = {}
        self.slots = SECOND_LEVEL_INITIAL_SLOTS

    def insert(self, line_offset: int, log_offset: int) -> None:
        self.entries[line_offset] = log_offset
        while len(self.entries) > self.slots * SECOND_LEVEL_LOAD_FACTOR:
            self.slots *= 2

    def lookup(self, line_offset: int) -> Optional[int]:
        return self.entries.get(line_offset)

    def remove(self, line_offset: int) -> None:
        self.entries.pop(line_offset, None)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def memory_bytes(self) -> int:
        return self.slots * SECOND_LEVEL_ENTRY_BYTES


class LogIndex:
    """The full two-level index of one write-log buffer."""

    def __init__(self) -> None:
        self._first: Dict[int, SecondLevelTable] = {}
        self._entry_count = 0

    def insert(self, lpa: int, line_offset: int, log_offset: int) -> bool:
        """Index a logged cacheline.  Returns True if this *replaced* an
        older entry for the same (page, line) -- i.e. the write coalesced.
        """
        if not 0 <= line_offset < CACHELINES_PER_PAGE:
            raise ValueError("line_offset out of page range")
        table = self._first.get(lpa)
        if table is None:
            table = SecondLevelTable()
            self._first[lpa] = table
        replaced = line_offset in table.entries
        table.insert(line_offset, log_offset)
        if not replaced:
            self._entry_count += 1
        return replaced

    def lookup(self, lpa: int, line_offset: int) -> Optional[int]:
        """Log offset of the newest logged copy of (lpa, line), or None."""
        table = self._first.get(lpa)
        if table is None:
            return None
        return table.lookup(line_offset)

    def lines_for_page(self, lpa: int) -> Dict[int, int]:
        """All logged lines of ``lpa``: line offset -> log offset."""
        table = self._first.get(lpa)
        return dict(table.entries) if table is not None else {}

    def has_page(self, lpa: int) -> bool:
        return lpa in self._first

    def remove_page(self, lpa: int) -> int:
        """Invalidate every entry of ``lpa`` (used after page promotion --
        "the SSD ... invalidates the write log index by setting the
        corresponding entry as NULL", §III-C).  Returns entries dropped."""
        table = self._first.pop(lpa, None)
        if table is None:
            return 0
        dropped = len(table)
        self._entry_count -= dropped
        return dropped

    def pages(self) -> Iterator[int]:
        """LPAs with at least one logged line (compaction scan, step L1)."""
        return iter(self._first.keys())

    def items(self) -> Iterator[Tuple[int, Dict[int, int]]]:
        for lpa, table in self._first.items():
            yield lpa, dict(table.entries)

    def clear(self) -> None:
        self._first.clear()
        self._entry_count = 0

    def __len__(self) -> int:
        return self._entry_count

    @property
    def page_count(self) -> int:
        return len(self._first)

    @property
    def memory_bytes(self) -> int:
        """DRAM footprint under the paper's sizing model."""
        first = len(self._first) * FIRST_LEVEL_ENTRY_BYTES
        second = sum(t.memory_bytes for t in self._first.values())
        return first + second
