"""Context-switch trigger policy (Algorithm 1 of the paper).

The SSD controller decides, per read that misses its DRAM, whether the
host should context switch instead of stalling.  The estimate is derived
purely from the target flash channel's queue occupancy -- the counters
:class:`repro.ssd.flash.FlashChannel` maintains -- because channel queues
are served FIFO.  If a garbage collection currently occupies the channel
the switch is triggered immediately ("as GCs typically last for
milliseconds", §III-A); the GC's queued erases/programs are also visible
to the estimator through the counters, matching the paper's note that the
GC impact "is already considered in the latency prediction algorithm".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import FlashTiming
from repro.ssd.flash import FlashArray
from repro.ssd.gc import GarbageCollector


@dataclass
class TriggerDecision:
    """Outcome of the trigger policy for one request."""

    trigger: bool
    estimated_ns: float


class ContextSwitchTrigger:
    """Threshold-based trigger policy (Algorithm 1)."""

    def __init__(
        self,
        threshold_ns: float,
        flash: FlashArray,
        gc: GarbageCollector,
        enabled: bool = True,
    ) -> None:
        self.threshold_ns = threshold_ns
        self._flash = flash
        self._gc = gc
        self.enabled = enabled

    def should_context_switch(self, ppa: int) -> TriggerDecision:
        """Algorithm 1: estimate the new read's latency from the channel
        queue and compare against the threshold."""
        channel = self._flash.channel_of(ppa)
        estimated = self._flash.channels[channel].estimate_read_ns()
        if not self.enabled:
            return TriggerDecision(False, estimated)
        if self._gc.is_active(channel):
            return TriggerDecision(True, estimated)
        return TriggerDecision(estimated > self.threshold_ns, estimated)

    @staticmethod
    def estimate_from_counters(
        timing: FlashTiming, num_read: int, num_write: int, num_erase: int
    ) -> float:
        """Pure form of Algorithm 1 lines 5-6 (used in unit tests):
        ``read*(n_read+1) + program*n_write + erase*n_erase``."""
        return (
            timing.read_ns * (num_read + 1)
            + timing.program_ns * num_write
            + timing.erase_ns * num_erase
        )
