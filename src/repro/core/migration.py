"""Adaptive page migration (§III-C).

The SSD controller counts accesses per page; pages whose count crosses a
threshold *and* that are resident in the SSD DRAM cache become promotion
candidates.  A promotion raises an MSI-X interrupt; the host OS allocates
a frame, copies the page over the CXL link while a PLB entry keeps
accesses consistent, then updates the PTE (with a TLB shootdown) and the
SSD drops its cached copies.  When the host budget fills, a cold promoted
page is demoted back first: its host-side dirty cachelines are written to
the SSD (they re-enter through the normal write path) and the PTE points
back at CXL space.

Hotness tracking is pluggable so §VI-H's alternatives slot in:
:class:`SkyByteHotnessPolicy` is the paper's per-page counter;
``TPPHotnessPolicy`` (in :mod:`repro.baselines.tpp`) is the
sampling-based mechanism of TPP, which is deliberately less accurate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol

from repro.config import PAGE_SIZE, SimConfig
from repro.cxl.link import CXLLink
from repro.host.page_table import PageTable
from repro.host.plb import PromotionLookasideBuffer
from repro.sim.engine import Engine
from repro.sim.stats import SimStats


class HotnessPolicy(Protocol):
    """Decides which pages are hot enough to promote."""

    def record_access(self, page: int, is_write: bool, now: float) -> None:
        ...

    def take_candidates(self, now: float) -> List[int]:
        """Pages to promote now; each page is returned at most once until
        it is demoted again."""
        ...

    def forget(self, page: int) -> None:
        """Reset tracking for a page (after promotion or demotion)."""
        ...


class SkyByteHotnessPolicy:
    """Per-page access counters with a fixed promotion threshold (the
    paper's default, following FlatFlash/Thermostat-style tracking)."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._counts: Dict[int, int] = {}
        self._pending: List[int] = []
        self._tracked_out: set = set()

    def record_access(self, page: int, is_write: bool, now: float) -> None:
        if page in self._tracked_out:
            return
        count = self._counts.get(page, 0) + 1
        self._counts[page] = count
        if count == self.threshold:
            self._pending.append(page)
            self._tracked_out.add(page)

    def take_candidates(self, now: float) -> List[int]:
        pending, self._pending = self._pending, []
        return pending

    def forget(self, page: int) -> None:
        self._counts.pop(page, None)
        self._tracked_out.discard(page)

    def access_count(self, page: int) -> int:
        return self._counts.get(page, 0)


@dataclass
class MigrationRecord:
    """Bookkeeping for one completed promotion (tests/inspection)."""

    page: int
    start_ns: float
    end_ns: float


class MigrationEngine:
    """Drives promotions and demotions between SSD DRAM and host DRAM."""

    def __init__(
        self,
        config: SimConfig,
        controller,
        page_table: PageTable,
        link: CXLLink,
        engine: Engine,
        stats: SimStats,
        policy: Optional[HotnessPolicy] = None,
    ) -> None:
        self._config = config
        self._controller = controller
        self._page_table = page_table
        self._link = link
        self._engine = engine
        self._stats = stats
        self.policy = policy or SkyByteHotnessPolicy(config.ssd.promotion_threshold)
        self.plb = PromotionLookasideBuffer()
        self.budget_pages = max(
            1, config.cpu.host_promote_budget_bytes // PAGE_SIZE
        )
        self.history: List[MigrationRecord] = []
        #: Called after a TLB shootdown so cores can account its cost.
        self.on_tlb_shootdown: Optional[Callable[[float], None]] = None
        #: Optional sim-time timeline tracer (see :mod:`repro.obs.timeline`).
        self.tracer = None

    # -- SSD-side hook ---------------------------------------------------------

    def on_page_access(self, page: int, is_write: bool, now: float) -> None:
        """Installed as the controller's page-access observer."""
        self.policy.record_access(page, is_write, now)
        for candidate in self.policy.take_candidates(now):
            self._try_promote(candidate, now)

    # -- promotion ----------------------------------------------------------------

    def _try_promote(self, page: int, now: float) -> bool:
        if self._page_table.is_promoted(page) or self.plb.is_migrating(page):
            return False
        # "SkyByte only migrates pages in the SSD DRAM cache, as it
        # includes the candidate hot pages."
        if not self._controller.contains_page(page):
            self.policy.forget(page)
            return False
        if self._page_table.promoted_count + len(self.plb) >= self.budget_pages:
            self._demote_coldest(now)
            if self._page_table.promoted_count + len(self.plb) >= self.budget_pages:
                return False
        entry = self.plb.begin(page, dst_frame=-1)
        if entry is None:  # PLB full: hardware says wait
            return False

        # Timing: MSI-X + OS handling, then the 4 KB copy upstream.
        os_cfg = self._config.os
        copy_start = now + os_cfg.migration_handling_ns
        copy_done = self._link.send_upstream(copy_start, PAGE_SIZE)
        finish = copy_done + os_cfg.tlb_shootdown_ns

        def _complete() -> None:
            self._finish_promotion(page, now, finish)

        self._engine.schedule_at(finish, _complete)
        return True

    def _finish_promotion(self, page: int, start_ns: float, end_ns: float) -> None:
        plb_entry = self.plb.lookup(page)
        if plb_entry is not None:
            # All lines copied by completion time.
            plb_entry.migrated_mask = (1 << 64) - 1
            self.plb.complete(page)
        carried = self._controller.invalidate_page(page)
        if carried is None:
            carried = 0
        self._page_table.promote(page, carried_dirty_mask=carried)
        self.policy.forget(page)
        if self._stats.enabled:
            self._stats.pages_promoted += 1
        self.history.append(MigrationRecord(page, start_ns, end_ns))
        if self.tracer is not None:
            self.tracer.complete(
                "migration.promote", "migration", "promotions",
                int(start_ns), int(end_ns), args={"page": page},
            )
        if self.on_tlb_shootdown is not None:
            self.on_tlb_shootdown(self._config.os.tlb_shootdown_ns)

    # -- warmup -----------------------------------------------------------------------

    def warm_access(self, page: int, is_write: bool) -> None:
        """Warmup replay: hotness tracking and *instant* promotions so the
        timed run starts from the steady-state page placement (the paper
        warms "the host memory" with the traces, §VI-A)."""
        if self._page_table.is_promoted(page):
            self._page_table.record_host_access(page, 0, is_write, 0.0)
            return
        self.policy.record_access(page, is_write, 0.0)
        for candidate in self.policy.take_candidates(0.0):
            if self._page_table.is_promoted(candidate):
                continue
            if not self._controller.contains_page(candidate):
                self.policy.forget(candidate)
                continue
            if self._page_table.promoted_count >= self.budget_pages:
                victim = self._page_table.coldest_promoted()
                if victim is None:
                    continue
                self._page_table.demote(victim)
                self.policy.forget(victim)
            carried = self._controller.invalidate_page(candidate) or 0
            self._page_table.promote(candidate, carried_dirty_mask=carried)
            self.policy.forget(candidate)

    # -- demotion ------------------------------------------------------------------

    def _demote_coldest(self, now: float) -> bool:
        victim = self._page_table.coldest_promoted()
        if victim is None:
            return False
        # Hysteresis: don't churn pages that were hot a moment ago.
        entry = self._page_table.entry(victim)
        if now - entry.last_access_ns < self._config.os.demote_min_idle_ns:
            return False
        return self.demote(victim, now)

    def demote(self, page: int, now: float) -> bool:
        """Evict a promoted page back to the SSD (§III-C's reclamation)."""
        if not self._page_table.is_promoted(page):
            return False
        _entry, dirty_mask = self._page_table.demote(page)
        # Copy travels back over the CXL link; dirty lines re-enter the
        # SSD through its normal write path (write log or page cache).
        self._link.send_downstream(now, PAGE_SIZE)
        self._controller.demote_page(page, dirty_mask, now)
        self.policy.forget(page)
        if self._stats.enabled:
            self._stats.pages_demoted += 1
        if self.tracer is not None:
            self.tracer.instant(
                "migration.demote", "migration", "demotions", int(now),
                args={"page": page},
            )
        if self.on_tlb_shootdown is not None:
            self.on_tlb_shootdown(self._config.os.tlb_shootdown_ns)
        return True
