"""SkyByte SSD controller.

The device personality implementing the paper's design: the CXL-aware
DRAM manager (write log + data cache) in front of a page-level FTL with
garbage collection, plus the Algorithm 1 trigger that answers long reads
with a ``SkyByte-Delay`` NDR.  Writes are always absorbed by the write log
("As writes are buffered in the write log, they do not need to trigger
context switch", §III-A).

Controller MSHRs coalesce concurrent reads to a page whose flash fetch is
already in flight, mirroring the baseline controller.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import SimConfig
from repro.core.dram_manager import SkyByteDRAMManager
from repro.core.trigger import ContextSwitchTrigger, TriggerDecision
from repro.cxl.protocol import MemRequest
from repro.qos import FlashPacingArbiter, build_tenant_map
from repro.sim import fastpath
from repro.sim.engine import Engine
from repro.sim.stats import SimStats, SSD_READ_HIT, SSD_READ_MISS, SSD_WRITE
from repro.ssd.factory import arbiter_slots, build_flash_subsystem
from repro.ssd.interface import AccessResult


class SkyByteController:
    """The full SkyByte device (write log + data cache + trigger)."""

    def __init__(
        self,
        config: SimConfig,
        engine: Engine,
        stats: SimStats,
        ctx_switch_enabled: Optional[bool] = None,
    ) -> None:
        self._config = config
        self._ssd = config.ssd
        self._engine = engine
        self._stats = stats
        self.ftl, self.flash, self.gc = build_flash_subsystem(config, engine, stats)
        # Tenant QoS (docs/QOS.md): attribution map from the config, the
        # admission arbiter on the flash array for "wfq"/"priority".
        self.tenant_map = build_tenant_map(config.qos)
        self._flash_qos = (
            self.tenant_map is not None and self.tenant_map.flash_scheduling
        )
        if self._flash_qos:
            self.flash.arbiter = FlashPacingArbiter(
                self.tenant_map,
                self._ssd.geometry.channels,
                arbiter_slots(config),
                self._ssd.timing.read_ns,
            )
        self.dram = SkyByteDRAMManager(
            self._ssd, self.ftl, self.flash, self.gc, engine, stats,
            qos=self.tenant_map,
        )
        if ctx_switch_enabled is None:
            ctx_switch_enabled = config.skybyte.device_triggered_ctx_swt
        self.trigger = ContextSwitchTrigger(
            config.os.cs_threshold_ns, self.flash, self.gc, enabled=ctx_switch_enabled
        )
        # Hoisted per-access constant (config is settled by now).
        self._dram_ns = self._ssd.dram_access_ns
        # Controller MSHRs: lpa -> completion time of the in-flight fetch.
        self._inflight: Dict[int, float] = {}
        # Lazy MSHR retirement (vectorized path): stale entries are
        # detected by value (``ready > now``) at every lookup instead of
        # being removed by a scheduled cleanup event, halving the event
        # count of read-heavy runs with identical coalescing decisions.
        self._lazy_inflight = fastpath.vectorized()
        #: Hook for the migration engine (page, is_write, now).
        self.on_page_access = None

    # -- public API ---------------------------------------------------------------

    def access(self, request: MemRequest, now: float) -> AccessResult:
        return self.access_line(
            request.page, request.line_offset, request.is_write, now
        )

    def access_line(
        self, lpa: int, line: int, is_write: bool, now: float
    ) -> AccessResult:
        """Direct entry taking the decoded address: the vectorized host
        path calls this without materialising a :class:`MemRequest`."""
        if self.on_page_access is not None:
            self.on_page_access(lpa, is_write, now)
        if is_write:
            return self._write(lpa, line, now)
        return self._read(lpa, line, now)

    def drain(self, now: float) -> float:
        """Flush both log buffers so end-of-run flash traffic is complete."""
        return self.dram.flush_all(now)

    def warm_access(self, page: int, line: int, is_write: bool) -> None:
        """Metadata-only warmup replay of one access (§VI-A)."""
        if is_write:
            self.dram.warm_write(page, line)
        else:
            self.dram.warm_read(page, line)

    def invalidate_page(self, lpa: int) -> int:
        """Promotion completion: drop the page from SSD DRAM structures.

        Returns the dirty-versus-flash bitmap that was dropped (logged
        lines plus dirty cache lines) so the host copy inherits it.
        """
        dirty = 0
        for line in self.dram.write_log.lines_for_page(lpa):
            dirty |= 1 << line
        entry = self.dram.data_cache.peek(lpa)
        if entry is not None:
            dirty |= entry.dirty_mask
        self.dram.invalidate_page(lpa)
        self._inflight.pop(lpa, None)
        return dirty

    def demote_page(self, lpa: int, dirty_mask: int, now: float) -> None:
        """Accept a demoted page: dirty lines re-enter via the write log
        (they are ordinary cacheline writes arriving over CXL)."""
        line = 0
        mask = dirty_mask
        while mask:
            if mask & 1:
                self.dram.write(lpa, line, now)
            mask >>= 1
            line += 1

    def contains_page(self, lpa: int) -> bool:
        return self.dram.contains_page(lpa)

    # -- read path ------------------------------------------------------------------

    def _read(self, lpa: int, line: int, now: float) -> AccessResult:
        inflight_ready = self._inflight.get(lpa)
        if inflight_ready is not None and inflight_ready > now:
            # Coalesce on the controller MSHR: the page is on its way.
            self._stats.count_request(SSD_READ_MISS)
            indexing = max(self._ssd.cache_index_ns, self._ssd.log_index_ns)
            wait = inflight_ready - now
            self._stats.record_amat(
                indexing=indexing,
                flash=max(0.0, wait - indexing),
                ssd_dram=self._ssd.dram_access_ns,
            )
            entry = self.dram.data_cache.peek(lpa)
            if entry is not None:
                entry.touch_mask |= 1 << line
            decision = self._mshr_decision(wait)
            return AccessResult(
                complete_ns=inflight_ready + self._ssd.dram_access_ns,
                request_class=SSD_READ_MISS,
                delay_hint=decision.trigger,
                est_delay_ns=decision.estimated_ns,
                breakdown={
                    "indexing": indexing,
                    "flash": max(0.0, wait - indexing),
                    "ssd_dram": self._ssd.dram_access_ns,
                },
            )

        # Decide the context-switch hint *before* the fetch mutates the
        # channel queue (the estimate is for the state the request sees).
        decision = self._pre_read_decision(lpa, line)
        tenant = (
            self.tenant_map.tenant_of_page(lpa) if self._flash_qos else None
        )
        outcome = self.dram.read(lpa, line, now, tenant)
        if outcome.hit:
            # Hit: the common case, with the stats mutators inlined
            # (skipping the ``+= 0.0`` component adds is exact).
            stats = self._stats
            dram_ns = self._dram_ns
            if stats.enabled:
                stats.request_counts[SSD_READ_HIT] += 1
                stats.amat_indexing_ns += outcome.indexing_ns
                stats.amat_ssd_dram_ns += dram_ns
                stats.amat_accesses += 1
            return AccessResult(
                complete_ns=outcome.ready_ns + dram_ns,
                request_class=SSD_READ_HIT,
                breakdown={
                    "indexing": outcome.indexing_ns,
                    "ssd_dram": dram_ns,
                },
            )
        self._stats.count_request(SSD_READ_MISS)
        self._stats.record_amat(
            indexing=outcome.indexing_ns,
            flash=outcome.flash_ns,
            ssd_dram=self._ssd.dram_access_ns,
        )
        self._inflight[lpa] = outcome.ready_ns
        if not self._lazy_inflight:
            self._schedule_inflight_cleanup(lpa, outcome.ready_ns)
        self._maybe_prefetch(lpa, now + outcome.indexing_ns)
        return AccessResult(
            complete_ns=outcome.ready_ns + self._ssd.dram_access_ns,
            request_class=SSD_READ_MISS,
            delay_hint=decision.trigger,
            est_delay_ns=decision.estimated_ns,
            breakdown={
                "indexing": outcome.indexing_ns,
                "flash": outcome.flash_ns,
                "ssd_dram": self._ssd.dram_access_ns,
            },
        )

    # -- write path --------------------------------------------------------------------

    def _write(self, lpa: int, line: int, now: float) -> AccessResult:
        if self._stats.enabled:
            self._stats.host_lines_written += 1
        self._stats.count_request(SSD_WRITE)
        outcome = self.dram.write(lpa, line, now)
        stats = self._stats
        dram_ns = self._dram_ns
        if stats.enabled:
            stats.amat_indexing_ns += outcome.indexing_ns
            stats.amat_ssd_dram_ns += dram_ns
            stats.amat_flash_ns += outcome.stalled_ns
            stats.amat_accesses += 1
        return AccessResult(
            complete_ns=outcome.ready_ns + dram_ns,
            request_class=SSD_WRITE,
            breakdown={
                "indexing": outcome.indexing_ns,
                "ssd_dram": dram_ns,
                "flash": outcome.stalled_ns,
            },
        )

    # -- internals ----------------------------------------------------------------------

    def _maybe_prefetch(self, lpa: int, now: float) -> None:
        """Sequential next-page prefetch into the data cache.  SkyByte
        keeps the baseline's published optimisations (§VI-A's Base-CSSD
        includes "prefetching from flash to SSD DRAM"); only the DRAM
        organisation changes."""
        for offset in range(1, self._ssd.prefetch_depth + 1):
            nxt = lpa + offset
            inflight = self._inflight.get(nxt)
            if inflight is not None and (not self._lazy_inflight or inflight > now):
                continue
            if self.dram.data_cache.peek(nxt) is not None:
                continue
            ppa = self.ftl.translate(nxt)
            if ppa is None:
                continue
            tenant = (
                self.tenant_map.tenant_of_page(nxt) if self._flash_qos else None
            )
            ready = self.flash.read_page(ppa, now, tenant=tenant)
            merged = 0
            for line_offset in self.dram.write_log.lines_for_page(nxt):
                merged |= 1 << line_offset
            self.dram.data_cache.fill(nxt, touch_line=None, merged_lines=merged)
            if self._stats.enabled:
                self._stats.prefetch_issued += 1
            self._inflight[nxt] = ready
            if not self._lazy_inflight:
                self._schedule_inflight_cleanup(nxt, ready)

    def _pre_read_decision(self, lpa: int, line: int) -> TriggerDecision:
        """No hint if the read will be served by SSD DRAM (R1 or R2)."""
        if not self.trigger.enabled:
            return TriggerDecision(False, 0.0)
        if self.dram.data_cache.peek(lpa) is not None:
            return TriggerDecision(False, 0.0)
        if self.dram.write_log.has_line(lpa, line):
            return TriggerDecision(False, 0.0)
        ppa = self.ftl.translate(lpa)
        if ppa is None:
            return TriggerDecision(False, 0.0)
        return self.trigger.should_context_switch(ppa)

    def _mshr_decision(self, remaining_wait: float) -> TriggerDecision:
        if not self.trigger.enabled:
            return TriggerDecision(False, remaining_wait)
        return TriggerDecision(
            remaining_wait > self.trigger.threshold_ns, remaining_wait
        )

    def _schedule_inflight_cleanup(self, lpa: int, ready: float) -> None:
        def _done() -> None:
            if self._inflight.get(lpa, 0.0) <= ready:
                self._inflight.pop(lpa, None)

        self._engine.schedule_at(ready, _done)
