"""SkyByte's core mechanisms: write log, data cache, compaction,
context-switch trigger, adaptive migration, and the SkyByte controller."""
