"""Cacheline-granular write log (§III-B, Fig. 12).

All host writes append 64 B entries to a circular log in SSD DRAM -- no
flash access on the critical path.  The log is *double-buffered*: when the
active buffer fills, SkyByte swaps to the standby buffer and compacts the
full one in the background, so incoming writes keep landing in DRAM while
compaction drains.

Each buffer owns a :class:`~repro.core.log_index.LogIndex`.  Read lookups
consult the active buffer first (newest data), then the draining buffer --
the paper's "parallel lookup in both the new log and the old log".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class LogBuffer:
    """One half of the double-buffered log: a circular entry array."""

    def __init__(self, capacity_entries: int, index_cls) -> None:
        if capacity_entries < 1:
            raise ValueError("log buffer needs at least one entry")
        self.capacity = capacity_entries
        self.index = index_cls()
        self.head = 0  # oldest live entry
        self.tail = 0  # next append position
        self._used = 0
        #: bumped on every reset so stale background-finish events can tell
        #: the buffer was already reclaimed (and maybe refilled) and must
        #: not wipe it again.
        self.generation = 0
        #: log position -> (lpa, line_offset); sparse record of appends so
        #: compaction and tests can verify latest-write-wins.
        self.entries: Dict[int, Tuple[int, int]] = {}
        self.draining = False

    @property
    def used(self) -> int:
        return self._used

    @property
    def full(self) -> bool:
        return self._used >= self.capacity

    @property
    def empty(self) -> bool:
        return self._used == 0

    def append(self, lpa: int, line_offset: int) -> int:
        """Append one cacheline write; returns its log offset.

        Raises ``RuntimeError`` if full -- callers must swap buffers first.
        """
        if self.full:
            raise RuntimeError("append to a full log buffer")
        pos = self.tail
        self.tail = (self.tail + 1) % self.capacity
        self._used += 1
        self.entries[pos] = (lpa, line_offset)
        self.index.insert(lpa, line_offset, pos)
        return pos

    def reset(self) -> None:
        """Reclaim the buffer after compaction (drop index + entries)."""
        self.index.clear()
        self.entries.clear()
        self.head = self.tail = 0
        self._used = 0
        self.draining = False
        self.generation += 1


class WriteLog:
    """The double-buffered cacheline write log."""

    def __init__(self, capacity_entries: int, index_cls=None) -> None:
        if index_cls is None:
            from repro.core.log_index import LogIndex

            index_cls = LogIndex
        per_buffer = max(1, capacity_entries // 2)
        self.buffers = [LogBuffer(per_buffer, index_cls) for _ in range(2)]
        self._active = 0
        self.total_appends = 0
        self.coalesced_appends = 0
        #: Completion horizon of this log's in-flight compaction; the
        #: DRAM manager stalls a blocked writer only against the horizon
        #: of the log its write lands in (per-tenant under partitioning).
        self.drain_until = 0.0

    def log_for(self, lpa: int) -> "WriteLog":
        """The log responsible for ``lpa`` (self; overridden when
        partitioned)."""
        return self

    @property
    def active(self) -> LogBuffer:
        return self.buffers[self._active]

    @property
    def standby(self) -> LogBuffer:
        return self.buffers[1 - self._active]

    @property
    def capacity_entries(self) -> int:
        return sum(b.capacity for b in self.buffers)

    @property
    def used_entries(self) -> int:
        return sum(b.used for b in self.buffers)

    def append(self, lpa: int, line_offset: int) -> bool:
        """Append a write to the active buffer.

        Returns True when the append *filled* the active buffer, i.e. a
        compaction should be triggered and the buffers swapped.
        """
        buf = self.active
        if self.active.index.lookup(lpa, line_offset) is not None:
            self.coalesced_appends += 1
        buf.append(lpa, line_offset)
        self.total_appends += 1
        return buf.full

    def can_swap(self) -> bool:
        """True if the standby buffer has finished draining."""
        return self.standby.empty and not self.standby.draining

    def swap(self) -> LogBuffer:
        """Switch to the standby buffer; returns the now-draining buffer.

        The caller (the compactor) is responsible for calling
        ``reset()`` on the returned buffer once the flush completes.
        """
        if not self.can_swap():
            raise RuntimeError("standby buffer still draining")
        full_buffer = self.active
        full_buffer.draining = True
        self._active = 1 - self._active
        return full_buffer

    def lookup(self, lpa: int, line_offset: int) -> Optional[int]:
        """Newest logged copy of (lpa, line): active buffer first, then the
        draining one.  Returns a log offset or None."""
        pos = self.active.index.lookup(lpa, line_offset)
        if pos is not None:
            return pos
        return self.standby.index.lookup(lpa, line_offset)

    def has_line(self, lpa: int, line_offset: int) -> bool:
        return self.lookup(lpa, line_offset) is not None

    def has_page(self, lpa: int) -> bool:
        return self.active.index.has_page(lpa) or self.standby.index.has_page(lpa)

    def lines_for_page(self, lpa: int) -> Dict[int, int]:
        """Union of logged lines for ``lpa`` across both buffers, with the
        active buffer's (newer) entries winning."""
        lines = self.standby.index.lines_for_page(lpa)
        lines.update(self.active.index.lines_for_page(lpa))
        return lines

    def remove_page(self, lpa: int) -> int:
        """Invalidate all entries of a page in both buffers (promotion)."""
        return self.active.index.remove_page(lpa) + self.standby.index.remove_page(lpa)

    @property
    def memory_bytes(self) -> int:
        """Index footprint under the paper's sizing model."""
        return sum(b.index.memory_bytes for b in self.buffers)

    def all_logs(self):
        """Every underlying :class:`WriteLog` (one here; N when
        partitioned)."""
        return (self,)


class PartitionedWriteLog:
    """Per-tenant write-log shares ("log-partition" isolation).

    Each tenant owns a private double-buffered :class:`WriteLog` sized
    proportionally to its weight, so one tenant's write burst fills (and
    compacts) only its own share instead of stealing the whole log's
    coalescing window.  Lookups route by the page's owning partition;
    aggregate counters sum the shares so stats and reports are unchanged
    in shape.  Pages outside every tenant partition fall back to share 0.
    """

    def __init__(self, capacity_entries: int, tenant_map,
                 index_cls=None) -> None:
        from repro.qos import partition_capacities

        self._map = tenant_map
        shares = partition_capacities(
            capacity_entries, tenant_map.weights, minimum=2
        )
        self.logs = [WriteLog(share, index_cls) for share in shares]

    def log_for(self, lpa: int) -> WriteLog:
        tenant = self._map.tenant_of_page(lpa)
        return self.logs[tenant if tenant is not None else 0]

    def all_logs(self):
        return tuple(self.logs)

    # -- routed queries -----------------------------------------------------

    def lookup(self, lpa: int, line_offset: int) -> Optional[int]:
        return self.log_for(lpa).lookup(lpa, line_offset)

    def has_line(self, lpa: int, line_offset: int) -> bool:
        return self.log_for(lpa).has_line(lpa, line_offset)

    def has_page(self, lpa: int) -> bool:
        return self.log_for(lpa).has_page(lpa)

    def lines_for_page(self, lpa: int) -> Dict[int, int]:
        return self.log_for(lpa).lines_for_page(lpa)

    def remove_page(self, lpa: int) -> int:
        return self.log_for(lpa).remove_page(lpa)

    # -- aggregates ---------------------------------------------------------

    @property
    def buffers(self):
        return [b for log in self.logs for b in log.buffers]

    @property
    def total_appends(self) -> int:
        return sum(log.total_appends for log in self.logs)

    @property
    def coalesced_appends(self) -> int:
        return sum(log.coalesced_appends for log in self.logs)

    @property
    def capacity_entries(self) -> int:
        return sum(log.capacity_entries for log in self.logs)

    @property
    def used_entries(self) -> int:
        return sum(log.used_entries for log in self.logs)

    @property
    def memory_bytes(self) -> int:
        return sum(log.memory_bytes for log in self.logs)
