"""Write-log compaction (§III-B, Fig. 13).

When a log buffer fills, SkyByte swaps to the standby buffer and flushes
the full one in the background:

* **L1** scan the first-level hash table for pages with logged lines;
* **L2** if the page is resident in the data cache, flush the (already
  up-to-date) cached copy straight to flash;
* **L3** otherwise load the flash page into a coalescing buffer;
* **L4** merge the logged dirty lines into it;
* **L5** program the merged page back, striping pages across channels.

Because only the *newest* copy of each line is indexed, all older
duplicate writes in the log are dropped here -- this is the write
coalescing that produces the 23x flash-traffic reduction of Fig. 18.
Compaction competes with host reads for the flash channels (the paper's
§VI-C notes the interference), which the FIFO channel queues capture
naturally.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import SSDConfig
from repro.core.data_cache import SkyByteDataCache
from repro.core.write_log import LogBuffer, WriteLog
from repro.sim.engine import Engine
from repro.sim.stats import SimStats
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import PageFTL
from repro.ssd.gc import GarbageCollector


class LogCompactor:
    """Background compaction of full write-log buffers."""

    def __init__(
        self,
        config: SSDConfig,
        write_log: WriteLog,
        data_cache: SkyByteDataCache,
        ftl: PageFTL,
        flash: FlashArray,
        gc: GarbageCollector,
        engine: Engine,
        stats: SimStats,
    ) -> None:
        self._config = config
        self._log = write_log
        self._cache = data_cache
        self._ftl = ftl
        self._flash = flash
        self._gc = gc
        self._engine = engine
        self._stats = stats
        self.active_until = 0.0

    @property
    def busy(self) -> bool:
        return any(b.draining for b in self._log.buffers)

    def compact(
        self,
        buffer: LogBuffer,
        now: float,
        on_done: Optional[Callable[[float], None]] = None,
    ) -> float:
        """Flush every page with logged lines in ``buffer`` to flash.

        Returns the completion time.  FTL metadata updates are immediate;
        the time cost flows through the channel queues.  The buffer is
        reset (space reclaimed, index dropped) at completion.
        """
        completion = now
        pages_flushed = 0
        # Pace the background flushes at roughly the array's aggregate
        # program bandwidth instead of dumping everything into the queues
        # at one instant -- a burst would stall concurrent host reads far
        # beyond the interference the paper observes (§VI-C).
        geo = self._config.geometry
        total_dies = geo.channels * geo.chips_per_channel * geo.dies_per_chip
        # Reads are protected by program suspension, so compaction may run
        # at the array's full program bandwidth.
        pace_ns = self._config.timing.program_ns / max(1, total_dies)
        when = now
        for lpa in list(buffer.index.pages()):
            lines = buffer.index.lines_for_page(lpa)
            if not lines:
                continue
            dirty_count = len(lines)
            cached = self._cache.peek(lpa)
            if cached is None:
                # L3: load the page into the coalescing buffer first.
                old_ppa = self._ftl.translate(lpa)
                if old_ppa is not None:
                    completion = max(completion, self._flash.read_page(old_ppa, when))
            # L4+L5: merge and program the page; FTL round-robin stripes
            # consecutive pages across channels.
            new_ppa = self._ftl.write(lpa)
            completion = max(completion, self._flash.program_page(new_ppa, when))
            self._gc.maybe_collect(self._flash.channel_of(new_ppa), when)
            pages_flushed += 1
            when += pace_ns
            if self._stats.enabled:
                self._stats.write_locality.record(dirty_count)
                self._stats.compaction_pages_flushed += 1

        if self._stats.enabled:
            self._stats.log_compactions += 1
            self._stats.compaction_ns += completion - now
        tracer = getattr(self._flash, "tracer", None)
        if tracer is not None and completion > now:
            tracer.complete(
                "writelog.drain", "writelog", "compactor",
                int(now), int(completion),
                args={"pages_flushed": pages_flushed,
                      "generation": buffer.generation},
            )
        self.active_until = max(self.active_until, completion)
        generation = buffer.generation

        def _finish() -> None:
            # The buffer may have been force-reclaimed (and refilled) by a
            # stalled writer that waited out this compaction; in that case
            # its generation moved on and this event must not wipe it.
            if buffer.generation == generation:
                buffer.reset()
            if on_done is not None:
                on_done(completion)

        self._engine.schedule_at(completion, _finish)
        return completion
