"""Simulation hot-path mode switch: vectorized vs. scalar.

The vectorized hot path (numpy-batched window building, same-epoch event
coalescing, lazy controller-MSHR bookkeeping, trace memoization) is
**byte-identical** to the original per-record scalar path -- the golden
fidelity suites pin this -- but 3-5x faster on the figure drivers.  The
scalar path is kept both as the reference implementation and as the
honest baseline ``python -m repro bench`` measures speedups against.

Mode selection:

* ``REPRO_SIM_PATH=vector`` (the default) enables every fast path;
* ``REPRO_SIM_PATH=scalar`` runs the original per-record code;
* tests pin a mode with the :func:`forced_mode` context manager.

The mode is read once per :class:`~repro.sim.system.System` (and once
per trace-memo lookup), so flipping the environment variable mid-run
does not tear a simulation between the two paths.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

VECTOR = "vector"
SCALAR = "scalar"
_MODES = (VECTOR, SCALAR)

#: Test override installed by :func:`forced_mode`; beats the environment.
_forced: Optional[str] = None


def mode() -> str:
    """The active hot-path mode (``"vector"`` or ``"scalar"``)."""
    if _forced is not None:
        return _forced
    value = os.environ.get("REPRO_SIM_PATH", VECTOR).strip().lower()
    if value not in _MODES:
        raise ValueError(
            f"REPRO_SIM_PATH={value!r} is not a simulation path; "
            f"expected one of {_MODES}"
        )
    return value


def vectorized() -> bool:
    """True when the vectorized fast paths are enabled."""
    return mode() == VECTOR


@contextmanager
def forced_mode(value: str) -> Iterator[None]:
    """Pin the hot-path mode for the duration of a ``with`` block.

    Used by the golden-identity tests and the bench harness to run the
    same cell through both paths regardless of the environment.
    """
    if value not in _MODES:
        raise ValueError(f"unknown simulation path {value!r}; expected {_MODES}")
    global _forced
    previous = _forced
    _forced = value
    try:
        yield
    finally:
        _forced = previous
