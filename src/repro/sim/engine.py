"""Discrete-event simulation engine.

A minimal, deterministic event queue: events are ``(time, seq, callback)``
triples ordered by time then by insertion order, so simultaneous events run
in FIFO order and runs are reproducible.  Every component of the simulator
(flash channels, the SSD controller, CPU cores, the OS scheduler, migration
engines) schedules work through a single :class:`Engine`.
"""

from __future__ import annotations

import heapq
import warnings
from typing import Callable, List, Optional, Tuple

from repro.sim import fastpath

#: Process-wide count of events executed by every :class:`Engine` in this
#: process.  ``repro.bench`` samples it around a run to report events/sec;
#: it is never reset (callers diff two samples).
EVENTS_PROCESSED = 0


def events_processed() -> int:
    """Total events executed by all engines in this process so far."""
    return EVENTS_PROCESSED


class PastEventWarning(RuntimeWarning):
    """:meth:`Engine.schedule_at` was handed a time in the past (clamped).

    The warning text is deliberately constant: the ``warnings`` module
    deduplicates on (message, category, call site), so a tight sweep
    that clamps once per cell emits **one** line per offending call
    site per process instead of flooding distributed worker logs.
    Per-engine details live in :attr:`Engine.past_clamps` and
    :attr:`Engine.last_past_clamp`.
    """


class Engine:
    """A deterministic discrete-event simulator clock."""

    #: Slack (ns) below ``now`` that :meth:`schedule_at` absorbs silently.
    #: Callers compute absolute completion times incrementally, so a few
    #: ulps of floating-point drift must not trip the past-time warning.
    PAST_TOLERANCE_NS = 1e-6

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self._stopped = False
        #: Count of past-time schedule_at calls clamped on this engine.
        self.past_clamps = 0
        #: ``(when, now)`` of the most recent clamp, or None.
        self.last_past_clamp: Optional[Tuple[float, float]] = None
        #: Events executed by this engine across all :meth:`run` calls.
        self.processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` ns from now.

        Negative delays are clamped to zero (the event runs "now", after any
        events already queued for the current instant).
        """
        if delay < 0:
            delay = 0.0
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``when``.

        Past-time semantics: a ``when`` strictly earlier than ``now`` (beyond
        :data:`PAST_TOLERANCE_NS` of floating-point slack) is **clamped to
        now** and a :class:`PastEventWarning` (a :class:`RuntimeWarning`) is
        emitted -- the callback still runs, at the current instant, after
        events already queued for it.  Scheduling in the past is almost
        always a caller bug (a completion time computed from stale state),
        so it is surfaced rather than silently absorbed, but clamping keeps
        long sweeps alive instead of aborting mid-simulation.  The warning
        is deduplicated per call site (constant message, see
        :class:`PastEventWarning`); every occurrence is still counted in
        :attr:`past_clamps` / :attr:`last_past_clamp`.
        """
        if when < self._now - self.PAST_TOLERANCE_NS:
            self.past_clamps += 1
            self.last_past_clamp = (when, self._now)
            warnings.warn(
                "schedule_at received a time in the past; clamping to now "
                "(deduplicated per call site -- see Engine.past_clamps / "
                "Engine.last_past_clamp for details)",
                PastEventWarning,
                stacklevel=2,
            )
        self.schedule(when - self._now, callback)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulation time when the loop exited.

        The vectorized path coalesces same-epoch events: the clock is
        advanced once per distinct timestamp and every event queued for
        that instant drains in one inner loop, still strictly in
        insertion (seq) order -- new events scheduled *for the current
        instant* by a running callback join the same batch after every
        older same-time event, exactly as the scalar loop orders them.
        """
        if fastpath.vectorized():
            return self._run_batched(until)
        return self._run_scalar(until)

    def _run_scalar(self, until: Optional[float]) -> float:
        """Reference event loop: one heap pop per event."""
        self._stopped = False
        queue = self._queue
        processed = 0
        try:
            while queue and not self._stopped:
                when, _seq, callback = queue[0]
                if until is not None and when > until:
                    self._now = until
                    break
                heapq.heappop(queue)
                self._now = when
                processed += 1
                callback()
        finally:
            self._count(processed)
        return self._now

    def _run_batched(self, until: Optional[float]) -> float:
        """Same-epoch coalescing loop (byte-identical event order).

        Scheduling can never produce an event earlier than ``now`` (both
        :meth:`schedule` and :meth:`schedule_at` clamp), so while the
        clock sits at one timestamp the heap minimum stays >= that
        timestamp and popping every head with an equal timestamp yields
        the exact global (time, seq) order of the scalar loop.
        """
        self._stopped = False
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        try:
            while queue and not self._stopped:
                when = queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                self._now = when
                while queue and queue[0][0] == when and not self._stopped:
                    callback = pop(queue)[2]
                    processed += 1
                    callback()
        finally:
            self._count(processed)
        return self._now

    def _count(self, processed: int) -> None:
        self.processed += processed
        global EVENTS_PROCESSED
        EVENTS_PROCESSED += processed

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
