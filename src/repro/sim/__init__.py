"""Simulation engine, statistics, and full-system composition."""
