"""Statistics collection for the SkyByte simulator.

One :class:`SimStats` object is shared by every component of a system
simulation.  It implements exactly the accounting the paper's figures need:

* off-chip latency distribution (Fig. 3) via a log-bucketed histogram,
* compute/memory boundedness breakdown (Figs. 4 and 10),
* per-page cacheline locality CDFs for flash reads and flushes (Figs. 5/6),
* memory request classes H-R/W, S-R-H, S-R-M, S-W (Fig. 16),
* AMAT components host-DRAM / CXL protocol / indexing / SSD DRAM / flash
  (Fig. 17, computed with the paper's three-level hierarchy model),
* flash write traffic (Figs. 18 and 20) and read latency (Table III),
* throughput and SSD bandwidth utilisation (Fig. 15).

Stats collection honours a warmup window: all mutators are no-ops while
``enabled`` is False, mirroring the paper's trace warmup phase.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.config import CACHELINES_PER_PAGE

# Request classes of Fig. 16.
HOST_DRAM = "H-R/W"  # served by (promoted pages in) host DRAM
SSD_READ_HIT = "S-R-H"  # read hit in SSD write log or data cache
SSD_READ_MISS = "S-R-M"  # read miss -> flash access
SSD_WRITE = "S-W"  # write appended to log / absorbed by SSD DRAM

REQUEST_CLASSES = (HOST_DRAM, SSD_READ_HIT, SSD_READ_MISS, SSD_WRITE)


class LatencyHistogram:
    """Log-bucketed latency histogram (10 buckets per decade).

    Supports the percentile queries used to plot Fig. 3's latency CDFs
    without storing every sample.
    """

    BUCKETS_PER_DECADE = 10

    #: Device latencies are heavily quantised (fixed DRAM load-to-use,
    #: per-tier flash read points), so the same float recurs millions of
    #: times; memoising its bucket skips the ``log10`` on every repeat.
    _BUCKET_CACHE_MAX = 4096

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        self._min = math.inf
        self._bucket_cache: Dict[float, int] = {}

    def record(self, latency_ns: float) -> None:
        if latency_ns < 1.0:
            latency_ns = 1.0
        cache = self._bucket_cache
        bucket = cache.get(latency_ns)
        if bucket is None:
            bucket = int(math.log10(latency_ns) * self.BUCKETS_PER_DECADE)
            if len(cache) < self._BUCKET_CACHE_MAX:
                cache[latency_ns] = bucket
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self._total += 1
        self._sum += latency_ns
        if latency_ns > self._max:
            self._max = latency_ns
        if latency_ns < self._min:
            self._min = latency_ns

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    @property
    def max(self) -> float:
        return self._max

    @property
    def min(self) -> float:
        return self._min if self._total else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0 < p <= 100).

        Returns the upper edge of the bucket containing the percentile.
        """
        if not self._total:
            return 0.0
        target = max(1, math.ceil(self._total * p / 100.0))
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if seen >= target:
                return 10 ** ((bucket + 1) / self.BUCKETS_PER_DECADE)
        return self._max

    def cdf(self) -> List[Tuple[float, float]]:
        """Return (latency_ns, cumulative_fraction) points for plotting."""
        points: List[Tuple[float, float]] = []
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            edge = 10 ** ((bucket + 1) / self.BUCKETS_PER_DECADE)
            points.append((edge, seen / self._total))
        return points

    def fraction_below(self, latency_ns: float) -> float:
        """Fraction of samples at or below ``latency_ns``."""
        if not self._total:
            return 0.0
        seen = 0
        for bucket in sorted(self._counts):
            edge = 10 ** ((bucket + 1) / self.BUCKETS_PER_DECADE)
            if edge > latency_ns:
                break
            seen += self._counts[bucket]
        return seen / self._total

    def count_above(self, latency_ns: float) -> int:
        """Number of samples in buckets whose upper edge exceeds
        ``latency_ns`` -- the SLO-violation counter."""
        seen = 0
        for bucket, count in self._counts.items():
            edge = 10 ** ((bucket + 1) / self.BUCKETS_PER_DECADE)
            if edge > latency_ns:
                seen += count
        return seen

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (bucket-exact:
        merging then querying equals recording every sample here)."""
        for bucket, count in other._counts.items():
            self._counts[bucket] = self._counts.get(bucket, 0) + count
        self._total += other._total
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max
        if other._min < self._min:
            self._min = other._min

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (bucket keys become strings; an empty
        histogram stores ``min`` as ``None`` instead of ``inf``)."""
        return {
            "counts": {str(b): c for b, c in self._counts.items()},
            "total": self._total,
            "sum": self._sum,
            "max": self._max,
            "min": self._min if self._total else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencyHistogram":
        hist = cls()
        hist._counts = {int(b): int(c) for b, c in data["counts"].items()}
        hist._total = int(data["total"])
        hist._sum = float(data["sum"])
        hist._max = float(data["max"])
        hist._min = math.inf if data["min"] is None else float(data["min"])
        return hist


class LocalityTracker:
    """Collects the per-page cacheline-touch ratios of Figs. 5 and 6.

    ``record(n_touched)`` is called once per page event (a flash read for
    Fig. 5, a flush/writeback for Fig. 6) with the number of distinct
    cachelines the host touched in that page while it was resident.
    """

    def __init__(self) -> None:
        # counts[k] = number of page events with exactly k lines touched.
        self._counts = [0] * (CACHELINES_PER_PAGE + 1)
        self._total = 0

    def record(self, lines_touched: int) -> None:
        lines_touched = max(0, min(CACHELINES_PER_PAGE, lines_touched))
        self._counts[lines_touched] += 1
        self._total += 1

    @property
    def count(self) -> int:
        return self._total

    def cdf(self) -> List[Tuple[float, float]]:
        """(ratio_of_lines, cumulative_fraction_of_pages) points."""
        points: List[Tuple[float, float]] = []
        seen = 0
        for k in range(CACHELINES_PER_PAGE + 1):
            seen += self._counts[k]
            if self._counts[k]:
                points.append((k / CACHELINES_PER_PAGE, seen / self._total))
        return points

    def fraction_of_pages_below(self, line_ratio: float) -> float:
        """Fraction of page events that touched at most ``line_ratio`` of
        the page's cachelines (e.g. 0.4 for the paper's "<40% of lines in
        >75% of pages" observation)."""
        if not self._total:
            return 0.0
        limit = int(line_ratio * CACHELINES_PER_PAGE)
        return sum(self._counts[: limit + 1]) / self._total

    def mean_ratio(self) -> float:
        if not self._total:
            return 0.0
        touched = sum(k * c for k, c in enumerate(self._counts))
        return touched / (self._total * CACHELINES_PER_PAGE)

    def merge(self, other: "LocalityTracker") -> None:
        for k, count in enumerate(other._counts):
            self._counts[k] += count
        self._total += other._total

    def to_dict(self) -> Dict[str, object]:
        return {"counts": list(self._counts), "total": self._total}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LocalityTracker":
        tracker = cls()
        counts = [int(c) for c in data["counts"]]
        # Tolerate trackers serialized at a different CACHELINES_PER_PAGE.
        tracker._counts[: len(counts)] = counts[: len(tracker._counts)]
        tracker._total = int(data["total"])
        return tracker


class DeviceStats:
    """Per-op accounting of the deep device model (``device_model="deep"``).

    Attached as :attr:`SimStats.device` only when a deep-model flash
    subsystem is built, so flat runs serialise (and hash) exactly as
    before the deep model existed: :meth:`SimStats.to_dict` emits a
    ``"device"`` key only when this object is present.
    """

    def __init__(self) -> None:
        #: Flash page reads issued on behalf of GC valid-page migration.
        self.gc_reads = 0
        #: Flash page programs issued on behalf of GC migration.
        self.gc_programs = 0
        #: Block erases issued by GC campaigns.
        self.gc_erases = 0
        #: Deferred background-GC campaigns that actually ran.
        self.background_campaigns = 0
        #: Per-channel in-flight command-queue depth: peak, plus
        #: sum/samples for the mean (sampled at every submit).
        self.queue_depth_peak: List[int] = []
        self.queue_depth_sum = 0
        self.queue_depth_samples = 0

    def note_queue_depth(self, channel: int, depth: int) -> None:
        if channel >= len(self.queue_depth_peak):
            self.queue_depth_peak.extend(
                [0] * (channel + 1 - len(self.queue_depth_peak))
            )
        if depth > self.queue_depth_peak[channel]:
            self.queue_depth_peak[channel] = depth
        self.queue_depth_sum += depth
        self.queue_depth_samples += 1

    @property
    def mean_queue_depth(self) -> float:
        if not self.queue_depth_samples:
            return 0.0
        return self.queue_depth_sum / self.queue_depth_samples

    @property
    def max_queue_depth(self) -> int:
        return max(self.queue_depth_peak, default=0)

    def merge(self, other: "DeviceStats") -> None:
        self.gc_reads += other.gc_reads
        self.gc_programs += other.gc_programs
        self.gc_erases += other.gc_erases
        self.background_campaigns += other.background_campaigns
        if len(other.queue_depth_peak) > len(self.queue_depth_peak):
            self.queue_depth_peak.extend(
                [0] * (len(other.queue_depth_peak) - len(self.queue_depth_peak))
            )
        for channel, peak in enumerate(other.queue_depth_peak):
            if peak > self.queue_depth_peak[channel]:
                self.queue_depth_peak[channel] = peak
        self.queue_depth_sum += other.queue_depth_sum
        self.queue_depth_samples += other.queue_depth_samples

    def to_dict(self) -> Dict[str, object]:
        return {
            "gc_reads": self.gc_reads,
            "gc_programs": self.gc_programs,
            "gc_erases": self.gc_erases,
            "background_campaigns": self.background_campaigns,
            "queue_depth_peak": list(self.queue_depth_peak),
            "queue_depth_sum": self.queue_depth_sum,
            "queue_depth_samples": self.queue_depth_samples,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeviceStats":
        device = cls()
        device.gc_reads = int(data["gc_reads"])
        device.gc_programs = int(data["gc_programs"])
        device.gc_erases = int(data["gc_erases"])
        device.background_campaigns = int(data["background_campaigns"])
        device.queue_depth_peak = [int(p) for p in data["queue_depth_peak"]]
        device.queue_depth_sum = int(data["queue_depth_sum"])
        device.queue_depth_samples = int(data["queue_depth_samples"])
        return device


class EngineStats:
    """Event-engine observability counters (opt-in, tracing runs only).

    Attached as :attr:`SimStats.engine` only when a run is executed with
    tracing enabled (``SimConfig.trace.enabled``), so ordinary runs
    serialise (and hash) exactly as before: :meth:`SimStats.to_dict`
    emits an ``"engine"`` key only when this object is present.
    """

    def __init__(self) -> None:
        #: Events executed by the run's :class:`~repro.sim.engine.Engine`.
        self.events_processed = 0
        #: Past-time ``schedule_at`` calls the engine clamped to now.
        self.past_clamps = 0

    def merge(self, other: "EngineStats") -> None:
        self.events_processed += other.events_processed
        self.past_clamps += other.past_clamps

    def to_dict(self) -> Dict[str, object]:
        return {
            "events_processed": self.events_processed,
            "past_clamps": self.past_clamps,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EngineStats":
        engine = cls()
        engine.events_processed = int(data["events_processed"])
        engine.past_clamps = int(data["past_clamps"])
        return engine


#: Plain-number attributes of :class:`SimStats`, serialized verbatim.
SCALAR_STATS: Tuple[str, ...] = (
    "instructions",
    "compute_ns",
    "memory_stall_ns",
    "context_switch_ns",
    "context_switches",
    "start_ns",
    "end_ns",
    "amat_host_dram_ns",
    "amat_protocol_ns",
    "amat_indexing_ns",
    "amat_ssd_dram_ns",
    "amat_flash_ns",
    "amat_accesses",
    "flash_page_reads",
    "flash_page_writes",
    "flash_block_erases",
    "gc_page_moves",
    "gc_invocations",
    "host_lines_written",
    "host_lines_read",
    "log_appends",
    "log_coalesced_updates",
    "log_compactions",
    "compaction_pages_flushed",
    "compaction_ns",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_dirty_evictions",
    "prefetch_issued",
    "pages_promoted",
    "pages_demoted",
    "promoted_hits",
    "cxl_bytes",
)


class SimStats:
    """Aggregate statistics for one simulation run."""

    def __init__(self) -> None:
        self.enabled = True

        # --- execution/boundedness (Figs. 2, 4, 10) ---
        self.instructions = 0
        self.compute_ns = 0.0
        self.memory_stall_ns = 0.0
        self.context_switch_ns = 0.0
        self.context_switches = 0
        self.start_ns = 0.0
        self.end_ns = 0.0

        # --- request classes and latencies (Figs. 3, 16) ---
        self.request_counts: Dict[str, int] = {c: 0 for c in REQUEST_CLASSES}
        self.offchip_latency = LatencyHistogram()
        self.flash_read_latency = LatencyHistogram()

        # --- AMAT components, exposed-time weighted (Fig. 17) ---
        self.amat_host_dram_ns = 0.0
        self.amat_protocol_ns = 0.0
        self.amat_indexing_ns = 0.0
        self.amat_ssd_dram_ns = 0.0
        self.amat_flash_ns = 0.0
        self.amat_accesses = 0

        # --- flash traffic (Figs. 18, 20) ---
        self.flash_page_reads = 0
        self.flash_page_writes = 0
        self.flash_block_erases = 0
        self.gc_page_moves = 0
        self.gc_invocations = 0
        self.host_lines_written = 0
        self.host_lines_read = 0

        # --- SSD DRAM structures ---
        self.log_appends = 0
        self.log_coalesced_updates = 0
        self.log_compactions = 0
        self.compaction_pages_flushed = 0
        self.compaction_ns = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.cache_dirty_evictions = 0
        self.prefetch_issued = 0

        # --- migrations (Fig. 23 designs) ---
        self.pages_promoted = 0
        self.pages_demoted = 0
        self.promoted_hits = 0

        # --- locality (Figs. 5/6) ---
        self.read_locality = LocalityTracker()
        self.write_locality = LocalityTracker()

        # --- link utilisation (Fig. 15) ---
        self.cxl_bytes = 0

        # --- deep device model (None on flat runs; see DeviceStats) ---
        self.device: "DeviceStats | None" = None

        # --- engine counters (None unless tracing; see EngineStats) ---
        self.engine: "EngineStats | None" = None

    # -- mutators (no-ops during warmup) ------------------------------------

    def add_instructions(self, n: int) -> None:
        if self.enabled:
            self.instructions += n

    def add_compute(self, ns: float) -> None:
        if self.enabled:
            self.compute_ns += ns

    def add_memory_stall(self, ns: float) -> None:
        if self.enabled:
            self.memory_stall_ns += ns

    def add_context_switch(self, ns: float) -> None:
        if self.enabled:
            self.context_switch_ns += ns
            self.context_switches += 1

    def count_request(self, cls: str) -> None:
        if self.enabled:
            self.request_counts[cls] += 1

    def record_offchip(self, latency_ns: float) -> None:
        if self.enabled:
            self.offchip_latency.record(latency_ns)

    def record_flash_read(self, latency_ns: float) -> None:
        if self.enabled:
            self.flash_read_latency.record(latency_ns)

    def record_amat(
        self,
        host_dram: float = 0.0,
        protocol: float = 0.0,
        indexing: float = 0.0,
        ssd_dram: float = 0.0,
        flash: float = 0.0,
    ) -> None:
        if not self.enabled:
            return
        self.amat_host_dram_ns += host_dram
        self.amat_protocol_ns += protocol
        self.amat_indexing_ns += indexing
        self.amat_ssd_dram_ns += ssd_dram
        self.amat_flash_ns += flash
        self.amat_accesses += 1

    def add_amat_extra(
        self,
        host_dram: float = 0.0,
        protocol: float = 0.0,
        indexing: float = 0.0,
        ssd_dram: float = 0.0,
        flash: float = 0.0,
    ) -> None:
        """Add AMAT component time *without* counting a new access -- used
        when a wrapper layer (CXL link, host cache) adds cost to an access
        another layer already recorded."""
        if not self.enabled:
            return
        self.amat_host_dram_ns += host_dram
        self.amat_protocol_ns += protocol
        self.amat_indexing_ns += indexing
        self.amat_ssd_dram_ns += ssd_dram
        self.amat_flash_ns += flash

    def unrecord_access(self, request_class: str, breakdown: Dict[str, float]) -> None:
        """Reverse the AMAT/request-class accounting of one access.

        The paper excludes squashed instructions: "a memory access
        triggering a context switch is excluded from calculating AMAT
        since this instruction is squashed.  The replayed instruction that
        eventually retires is included."  Device-side effects (the flash
        fetch, cache fills) are *not* reversed -- they really happened.
        """
        if not self.enabled:
            return
        if self.request_counts.get(request_class, 0) > 0:
            self.request_counts[request_class] -= 1
        self.amat_host_dram_ns -= breakdown.get("host_dram", 0.0)
        self.amat_protocol_ns -= breakdown.get("protocol", 0.0)
        self.amat_indexing_ns -= breakdown.get("indexing", 0.0)
        self.amat_ssd_dram_ns -= breakdown.get("ssd_dram", 0.0)
        self.amat_flash_ns -= breakdown.get("flash", 0.0)
        if self.amat_accesses > 0:
            self.amat_accesses -= 1

    def add_cxl_bytes(self, n: int) -> None:
        if self.enabled:
            self.cxl_bytes += n

    # -- derived metrics -----------------------------------------------------

    @property
    def execution_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def amat_ns(self) -> float:
        """Average memory access time over all off-chip accesses."""
        if not self.amat_accesses:
            return 0.0
        total = (
            self.amat_host_dram_ns
            + self.amat_protocol_ns
            + self.amat_indexing_ns
            + self.amat_ssd_dram_ns
            + self.amat_flash_ns
        )
        return total / self.amat_accesses

    def amat_breakdown(self) -> Dict[str, float]:
        """Per-access AMAT components (Fig. 17's stack order)."""
        n = max(1, self.amat_accesses)
        return {
            "Host DRAM": self.amat_host_dram_ns / n,
            "CXL Protocol": self.amat_protocol_ns / n,
            "Indexing": self.amat_indexing_ns / n,
            "SSD DRAM": self.amat_ssd_dram_ns / n,
            "Flash": self.amat_flash_ns / n,
        }

    def boundedness(self) -> Dict[str, float]:
        """Fractions of execution time bounded by memory / compute /
        context switching (Figs. 4 and 10)."""
        total = self.compute_ns + self.memory_stall_ns + self.context_switch_ns
        if total <= 0:
            return {"memory": 0.0, "compute": 0.0, "context_switch": 0.0}
        return {
            "memory": self.memory_stall_ns / total,
            "compute": self.compute_ns / total,
            "context_switch": self.context_switch_ns / total,
        }

    @property
    def flash_bytes_written(self) -> int:
        from repro.config import PAGE_SIZE

        return self.flash_page_writes * PAGE_SIZE

    @property
    def write_amplification(self) -> float:
        """Flash bytes written per host byte written (Fig. 18's metric,
        inverted: higher means more amplification)."""
        from repro.config import CACHELINE_SIZE

        host_bytes = self.host_lines_written * CACHELINE_SIZE
        if host_bytes == 0:
            return 0.0
        return self.flash_bytes_written / host_bytes

    @property
    def throughput_ipns(self) -> float:
        """Instructions per nanosecond across all cores."""
        if self.execution_ns <= 0:
            return 0.0
        return self.instructions / self.execution_ns

    @property
    def cxl_bandwidth_bytes_per_ns(self) -> float:
        """Average CXL link bandwidth used over the measured window."""
        if self.execution_ns <= 0:
            return 0.0
        return self.cxl_bytes / self.execution_ns

    def request_breakdown(self) -> Dict[str, float]:
        """Fractions per request class (Fig. 16)."""
        total = sum(self.request_counts.values())
        if total == 0:
            return {c: 0.0 for c in REQUEST_CLASSES}
        return {c: self.request_counts[c] / total for c in REQUEST_CLASSES}

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "SimStats") -> None:
        """Fold ``other`` into this object: scalar counters and request
        counts add, histograms and locality trackers merge bucket-wise,
        and the measurement window becomes the union
        (``start = min``, ``end = max``).  Summing per-tenant stats this
        way reproduces the aggregate exactly (the conservation property
        pinned in ``tests/test_stats.py``)."""
        for name in SCALAR_STATS:
            if name == "start_ns":
                self.start_ns = min(self.start_ns, other.start_ns)
            elif name == "end_ns":
                self.end_ns = max(self.end_ns, other.end_ns)
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))
        for cls_name, count in other.request_counts.items():
            self.request_counts[cls_name] = (
                self.request_counts.get(cls_name, 0) + count
            )
        self.offchip_latency.merge(other.offchip_latency)
        self.flash_read_latency.merge(other.flash_read_latency)
        self.read_locality.merge(other.read_locality)
        self.write_locality.merge(other.write_locality)
        if other.device is not None:
            if self.device is None:
                self.device = DeviceStats()
            self.device.merge(other.device)
        if other.engine is not None:
            if self.engine is None:
                self.engine = EngineStats()
            self.engine.merge(other.engine)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict capturing every counter, histogram and tracker.

        Round-trips losslessly through :meth:`from_dict`: the orchestrator
        relies on this so a cached or worker-process result is numerically
        identical to one computed in-process.
        """
        data = {
            "enabled": self.enabled,
            "scalars": {name: getattr(self, name) for name in SCALAR_STATS},
            "request_counts": dict(self.request_counts),
            "offchip_latency": self.offchip_latency.to_dict(),
            "flash_read_latency": self.flash_read_latency.to_dict(),
            "read_locality": self.read_locality.to_dict(),
            "write_locality": self.write_locality.to_dict(),
        }
        # Only deep-model runs carry device stats; flat runs keep the
        # exact pre-deep-model serialisation (golden digests).
        if self.device is not None:
            data["device"] = self.device.to_dict()
        # Engine counters likewise appear only on tracing runs.
        if self.engine is not None:
            data["engine"] = self.engine.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimStats":
        stats = cls()
        stats.enabled = bool(data["enabled"])
        for name, value in data["scalars"].items():
            setattr(stats, name, value)
        stats.request_counts = {c: 0 for c in REQUEST_CLASSES}
        stats.request_counts.update(
            {c: int(n) for c, n in data["request_counts"].items()}
        )
        stats.offchip_latency = LatencyHistogram.from_dict(data["offchip_latency"])
        stats.flash_read_latency = LatencyHistogram.from_dict(
            data["flash_read_latency"]
        )
        stats.read_locality = LocalityTracker.from_dict(data["read_locality"])
        stats.write_locality = LocalityTracker.from_dict(data["write_locality"])
        if data.get("device") is not None:
            stats.device = DeviceStats.from_dict(data["device"])
        if data.get("engine") is not None:
            stats.engine = EngineStats.from_dict(data["engine"])
        return stats

    def summary(self) -> Dict[str, float]:
        """A flat dict of headline metrics, handy for tables.

        Deep-model runs gain ``gc_*`` / queue-depth keys; flat runs keep
        the exact pre-deep-model key set (golden summaries).
        """
        bd = self.boundedness()
        out = {
            "execution_ns": self.execution_ns,
            "instructions": float(self.instructions),
            "throughput_ipns": self.throughput_ipns,
            "amat_ns": self.amat_ns,
            "context_switches": float(self.context_switches),
            "flash_page_reads": float(self.flash_page_reads),
            "flash_page_writes": float(self.flash_page_writes),
            "flash_block_erases": float(self.flash_block_erases),
            "write_amplification": self.write_amplification,
            "memory_bound_frac": bd["memory"],
            "compute_bound_frac": bd["compute"],
            "pages_promoted": float(self.pages_promoted),
            "mean_flash_read_ns": self.flash_read_latency.mean,
        }
        if self.device is not None:
            out["gc_reads"] = float(self.device.gc_reads)
            out["gc_programs"] = float(self.device.gc_programs)
            out["gc_erases"] = float(self.device.gc_erases)
            out["background_gc_campaigns"] = float(
                self.device.background_campaigns
            )
            out["mean_queue_depth"] = self.device.mean_queue_depth
            out["max_queue_depth"] = float(self.device.max_queue_depth)
        if self.engine is not None:
            out["events_processed"] = float(self.engine.events_processed)
            out["past_clamps"] = float(self.engine.past_clamps)
        return out
