"""Full-system composition: cores + OS + CXL link + SSD device.

:class:`System` wires one simulation run together: it builds the device
personality a :class:`~repro.variants.DesignVariant` asks for, installs
the migration engine and scheduler, preconditions the flash (so GC
triggers, as in §VI-A), replays the per-thread traces on the interval
cores, and collects a :class:`~repro.sim.stats.SimStats`.

The host-side memory path lives here: promoted pages are served from
host DRAM (the H-R/W class of Fig. 16); everything else crosses the CXL
link with its protocol latency and serialisation, matching the paper's
AMAT model of a three-level hierarchy where "access to SSD DRAM will
bypass host DRAM".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines.astriflash import AstriFlashController
from repro.baselines.tpp import TPPHotnessPolicy
from repro.config import CACHELINE_SIZE, SimConfig
from repro.core.controller import SkyByteController
from repro.core.migration import MigrationEngine, SkyByteHotnessPolicy
from repro.cpu.core import Core
from repro.cpu.dram import HostDRAM
from repro.cxl.link import CXLLink
from repro.cxl.protocol import M2SOpcode, MemRequest
from repro.host.page_table import PageTable
from repro.host.scheduler import Scheduler
from repro.host.threads import ThreadContext
from repro.obs.timeline import TimelineTracer
from repro.qos import build_tenant_map
from repro.sim import fastpath
from repro.sim.engine import Engine
from repro.sim.stats import HOST_DRAM, EngineStats, SimStats
from repro.ssd.base_controller import BaseCSSDController
from repro.ssd.interface import AccessResult
from repro.variants import DesignVariant
from repro.workloads.trace import TraceRecord

#: Wire sizes: request header, and a data flit (64 B line + header).
REQ_BYTES = 8
DATA_BYTES = CACHELINE_SIZE + 4
NDR_BYTES = 4


class System:
    """One complete simulated machine executing one workload."""

    def __init__(
        self,
        config: SimConfig,
        traces: Sequence[Sequence[TraceRecord]],
        variant: DesignVariant,
        workload_mlp: int = 8,
    ) -> None:
        self.workload_mlp = max(1, workload_mlp)
        self.config = variant.apply(config)
        self.variant = variant
        #: Sim-time timeline recorder, built only when tracing is on.
        self.tracer: Optional[TimelineTracer] = None
        if self.config.trace.enabled:
            self.tracer = TimelineTracer(
                max_events=self.config.trace.max_events
            )
        # Tracing pins the scalar path: the fused fast path skips the
        # per-request structures the tracer annotates, and both paths are
        # timing-identical by construction (pinned in test_fastpath.py).
        self._fast = fastpath.vectorized() and self.tracer is None
        self.engine = Engine()
        self.stats = SimStats()
        self.link = CXLLink(self.config.cxl, self.stats)
        self.host_dram = HostDRAM(self.config.cpu)
        self.page_table = PageTable()
        self.scheduler = Scheduler(self.config.os.t_policy, seed=self.config.seed)
        # Host-side tenant QoS ("wfq"/"priority" isolation): weighted or
        # priority-aware CFS picking, reconstructed from the config alone
        # so trace replay behaves identically on every backend.
        qos_map = build_tenant_map(self.config.qos)
        if qos_map is not None and qos_map.host_scheduling:
            self.scheduler.set_tenant_qos(qos_map)

        # Precomputed wire timing for the fused CXL fast path: per-message
        # byte counts and serialisation delays for the four message sizes
        # (read/write x down/up).  ``transfer_ns`` is deterministic in the
        # byte count, so hoisting it out of the per-access loop is exact.
        cxl = self.config.cxl
        fo = CXLLink.FLIT_OVERHEAD
        self._protocol_ns = cxl.protocol_ns
        self._wire = {
            False: (
                REQ_BYTES + fo,
                cxl.transfer_ns(REQ_BYTES + fo),
                DATA_BYTES + fo,
                cxl.transfer_ns(DATA_BYTES + fo),
            ),
            True: (
                REQ_BYTES + CACHELINE_SIZE + fo,
                cxl.transfer_ns(REQ_BYTES + CACHELINE_SIZE + fo),
                NDR_BYTES + fo,
                cxl.transfer_ns(NDR_BYTES + fo),
            ),
        }

        self.controller = self._build_controller()
        if self.tracer is not None and self.controller is not None:
            flash = getattr(self.controller, "flash", None)
            if flash is not None:
                flash.tracer = self.tracer
        self.migration: Optional[MigrationEngine] = None
        if (
            variant.promotion
            and not variant.astriflash
            and not variant.dram_only
        ):
            policy = self._build_hotness_policy()
            self.migration = MigrationEngine(
                self.config,
                self.controller,
                self.page_table,
                self.link,
                self.engine,
                self.stats,
                policy=policy,
            )
            self.controller.on_page_access = self.migration.on_page_access
            self.migration.on_tlb_shootdown = self._broadcast_shootdown
            if self.tracer is not None:
                self.migration.tracer = self.tracer

        self.threads = [
            ThreadContext(tid, trace) for tid, trace in enumerate(traces)
        ]
        self.cores: List[Core] = [
            Core(cid, self.config, self.engine, self.scheduler, self)
            for cid in range(self.config.cpu.cores)
        ]

        self._threads_done = 0
        self._total_instructions = sum(
            sum(r[0] for r in t) + len(t) for t in traces
        )
        self._progress = 0
        self._finished = False
        self._traces = traces

    # -- construction helpers ----------------------------------------------------

    def _build_controller(self):
        if self.variant.dram_only:
            return None
        if self.variant.astriflash:
            return AstriFlashController(
                self.config, self.engine, self.stats, self.link
            )
        if self.variant.write_log:
            return SkyByteController(
                self.config,
                self.engine,
                self.stats,
                ctx_switch_enabled=self.variant.ctx_switch,
            )
        return BaseCSSDController(
            self.config,
            self.engine,
            self.stats,
            ctx_switch_enabled=self.variant.ctx_switch,
        )

    def _build_hotness_policy(self):
        if self.config.skybyte.migration_mechanism == "tpp":
            return TPPHotnessPolicy(seed=self.config.seed)
        return SkyByteHotnessPolicy(self.config.ssd.promotion_threshold)

    def _broadcast_shootdown(self, cost_ns: float) -> None:
        for core in self.cores:
            core.add_tlb_shootdown(cost_ns)

    # -- properties the cores consult ------------------------------------------------

    @property
    def switch_cost_ns(self) -> float:
        """Kernel switch for SkyByte designs, user-level for AstriFlash."""
        if self.variant.astriflash:
            return self.config.os.user_level_switch_ns
        return self.config.os.context_switch_ns

    # -- the host memory path -----------------------------------------------------------

    def memory_access(
        self, core_id: int, tid: int, is_write: bool, address: int, now: float
    ) -> AccessResult:
        """One 64 B access from a core; returns its timing and hint."""
        if self.config.dram_only:
            complete = self.host_dram.access(now)
            self.stats.count_request(HOST_DRAM)
            latency = complete - now
            self.stats.record_amat(host_dram=latency)
            if is_write and self.stats.enabled:
                self.stats.host_lines_written += 1
            elif self.stats.enabled:
                self.stats.host_lines_read += 1
            return AccessResult(
                complete_ns=complete,
                request_class=HOST_DRAM,
                breakdown={"host_dram": latency},
            )

        if self._fast and not self.variant.astriflash:
            # Device-latency fast path: decide promoted-vs-CXL from the
            # raw address so neither branch materialises a MemRequest
            # (tags are bookkeeping-only; nothing downstream consumes
            # them).
            page = address >> 12
            line = (address >> 6) & 0x3F
            if self.page_table.is_promoted(page):
                return self._host_dram_hit(page, line, is_write, now)
            return self._cxl_access_fast(page, line, is_write, now)

        request = MemRequest(
            opcode=M2SOpcode.MEM_WR if is_write else M2SOpcode.MEM_RD,
            address=address,
            core=core_id,
            thread=tid,
            issue_ns=now,
        )

        if self.variant.astriflash:
            return self.controller.access(request, now)

        page = request.page
        if self.page_table.is_promoted(page):
            # H-R/W: the page was promoted; served by host DRAM.
            return self._host_dram_hit(page, request.line_offset, is_write, now)
        return self._cxl_access(request, is_write, now)

    def dram_window_access(
        self, ops: Sequence[TraceRecord], now: float, tid: int = -1
    ) -> List[float]:
        """Batched DRAM-only window: the device-latency inner loop.

        ``tid`` identifies the issuing thread so multi-tenant subclasses
        can attribute the window to a tenant; the base loop ignores it.

        Replays ``len(ops)`` host-DRAM accesses issued at the same
        ``now`` in one float loop, replicating :meth:`memory_access`'s
        arithmetic and stats updates operation-for-operation (same
        values, same order per field) without materialising a
        :class:`MemRequest`/:class:`AccessResult` per access.  Skipping
        the four ``+= 0.0`` AMAT component adds is exact: the sums start
        at ``+0.0`` and ``x + 0.0 == x`` bitwise for every non-negative
        float.  Only taken on the vectorized path.
        """
        stats = self.stats
        dram = self.host_dram
        latency_ns = dram._latency_ns
        inc = CACHELINE_SIZE / dram._bytes_per_ns
        free = dram._free_at
        enabled = stats.enabled
        counts = stats.request_counts
        completes: List[float] = []
        append = completes.append
        for _gap, is_write, _addr in ops:
            start = free if free > now else now
            free = start + inc
            complete = start + latency_ns
            if enabled:
                counts[HOST_DRAM] += 1
                stats.amat_host_dram_ns += complete - now
                stats.amat_accesses += 1
                if is_write:
                    stats.host_lines_written += 1
                else:
                    stats.host_lines_read += 1
            append(complete)
        dram._free_at = free
        dram.accesses += len(completes)
        return completes

    def _host_dram_hit(
        self, page: int, line: int, is_write: bool, now: float
    ) -> AccessResult:
        """H-R/W: the page was promoted; served by host DRAM."""
        self.page_table.record_host_access(page, line, is_write, now)
        complete = self.host_dram.access(now)
        latency = complete - now
        self.stats.count_request(HOST_DRAM)
        self.stats.record_amat(host_dram=latency)
        if self.stats.enabled:
            self.stats.promoted_hits += 1
            if is_write:
                self.stats.host_lines_written += 1
        return AccessResult(
            complete_ns=complete,
            request_class=HOST_DRAM,
            breakdown={"host_dram": latency},
        )

    def _cxl_access_fast(
        self, page: int, line: int, is_write: bool, now: float
    ) -> AccessResult:
        """:meth:`_cxl_access` with the link transfers unrolled inline.

        Replays the exact arithmetic of ``CXLLink.send_downstream`` /
        ``send_upstream`` (same operand order, hoisted constant
        serialisation delays) and calls the controller through its
        decoded-address entry; only taken on the vectorized path.
        """
        stats = self.stats
        link = self.link
        down_bytes, down_ser, up_bytes, up_ser = self._wire[is_write]
        enabled = stats.enabled
        free = link._down_free_at
        start = free if free > now else now
        new_free = start + down_ser
        link._down_free_at = new_free
        arrive_dev = new_free + self._protocol_ns
        if enabled:
            stats.cxl_bytes += down_bytes
        result = self.controller.access_line(page, line, is_write, arrive_dev)
        complete = result.complete_ns
        arrive_host = complete + up_ser + self._protocol_ns
        if enabled:
            stats.cxl_bytes += up_bytes
        protocol = (arrive_dev - now) + (arrive_host - complete)
        if enabled:
            stats.amat_protocol_ns += protocol
        result.breakdown["protocol"] = protocol
        if result.delay_hint:
            # The SkyByte-Delay NDR races ahead of the data.
            decision_ns = result.breakdown.get("indexing", 0.0)
            result.hint_arrival_ns = self.link.send_upstream(
                arrive_dev + decision_ns, NDR_BYTES
            )
        result.complete_ns = arrive_host
        if not is_write and enabled:
            stats.host_lines_read += 1
        return result

    def _cxl_access(
        self, request: MemRequest, is_write: bool, now: float
    ) -> AccessResult:
        # CXL path: downstream request, device access, upstream response.
        down_bytes = REQ_BYTES + (CACHELINE_SIZE if is_write else 0)
        arrive_dev = self.link.send_downstream(now, down_bytes)
        result = self.controller.access(request, arrive_dev)
        up_bytes = NDR_BYTES if is_write else DATA_BYTES
        arrive_host = self.link.send_upstream(result.complete_ns, up_bytes)
        protocol = (arrive_dev - now) + (arrive_host - result.complete_ns)
        self.stats.add_amat_extra(protocol=protocol)
        result.breakdown["protocol"] = protocol
        if self.tracer is not None and self.config.trace.requests:
            self._trace_request(request, is_write, now, arrive_dev,
                                result, arrive_host)
        if result.delay_hint:
            # The SkyByte-Delay NDR races ahead of the data.
            decision_ns = result.breakdown.get("indexing", 0.0)
            result.hint_arrival_ns = self.link.send_upstream(
                arrive_dev + decision_ns, NDR_BYTES
            )
        result.complete_ns = arrive_host
        if not is_write and self.stats.enabled:
            self.stats.host_lines_read += 1
        return result

    def _trace_request(
        self,
        request: MemRequest,
        is_write: bool,
        now: float,
        arrive_dev: float,
        result: AccessResult,
        arrive_host: float,
    ) -> None:
        """Per-request spans: whole request plus its link/device phases,
        on the issuing core's lane."""
        thread = f"core {request.core}"
        name = "mem.write" if is_write else "mem.read"
        device_done = result.complete_ns
        self.tracer.complete(
            name, "requests", thread, int(now), int(arrive_host),
            args={"class": result.request_class, "thread": request.thread},
        )
        self.tracer.complete(
            "cxl.down", "requests", thread, int(now), int(arrive_dev))
        self.tracer.complete(
            "device", "requests", thread, int(arrive_dev), int(device_done),
            args={"class": result.request_class},
        )
        self.tracer.complete(
            "cxl.up", "requests", thread, int(device_done), int(arrive_host))

    # -- progress callbacks --------------------------------------------------------------

    def note_progress(self, instructions: int) -> None:
        """Progress counter (handy for debugging/monitoring hooks)."""
        self._progress += instructions

    def on_thread_done(self, thread: ThreadContext) -> None:
        self._threads_done += 1
        if self._threads_done >= len(self.threads):
            self.stats.end_ns = self.engine.now
            self._finished = True

    # -- running -------------------------------------------------------------------------

    def prepare(self) -> None:
        """Precondition the SSD (§VI-A: "We precondition the SSD to ensure
        garbage collections will be triggered"), warm every cache with the
        traces, and stage the threads."""
        if self.controller is not None and hasattr(self.controller, "ftl"):
            self.controller.ftl.precondition(self.config.ssd.logical_pages)
        self._warm_caches()
        for thread in self.threads:
            self.scheduler.enqueue(thread)

    def _warm_caches(self) -> None:
        """Metadata-only replay of the traces to reach steady state before
        timing starts (§VI-A's warmup): SSD DRAM structures fill, the LRU
        orders settle, and hot pages get promoted."""
        if self.config.dram_only or self.controller is None:
            return
        fraction = min(1.0, max(0.0, self.config.warmup_fraction))
        if fraction == 0.0:
            return
        self.stats.enabled = False
        cursors = [
            trace[: int(len(trace) * fraction)] for trace in self._traces
        ]
        # Round-robin across threads to approximate concurrent interleaving.
        indices = [0] * len(cursors)
        live = set(range(len(cursors)))
        while live:
            for t in list(live):
                trace = cursors[t]
                i = indices[t]
                if i >= len(trace):
                    live.discard(t)
                    continue
                _gap, is_write, address = trace[i]
                indices[t] = i + 1
                page = address >> 12
                line = (address >> 6) & 0x3F
                if self.migration is not None:
                    self.migration.warm_access(page, is_write)
                if self.page_table.is_promoted(page):
                    continue
                self.controller.warm_access(page, line, is_write)
        self.stats.enabled = True

    def run(self, max_ns: Optional[float] = None) -> SimStats:
        """Execute the full simulation; returns the populated stats."""
        self.prepare()
        self.stats.start_ns = self.engine.now
        for core in self.cores:
            core.start()
        self.engine.run(until=max_ns)
        if self.stats.end_ns < self.stats.start_ns:
            self.stats.end_ns = self.engine.now
        if self.controller is not None:
            self.controller.drain(self.engine.now)
            self.engine.run(until=max_ns)
        if self.tracer is not None:
            # Engine counters ride along only on tracing runs so ordinary
            # results keep their exact pre-observability serialisation.
            engine_stats = EngineStats()
            engine_stats.events_processed = self.engine.processed
            engine_stats.past_clamps = self.engine.past_clamps
            self.stats.engine = engine_stats
        return self.stats


def run_system(
    config: SimConfig,
    traces: Sequence[Sequence[TraceRecord]],
    variant: DesignVariant,
    max_ns: Optional[float] = None,
) -> SimStats:
    """Convenience one-shot runner."""
    system = System(config, traces, variant)
    return system.run(max_ns=max_ns)
