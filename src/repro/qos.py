"""Tenant attribution and flash-queue QoS mechanisms.

Multi-tenant QoS needs two ingredients that are deliberately decoupled:

* :class:`TenantMap` -- pure attribution.  Built from the
  :class:`~repro.config.QoSConfig` embedded in a :class:`SimConfig`, it
  answers "which tenant owns this page / this thread" and carries the
  per-tenant weights and priorities.  Because everything it needs lives
  in the config, a trace replayed on any backend (thread pool, process
  pool, distributed service) reconstructs identical attribution.

* :class:`FlashPacingArbiter` -- the flash-queue scheduling mechanism
  ("wfq" / "priority" isolation).  The flash model completes commands
  synchronously at submit time and is fed out of order in simulated time
  (compaction paces programs into the future), so a classical
  virtual-time fair queue over future arrivals cannot be expressed.
  Instead the arbiter paces *admissions*: under contention, tenant ``t``
  on a channel with ``d`` dies is admitted at most once per
  ``read_ns * sum(w_active) / (w_t * d)`` nanoseconds -- exactly the
  GPS fluid rate for its weight share of the channel's aggregate read
  capacity ``d / read_ns``.  The moment no other tenant has work in
  flight, pacing state resets and admissions return ``now`` unchanged,
  which gives work conservation *and* makes the single-tenant case
  degenerate to the unarbitrated path bit for bit.

Strict-priority mode admits a tenant only once every in-flight command
of a strictly higher-priority tenant has completed.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence

from repro.config import QoSConfig


class TenantMap:
    """Page- and thread-level tenant attribution from a :class:`QoSConfig`."""

    def __init__(self, qos: QoSConfig) -> None:
        self.qos = qos
        self.tenants = len(qos.partitions)
        order = sorted(range(self.tenants),
                       key=lambda i: qos.partitions[i][0])
        self._bases = [qos.partitions[i][0] for i in order]
        self._limits = [qos.partitions[i][0] + qos.partitions[i][1]
                        for i in order]
        self._tenant_at = order
        self._thread_owner = tuple(qos.tenant_of_thread)
        self.weights = tuple(
            float(qos.weights[i]) if i < len(qos.weights) else 1.0
            for i in range(self.tenants)
        )
        self.priorities = tuple(
            int(qos.priorities[i]) if i < len(qos.priorities) else 0
            for i in range(self.tenants)
        )

    # -- attribution -------------------------------------------------------

    def tenant_of_page(self, page: int) -> Optional[int]:
        """Owning tenant of a logical page, or ``None`` if unowned."""
        idx = bisect_right(self._bases, page) - 1
        if idx < 0 or page >= self._limits[idx]:
            return None
        return self._tenant_at[idx]

    def tenant_of_thread(self, tid: int) -> Optional[int]:
        if 0 <= tid < len(self._thread_owner):
            return self._thread_owner[tid]
        return None

    # -- mechanism activation ----------------------------------------------

    @property
    def flash_scheduling(self) -> bool:
        return self.qos.isolation in ("wfq", "priority") and self.tenants > 1

    @property
    def host_scheduling(self) -> bool:
        return (self.qos.isolation in ("wfq", "priority")
                and len(self._thread_owner) > 0)

    @property
    def log_partitioning(self) -> bool:
        return self.qos.isolation == "log-partition" and self.tenants > 1

    @property
    def cache_quota(self) -> bool:
        return self.qos.isolation == "cache-quota" and self.tenants > 1


class FlashPacingArbiter:
    """Per-channel admission pacing for tenant flash reads.

    State per channel and tenant:

    * ``next_ok`` -- earliest admission instant allowed by the pacing
      rate (wfq mode only);
    * ``busy_until`` -- completion horizon of the tenant's last admitted
      command, used both to detect contention and, in priority mode, to
      make lower-priority tenants wait out higher-priority work.
    """

    def __init__(
        self,
        tenant_map: TenantMap,
        channels: int,
        dies_per_channel: int,
        read_ns: float,
    ) -> None:
        self.map = tenant_map
        self._priority = tenant_map.qos.isolation == "priority"
        self._read_ns = float(read_ns)
        self._dies = max(1, dies_per_channel)
        n = tenant_map.tenants
        self._next_ok: List[List[float]] = [
            [0.0] * n for _ in range(channels)
        ]
        self._busy_until: List[List[float]] = [
            [0.0] * n for _ in range(channels)
        ]

    def admit(self, channel: int, tenant: int, now: float) -> float:
        """Earliest instant ``tenant`` may submit a read on ``channel``."""
        busy = self._busy_until[channel]
        others = [u for u in range(len(busy))
                  if u != tenant and busy[u] > now]
        if not others:
            # Lone tenant: full channel, stale pacing state is dropped so
            # this path is exactly the unarbitrated submit.
            next_ok = self._next_ok[channel]
            for u in range(len(next_ok)):
                next_ok[u] = now
            return now
        if self._priority:
            mine = self.map.priorities[tenant]
            gate = now
            for u in others:
                if self.map.priorities[u] > mine:
                    gate = max(gate, busy[u])
            return gate
        weights = self.map.weights
        active_weight = weights[tenant] + sum(weights[u] for u in others)
        pace = self._read_ns * active_weight / (weights[tenant] * self._dies)
        start = max(now, self._next_ok[channel][tenant])
        self._next_ok[channel][tenant] = start + pace
        return start

    def note_completion(self, channel: int, tenant: int, done: float) -> None:
        busy = self._busy_until[channel]
        if done > busy[tenant]:
            busy[tenant] = done


def weighted_pick_key(runtime_ns: float, tid: int,
                      tenant_map: TenantMap) -> tuple:
    """Host-scheduler pick key under QoS (see ``host/scheduler.py``).

    wfq: CFS over weight-scaled virtual runtime.  priority: strict
    tenant priority first, fair runtime within a priority level.
    """
    tenant = tenant_map.tenant_of_thread(tid)
    if tenant is None:
        return (runtime_ns, tid)
    if tenant_map.qos.isolation == "priority":
        return (-tenant_map.priorities[tenant], runtime_ns, tid)
    return (runtime_ns / tenant_map.weights[tenant], tid)


def build_tenant_map(qos: QoSConfig) -> Optional[TenantMap]:
    """A :class:`TenantMap` for an active config, ``None`` when QoS is off."""
    if qos.isolation == "none" or not qos.partitions:
        return None
    return TenantMap(qos)


def partition_capacities(
    total: int, weights: Sequence[float], minimum: int = 1
) -> List[int]:
    """Split ``total`` capacity units across tenants proportionally to
    ``weights`` (largest-remainder rounding, ``minimum`` per tenant)."""
    n = len(weights)
    if n == 0:
        return []
    wsum = sum(weights) or float(n)
    raw = [total * (w / wsum) for w in weights]
    floors = [max(minimum, int(r)) for r in raw]
    spare = total - sum(floors)
    if spare > 0:
        order = sorted(range(n), key=lambda i: raw[i] - int(raw[i]),
                       reverse=True)
        for i in range(spare):
            floors[order[i % n]] += 1
    return floors
