"""Observability: metrics registry, sim-time tracing, structured logs, spans.

The package has four small, independent pieces:

- :mod:`repro.obs.metrics` — a labeled counter/gauge/histogram registry with a
  Prometheus text renderer.  Disabled (``REPRO_METRICS=0``) it degrades to a
  shared no-op instrument so instrumented call sites cost one attribute call.
- :mod:`repro.obs.timeline` — a sim-time tracer emitting Chrome trace-event /
  Perfetto JSON, opt-in through ``TraceConfig`` on ``SimConfig``.
- :mod:`repro.obs.log` — a JSON-lines structured logger (level via
  ``REPRO_LOG``, stderr by default).
- :mod:`repro.obs.spans` — wall-clock span tracing with a wire/header codec so
  sweep cells can be correlated coordinator <-> worker.
"""

from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.spans import SpanContext, current_context, span
from repro.obs.timeline import TimelineTracer

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "SpanContext",
    "TimelineTracer",
    "current_context",
    "get_logger",
    "span",
]
