"""Sim-time timeline tracer emitting Chrome trace-event / Perfetto JSON.

Events are recorded in simulated nanoseconds and written out in the Chrome
``traceEvents`` array format (``ts``/``dur`` in microseconds), which both
``chrome://tracing`` and https://ui.perfetto.dev load directly.

Lanes map onto the trace viewer's process/thread axes: a *process* groups a
subsystem (``flash``, ``gc``, ``tenant``, ...) and a *thread* is one track
inside it (``channel 0``, ``tenant A`` ...).  ``lane()`` lazily allocates the
(pid, tid) pair and emits the ``M`` metadata events that name them in the UI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple


class TimelineTracer:
    """Bounded recorder of sim-time spans, instants and counter samples."""

    def __init__(self, max_events: int = 200_000) -> None:
        self.max_events = max_events
        self.dropped = 0
        self._events: List[dict] = []
        self._meta: List[dict] = []
        self._lanes: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self._pids: Dict[str, int] = {}

    # -- lane management ---------------------------------------------------

    def lane(self, process: str, thread: str) -> Tuple[int, int]:
        """(pid, tid) for a named track, creating metadata on first use."""
        key = (process, thread)
        ids = self._lanes.get(key)
        if ids is not None:
            return ids
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self._meta.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        tid = sum(1 for (p, _t) in self._lanes if p == process) + 1
        ids = (pid, tid)
        self._lanes[key] = ids
        self._meta.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": thread},
        })
        return ids

    # -- event recording ---------------------------------------------------

    def _append(self, event: dict) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def complete(self, name: str, process: str, thread: str,
                 start_ns: int, end_ns: int,
                 args: Optional[dict] = None) -> None:
        """A span ("X" complete event) on the given lane, in sim-time ns."""
        pid, tid = self.lane(process, thread)
        event = {
            "name": name, "ph": "X", "pid": pid, "tid": tid,
            "ts": start_ns / 1000.0,
            "dur": max(end_ns - start_ns, 0) / 1000.0,
        }
        if args:
            event["args"] = args
        self._append(event)

    def instant(self, name: str, process: str, thread: str, ts_ns: int,
                args: Optional[dict] = None) -> None:
        pid, tid = self.lane(process, thread)
        event = {
            "name": name, "ph": "i", "s": "t", "pid": pid, "tid": tid,
            "ts": ts_ns / 1000.0,
        }
        if args:
            event["args"] = args
        self._append(event)

    def counter(self, name: str, process: str, ts_ns: int,
                values: Dict[str, float]) -> None:
        pid, _tid = self.lane(process, name)
        self._append({
            "name": name, "ph": "C", "pid": pid, "tid": 0,
            "ts": ts_ns / 1000.0, "args": dict(values),
        })

    # -- output ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[dict]:
        return list(self._events)

    def to_chrome(self) -> dict:
        return {
            "traceEvents": self._meta + self._events,
            "displayTimeUnit": "ns",
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle)
            handle.write("\n")
