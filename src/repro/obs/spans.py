"""Wall-clock span tracing with wire/header propagation.

A :class:`SpanContext` names one node in a distributed trace.  The
coordinator opens a root span per job, every sweep cell runs under a child
span, and the context rides along as an extra ``"trace"`` key on the TCP
wire protocol and as an ``X-Repro-Trace`` header on the service HTTP API —
so a cell's worker-side log lines carry the same ``trace_id`` as the
coordinator-side job that dispatched it.

Spans publish their duration into the ``repro_span_seconds`` histogram and
emit a debug log line; both are no-ops unless enabled, so the overhead of an
un-observed deployment is a contextvar lookup.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import secrets
import time
from typing import Iterator, Optional

from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY


@dataclasses.dataclass(frozen=True)
class SpanContext:
    """Identity of one span: trace id, own id, optional parent id."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    @staticmethod
    def new_root() -> "SpanContext":
        return SpanContext(trace_id=secrets.token_hex(8),
                           span_id=secrets.token_hex(4))

    def child(self) -> "SpanContext":
        return SpanContext(trace_id=self.trace_id,
                           span_id=secrets.token_hex(4),
                           parent_id=self.span_id)

    # -- wire (TCP job messages) and header (HTTP) codecs ------------------

    def to_wire(self) -> dict:
        data = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id:
            data["parent_id"] = self.parent_id
        return data

    @staticmethod
    def from_wire(data: object) -> Optional["SpanContext"]:
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not trace_id or not span_id:
            return None
        return SpanContext(trace_id=str(trace_id), span_id=str(span_id),
                           parent_id=data.get("parent_id") or None)

    def to_header(self) -> str:
        return "%s:%s" % (self.trace_id, self.span_id)

    @staticmethod
    def from_header(value: Optional[str]) -> Optional["SpanContext"]:
        if not value or ":" not in value:
            return None
        trace_id, _sep, span_id = value.partition(":")
        if not trace_id or not span_id:
            return None
        return SpanContext(trace_id=trace_id, span_id=span_id)


_current: contextvars.ContextVar[Optional[SpanContext]] = \
    contextvars.ContextVar("repro_span", default=None)


def current_context() -> Optional[SpanContext]:
    return _current.get()


def activate(context: Optional[SpanContext]) -> contextvars.Token:
    """Install a remote context as the current one (worker side)."""
    return _current.set(context)


def deactivate(token: contextvars.Token) -> None:
    _current.reset(token)


@contextlib.contextmanager
def span(name: str, **fields) -> Iterator[SpanContext]:
    """Run a block under a (possibly child) span; time + log it."""
    parent = _current.get()
    context = parent.child() if parent else SpanContext.new_root()
    token = _current.set(context)
    start = time.monotonic()
    try:
        yield context
    finally:
        _current.reset(token)
        elapsed = time.monotonic() - start
        REGISTRY.histogram(
            "repro_span_seconds", "Wall-clock span durations", span=name,
        ).observe(elapsed)
        get_logger("span").debug(
            name, trace_id=context.trace_id, span_id=context.span_id,
            parent_id=context.parent_id, seconds=round(elapsed, 6), **fields)
