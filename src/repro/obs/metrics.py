"""Labeled metrics registry with a Prometheus text renderer.

Instruments are cheap plain-python objects keyed by ``(name, labels)``.  When
the registry is disabled every factory returns one shared no-op instrument, so
instrumented call sites pay a single method call on a do-nothing object and
the registry accumulates no state.

The process-wide registry lives at :data:`REGISTRY`; it is enabled by default
and can be switched off with ``REPRO_METRICS=0``.  Simulation code never
publishes per-event — only coarse, end-of-phase observations — so the metrics
layer stays off the engine hot path entirely.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        '%s="%s"' % (k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in key
    )
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus classic shape)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1


class _NoopInstrument:
    """Stands in for every instrument type when the registry is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP = _NoopInstrument()


class MetricsRegistry:
    """Families of labeled instruments, renderable as Prometheus text."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        # name -> (type, help, {label_key: instrument})
        self._families: Dict[str, Tuple[str, str, Dict[LabelKey, object]]] = {}

    def _get(self, kind: str, name: str, help_text: str,
             labels: Dict[str, str], factory):
        if not self.enabled:
            return _NOOP
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, help_text, {})
                self._families[name] = family
            instruments = family[2]
            instrument = instruments.get(key)
            if instrument is None:
                instrument = factory()
                instruments[key] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._get("counter", name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._get("gauge", name, help_text, labels, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Iterable[float]] = None,
                  **labels: str) -> Histogram:
        chosen = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        return self._get("histogram", name, help_text, labels,
                         lambda: Histogram(chosen))

    def value(self, name: str, **labels: str) -> Optional[float]:
        """Read back a counter/gauge value (None if never published)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            instrument = family[2].get(_label_key(labels))
        if instrument is None:
            return None
        return getattr(instrument, "value", None)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Flat ``{name: {rendered_labels: value}}`` view for JSON output."""
        out: Dict[str, Dict[str, float]] = {}
        with self._lock:
            families = [
                (name, kind, dict(instruments))
                for name, (kind, _help, instruments) in self._families.items()
            ]
        for name, kind, instruments in sorted(families):
            series: Dict[str, float] = {}
            for key, instrument in sorted(instruments.items()):
                label_text = _render_labels(key)
                if kind == "histogram":
                    series[label_text + "_count"] = instrument.count
                    series[label_text + "_sum"] = instrument.total
                else:
                    series[label_text] = instrument.value
            out[name] = series
        return out

    def render_prometheus(self) -> str:
        """Render every family in the Prometheus text exposition format."""
        lines: List[str] = []
        with self._lock:
            families = [
                (name, kind, help_text, dict(instruments))
                for name, (kind, help_text, instruments)
                in self._families.items()
            ]
        for name, kind, help_text, instruments in sorted(families):
            if help_text:
                lines.append("# HELP %s %s" % (name, help_text))
            lines.append("# TYPE %s %s" % (name, kind))
            for key, instrument in sorted(instruments.items()):
                labels = _render_labels(key)
                if kind == "histogram":
                    for bound, cumulative in zip(instrument.buckets,
                                                 instrument.counts):
                        bucket_key = key + (("le", repr(bound)),)
                        lines.append("%s_bucket%s %d" % (
                            name, _render_labels(bucket_key), cumulative))
                    inf_key = key + (("le", "+Inf"),)
                    lines.append("%s_bucket%s %d" % (
                        name, _render_labels(inf_key), instrument.count))
                    lines.append("%s_sum%s %s" % (name, labels,
                                                  _format(instrument.total)))
                    lines.append("%s_count%s %d" % (name, labels,
                                                    instrument.count))
                else:
                    lines.append("%s%s %s" % (name, labels,
                                              _format(instrument.value)))
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        with self._lock:
            self._families.clear()


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _default_enabled() -> bool:
    return os.environ.get("REPRO_METRICS", "1") not in ("0", "false", "off")


REGISTRY = MetricsRegistry(enabled=_default_enabled())
