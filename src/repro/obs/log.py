"""Structured JSON-lines logging for the long-running service pieces.

One JSON object per line on stderr (by default), so worker/registry/serve
logs are machine-parseable without giving up `tail -f` readability:

    {"ts": 1754640000.123, "level": "info", "logger": "worker",
     "event": "served", "cells": 12, "from_cache": 7}

The minimum level comes from ``REPRO_LOG`` (debug/info/warning/error,
default info) and is resolved at call time so tests can flip it per-case.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Dict, Optional, TextIO

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_lock = threading.Lock()
_loggers: Dict[str, "JsonLinesLogger"] = {}


def _threshold() -> int:
    name = os.environ.get("REPRO_LOG", "info").strip().lower()
    return LEVELS.get(name, 20)


class JsonLinesLogger:
    """Named logger emitting one JSON object per line."""

    def __init__(self, name: str, stream: Optional[TextIO] = None) -> None:
        self.name = name
        self.stream = stream

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if LEVELS[level] < _threshold():
            return
        record = {"ts": round(time.time(), 3), "level": level,
                  "logger": self.name, "event": event}
        for key, value in fields.items():
            if key not in record:
                record[key] = value
        line = json.dumps(record, default=str)
        stream = self.stream if self.stream is not None else sys.stderr
        with _lock:
            try:
                print(line, file=stream, flush=True)
            except (ValueError, OSError):
                pass  # closed stream during teardown

    def debug(self, event: str, **fields) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)


def get_logger(name: str, stream: Optional[TextIO] = None) -> JsonLinesLogger:
    """Shared logger per name; pass ``stream`` to redirect (tests, serve)."""
    if stream is not None:
        return JsonLinesLogger(name, stream)
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = JsonLinesLogger(name)
            _loggers[name] = logger
        return logger
