"""Design-variant registry (§VI-A and §VI-H).

Each paper design is a combination of three SkyByte mechanisms plus the
migration-policy and host-organisation alternatives of §VI-H:

========================  =========  =========  ==========  ============
name                      write log  promotion  ctx switch  notes
========================  =========  =========  ==========  ============
Base-CSSD                 no         no         no          baseline
SkyByte-P                 no         yes        no
SkyByte-C                 no         no         yes
SkyByte-W                 yes        no         no
SkyByte-CP                no         yes        yes
SkyByte-WP                yes        yes        no
SkyByte-Full              yes        yes        yes         the paper's SkyByte
DRAM-Only                 --         --         --          infinite host DRAM ideal
SkyByte-CT                no         yes (TPP)  yes         §VI-H
SkyByte-WCT               yes        yes (TPP)  yes         §VI-H
AstriFlash-CXL            no         host cache user-level   §VI-H
========================  =========  =========  ==========  ============

These map one-to-one onto the artifact's configuration knobs
(``write_log_enable``, ``promotion_enable``, ``device_triggered_ctx_swt``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import SimConfig


@dataclass(frozen=True)
class DesignVariant:
    """One evaluated system design."""

    name: str
    write_log: bool = False
    promotion: bool = False
    ctx_switch: bool = False
    migration_mechanism: str = "skybyte"  # "skybyte" | "tpp" | "none"
    astriflash: bool = False
    dram_only: bool = False
    #: Flash device-model kind to force ("deep"); "" keeps whatever the
    #: config already selects (so the flat default stays untouched).
    device_model: str = ""

    def apply(self, config: SimConfig) -> SimConfig:
        """Return ``config`` with this variant's knobs set."""
        mechanism = self.migration_mechanism if self.promotion else "none"
        config = config.replace(dram_only=self.dram_only).with_skybyte(
            write_log_enable=self.write_log,
            promotion_enable=self.promotion,
            device_triggered_ctx_swt=self.ctx_switch,
            migration_mechanism=mechanism,
            astriflash=self.astriflash,
        )
        if self.device_model:
            config = config.with_device(kind=self.device_model)
        return config

    def default_threads(self, cores: int) -> int:
        """The paper runs 24 threads on 8 cores when context switching is
        enabled (so switches have somewhere to go) and threads == cores
        otherwise ("more threads will not improve the performance")."""
        if self.ctx_switch or self.astriflash:
            return cores * 3
        return cores


VARIANTS: Dict[str, DesignVariant] = {
    "Base-CSSD": DesignVariant("Base-CSSD"),
    "SkyByte-P": DesignVariant("SkyByte-P", promotion=True),
    "SkyByte-C": DesignVariant("SkyByte-C", ctx_switch=True),
    "SkyByte-W": DesignVariant("SkyByte-W", write_log=True),
    "SkyByte-CP": DesignVariant("SkyByte-CP", promotion=True, ctx_switch=True),
    "SkyByte-WP": DesignVariant("SkyByte-WP", write_log=True, promotion=True),
    "SkyByte-Full": DesignVariant(
        "SkyByte-Full", write_log=True, promotion=True, ctx_switch=True
    ),
    "DRAM-Only": DesignVariant("DRAM-Only", dram_only=True),
    "SkyByte-CT": DesignVariant(
        "SkyByte-CT", promotion=True, ctx_switch=True, migration_mechanism="tpp"
    ),
    "SkyByte-WCT": DesignVariant(
        "SkyByte-WCT",
        write_log=True,
        promotion=True,
        ctx_switch=True,
        migration_mechanism="tpp",
    ),
    "AstriFlash-CXL": DesignVariant("AstriFlash-CXL", astriflash=True),
}

#: Fig. 14's plotting order.
MAIN_VARIANTS: List[str] = [
    "Base-CSSD",
    "SkyByte-P",
    "SkyByte-C",
    "SkyByte-W",
    "SkyByte-CP",
    "SkyByte-WP",
    "SkyByte-Full",
    "DRAM-Only",
]

#: Fig. 23's plotting order.
MIGRATION_VARIANTS: List[str] = [
    "SkyByte-C",
    "AstriFlash-CXL",
    "SkyByte-CT",
    "SkyByte-CP",
    "SkyByte-WCT",
    "SkyByte-Full",
]


#: Lowercased lookup so CLI spellings like ``skybyte-full`` resolve.
_VARIANTS_FOLDED: Dict[str, DesignVariant] = {
    name.lower(): variant for name, variant in VARIANTS.items()
}


def canonical_variant(name: str) -> str:
    """Map a variant name (case-insensitive) to its registry key."""
    return get_variant(name).name


def get_variant(name: str) -> DesignVariant:
    try:
        return _VARIANTS_FOLDED[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown design variant {name!r}; available: {sorted(VARIANTS)}"
        ) from None
