"""Sqlite persistence for sweep-as-a-service: result index + job queue.

Two stores back the always-on coordinator (:mod:`repro.service`):

* :class:`SqliteResultCache` -- a drop-in
  :class:`~repro.experiments.orchestrator.ResultCache` whose index
  lives in ``<root>/index.sqlite3`` instead of the flock'd
  ``index.json``.  The ``.repro_cache/`` data blobs (one JSON file per
  simulated cell) are unchanged, so every existing consumer of the
  cache directory keeps working; only the LRU/stats bookkeeping moves
  into sqlite, whose page-level locking survives thousands of
  concurrent cells where rewriting one JSON index per touch will not.
  On first open an existing ``index.json`` is adopted one time --
  lifetime stats and LRU order carry over -- and renamed to
  ``index.json.migrated`` so the two bookkeeping schemes never run
  side by side.

* :class:`JobStore` -- the coordinator's persistent job queue and
  event log.  Jobs (sweep / scenario / report submissions over the
  HTTP API) survive coordinator crashes: a SIGKILLed coordinator
  restarts, moves its ``running`` jobs back to ``queued``
  (:meth:`JobStore.requeue_running`), and resumes -- finished cells
  are already in the result cache, so the resumed job fast-forwards
  through cache hits.  :meth:`JobStore.claim_next` implements the
  scheduling policy: strict priority first, then **fair share** across
  submitters (the submitter with the fewest already-started jobs goes
  first), then FIFO.

Both stores open one sqlite connection per thread (WAL journal, busy
timeout) so the HTTP handler threads, the scheduler, and concurrent
submitter processes can share them without a global lock.  Instances
must not be shared across ``fork()`` -- each process opens its own.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.experiments.orchestrator import ResultCache
from repro.experiments.runner import RunResult

#: Jobs in these states are finished: no scheduler will touch them again.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Every state a job can be in (queued -> running -> one of the above).
JOB_STATES = ("queued", "running") + TERMINAL_STATES


def _connect(path: Union[str, Path]) -> sqlite3.Connection:
    """A WAL-mode autocommit connection (transactions are explicit)."""
    con = sqlite3.connect(str(path), timeout=30.0, isolation_level=None)
    con.execute("PRAGMA journal_mode=WAL")
    con.execute("PRAGMA synchronous=NORMAL")
    con.execute("PRAGMA busy_timeout=30000")
    return con


@contextlib.contextmanager
def _txn(con: sqlite3.Connection) -> Iterator[sqlite3.Connection]:
    """One IMMEDIATE transaction: the write lock is taken up front, so
    read-modify-write sequences are atomic across processes."""
    con.execute("BEGIN IMMEDIATE")
    try:
        yield con
    except BaseException:
        con.execute("ROLLBACK")
        raise
    con.execute("COMMIT")


class SqliteResultCache(ResultCache):
    """A ResultCache whose index is a sqlite database, not a JSON file.

    Same directory layout for data (``<root>/<key>.json`` blobs), same
    public API and lifetime counters, same LRU semantics -- but every
    get/put touches only the affected row instead of rewriting the
    whole index under an exclusive flock.  Safe for many concurrent
    processes and threads (sqlite WAL + per-thread connections).
    """

    INDEX_DB = "index.sqlite3"

    #: ``index.json`` is renamed to this after its one-time adoption.
    MIGRATED_NAME = "index.json.migrated"

    _COUNTERS = ("hits", "misses", "evictions", "puts")

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(root, max_bytes=max_bytes)
        self._tls = threading.local()

    # -- connection / schema ---------------------------------------------

    def _db(self) -> sqlite3.Connection:
        con = getattr(self._tls, "con", None)
        if con is None:
            self.root.mkdir(parents=True, exist_ok=True)
            con = _connect(self.root / self.INDEX_DB)
            con.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(k TEXT PRIMARY KEY, v INTEGER NOT NULL)"
            )
            con.execute(
                "CREATE TABLE IF NOT EXISTS entries (key TEXT PRIMARY KEY, "
                "size INTEGER NOT NULL, tick INTEGER NOT NULL)"
            )
            con.execute(
                "CREATE INDEX IF NOT EXISTS entries_lru ON entries (tick, key)"
            )
            self._tls.con = con
            self._adopt_legacy_index(con)
        return con

    def _adopt_legacy_index(self, con: sqlite3.Connection) -> None:
        """One-time import of a pre-sqlite ``index.json`` (and of any
        stray data blobs), preserving lifetime stats and LRU order."""
        with _txn(con):
            con.executemany(
                "INSERT OR IGNORE INTO meta (k, v) VALUES (?, 0)",
                [(k,) for k in ("adopted", "tick") + self._COUNTERS],
            )
            if con.execute(
                "SELECT v FROM meta WHERE k='adopted'"
            ).fetchone()[0]:
                return
            # The salvage-capable JSON reader: parses what it can of a
            # legacy index and reconciles the directory's blobs in.
            legacy = ResultCache._read_index(self)
            for field in self._COUNTERS:
                con.execute(
                    "UPDATE meta SET v = v + ? WHERE k = ?",
                    (int(legacy["stats"][field]), field),
                )
            con.execute(
                "UPDATE meta SET v = ? WHERE k = 'tick'",
                (int(legacy["tick"]),),
            )
            con.executemany(
                "INSERT OR REPLACE INTO entries (key, size, tick) "
                "VALUES (?, ?, ?)",
                [
                    (key, int(entry["size"]), int(entry["tick"]))
                    for key, entry in legacy["entries"].items()
                ],
            )
            con.execute("UPDATE meta SET v = 1 WHERE k = 'adopted'")
        with contextlib.suppress(OSError):
            os.replace(
                self.root / self.INDEX_NAME, self.root / self.MIGRATED_NAME
            )

    # -- row helpers (call inside a transaction) -------------------------

    @staticmethod
    def _bump(con: sqlite3.Connection, field: str, n: int = 1) -> None:
        con.execute("UPDATE meta SET v = v + ? WHERE k = ?", (n, field))

    @staticmethod
    def _next_tick(con: sqlite3.Connection) -> int:
        con.execute("UPDATE meta SET v = v + 1 WHERE k = 'tick'")
        return con.execute("SELECT v FROM meta WHERE k='tick'").fetchone()[0]

    def _touch_row(self, con: sqlite3.Connection, key: str, size: int) -> None:
        con.execute(
            "INSERT OR REPLACE INTO entries (key, size, tick) VALUES (?, ?, ?)",
            (key, size, self._next_tick(con)),
        )

    def _evict_rows(
        self,
        con: sqlite3.Connection,
        max_bytes: int,
        protect: Tuple[str, ...] = (),
    ) -> List[str]:
        """Drop LRU rows until the cap holds; returns the victims (the
        caller unlinks their blobs after commit)."""
        if max_bytes <= 0:
            return []
        total = con.execute(
            "SELECT COALESCE(SUM(size), 0) FROM entries"
        ).fetchone()[0]
        victims: List[str] = []
        for key, size in con.execute(
            "SELECT key, size FROM entries ORDER BY tick, key"
        ).fetchall():
            if total <= max_bytes:
                break
            if key in protect:
                continue
            victims.append(key)
            total -= size
        for key in victims:
            con.execute("DELETE FROM entries WHERE key = ?", (key,))
        if victims:
            self._bump(con, "evictions", len(victims))
            self.evictions += len(victims)
        return victims

    def _reconcile_rows(self, con: sqlite3.Connection) -> None:
        """Make the rows agree with the directory (inside a txn)."""
        for (key,) in con.execute("SELECT key FROM entries").fetchall():
            if not self.path_for(key).is_file():
                con.execute("DELETE FROM entries WHERE key = ?", (key,))
        for path in self._data_files():
            key = path.stem
            if not con.execute(
                "SELECT 1 FROM entries WHERE key = ?", (key,)
            ).fetchone():
                con.execute(
                    "INSERT INTO entries (key, size, tick) VALUES (?, ?, 0)",
                    (key, path.stat().st_size),
                )

    # -- public API ------------------------------------------------------

    def get(self, key: str) -> Optional[RunResult]:
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            result = RunResult.from_dict(data)
            size = path.stat().st_size
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            if self.root.is_dir():  # a miss never conjures the directory
                con = self._db()
                with _txn(con):
                    self._bump(con, "misses")
            return None
        self.hits += 1
        con = self._db()
        with _txn(con):
            self._bump(con, "hits")
            # LRU: a hit refreshes recency -- but only while the blob
            # still exists, else a concurrent eviction between the read
            # above and this transaction would be resurrected as an
            # orphan row (same hazard as ResultCache.get).
            if con.execute(
                "SELECT 1 FROM entries WHERE key = ?", (key,)
            ).fetchone() or path.is_file():
                self._touch_row(con, key, size)
        return result

    def put(self, key: str, result: RunResult) -> None:
        size = self._write_blob(key, result)
        con = self._db()
        with _txn(con):
            if not self.path_for(key).is_file():
                # A concurrent eviction raced the blob away between the
                # write above and this transaction; restore it so the
                # row never points at a missing file.
                size = self._write_blob(key, result)
            self._bump(con, "puts")
            self._touch_row(con, key, size)
            victims = self._evict_rows(con, self.max_bytes, protect=(key,))
        for victim in victims:
            with contextlib.suppress(OSError):
                self.path_for(victim).unlink()

    def prune(self, max_bytes: Optional[int] = None) -> int:
        target = self.max_bytes if max_bytes is None else max(0, int(max_bytes))
        if target <= 0:
            return 0
        con = self._db()
        with _txn(con):
            self._reconcile_rows(con)
            victims = self._evict_rows(con, target)
        for victim in victims:
            with contextlib.suppress(OSError):
                self.path_for(victim).unlink()
        return len(victims)

    def stats(self) -> Dict[str, object]:
        con = self._db()
        with _txn(con):
            self._reconcile_rows(con)
            entries, size_bytes = con.execute(
                "SELECT COUNT(*), COALESCE(SUM(size), 0) FROM entries"
            ).fetchone()
            counters = dict(
                con.execute(
                    "SELECT k, v FROM meta WHERE k IN (?, ?, ?, ?)",
                    self._COUNTERS,
                ).fetchall()
            )
        return {
            "root": str(self.root),
            "index": "sqlite",
            "entries": entries,
            "size_bytes": size_bytes,
            "max_bytes": self.max_bytes,
            **{field: counters.get(field, 0) for field in self._COUNTERS},
        }

    def clear(self) -> int:
        if not self.root.is_dir():
            return 0
        con = self._db()
        removed = 0
        with _txn(con):
            for path in self._data_files():
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
            con.execute("DELETE FROM entries")
            con.executemany(
                "UPDATE meta SET v = 0 WHERE k = ?",
                [(k,) for k in ("tick",) + self._COUNTERS],
            )
        return removed

    def close(self) -> None:
        con = getattr(self._tls, "con", None)
        if con is not None:
            con.close()
            self._tls.con = None


def open_result_cache(
    root: Optional[Union[str, Path]] = None,
    max_bytes: Optional[int] = None,
    index: str = "auto",
) -> ResultCache:
    """A ResultCache for ``root`` with the right index backend.

    ``index``: ``"sqlite"`` / ``"json"`` force a backend; ``"auto"``
    (default) keeps whatever the directory already uses -- sqlite if
    ``index.sqlite3`` exists, else the legacy JSON index -- so mixed
    fleets never run both bookkeeping schemes on one directory.
    """
    if index not in ("auto", "sqlite", "json"):
        raise ValueError(f"unknown cache index backend {index!r}")
    if index == "auto":
        probe = ResultCache(root, max_bytes=0)
        index = "sqlite" if (probe.root / SqliteResultCache.INDEX_DB).exists() \
            else "json"
    if index == "sqlite":
        return SqliteResultCache(root, max_bytes=max_bytes)
    return ResultCache(root, max_bytes=max_bytes)


class JobStore:
    """The coordinator's persistent queue: jobs, states, and event logs.

    One sqlite file (``jobs.sqlite3`` under the service state
    directory) holds every submitted job and its streamed
    ``CellUpdate`` events, so a coordinator can be killed and restarted
    without losing the queue.  All methods are safe to call from any
    thread and from multiple processes sharing the file.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tls = threading.local()

    def _db(self) -> sqlite3.Connection:
        con = getattr(self._tls, "con", None)
        if con is None:
            con = _connect(self.path)
            con.execute(
                "CREATE TABLE IF NOT EXISTS jobs ("
                " id INTEGER PRIMARY KEY AUTOINCREMENT,"
                " kind TEXT NOT NULL,"
                " spec TEXT NOT NULL,"
                " submitter TEXT NOT NULL DEFAULT 'anonymous',"
                " priority INTEGER NOT NULL DEFAULT 0,"
                " state TEXT NOT NULL DEFAULT 'queued',"
                " cancel_requested INTEGER NOT NULL DEFAULT 0,"
                " submitted_at REAL NOT NULL,"
                " started_at REAL,"
                " finished_at REAL,"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " error TEXT,"
                " result TEXT)"
            )
            con.execute(
                "CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, id)"
            )
            con.execute(
                "CREATE TABLE IF NOT EXISTS job_events ("
                " job_id INTEGER NOT NULL,"
                " seq INTEGER NOT NULL,"
                " at REAL NOT NULL,"
                " payload TEXT NOT NULL,"
                " PRIMARY KEY (job_id, seq))"
            )
            self._tls.con = con
        return con

    @staticmethod
    def _row_to_job(row: Tuple) -> Dict[str, object]:
        (job_id, kind, spec, submitter, priority, state, cancel_requested,
         submitted_at, started_at, finished_at, attempts, error,
         result) = row
        return {
            "id": job_id,
            "kind": kind,
            "spec": json.loads(spec),
            "submitter": submitter,
            "priority": priority,
            "state": state,
            "cancel_requested": bool(cancel_requested),
            "submitted_at": submitted_at,
            "started_at": started_at,
            "finished_at": finished_at,
            "attempts": attempts,
            "error": error,
            "result": json.loads(result) if result else None,
        }

    _JOB_COLUMNS = (
        "id, kind, spec, submitter, priority, state, cancel_requested, "
        "submitted_at, started_at, finished_at, attempts, error, result"
    )

    # -- submission / inspection -----------------------------------------

    def submit(
        self,
        kind: str,
        spec: Dict[str, object],
        submitter: str = "anonymous",
        priority: int = 0,
    ) -> int:
        con = self._db()
        with _txn(con):
            cur = con.execute(
                "INSERT INTO jobs (kind, spec, submitter, priority, state,"
                " submitted_at) VALUES (?, ?, ?, ?, 'queued', ?)",
                (kind, json.dumps(spec, sort_keys=True), submitter,
                 int(priority), time.time()),
            )
            return int(cur.lastrowid)

    def get(self, job_id: int) -> Optional[Dict[str, object]]:
        row = self._db().execute(
            f"SELECT {self._JOB_COLUMNS} FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return self._row_to_job(row) if row else None

    def list_jobs(
        self,
        state: Optional[str] = None,
        submitter: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        clauses, params = [], []
        if state is not None:
            clauses.append("state = ?")
            params.append(state)
        if submitter is not None:
            clauses.append("submitter = ?")
            params.append(submitter)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._db().execute(
            f"SELECT {self._JOB_COLUMNS} FROM jobs {where} ORDER BY id",
            params,
        ).fetchall()
        return [self._row_to_job(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        found = dict(self._db().execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ).fetchall())
        return {state: found.get(state, 0) for state in JOB_STATES}

    # -- scheduling ------------------------------------------------------

    def claim_next(self) -> Optional[Dict[str, object]]:
        """Atomically claim the next runnable job (or None).

        Order: highest ``priority`` first; within a priority level the
        *submitter* with the fewest already-started jobs goes first
        (fair share -- one user queueing 100 sweeps cannot starve a
        user queueing 1), FIFO as the final tie-break.
        """
        con = self._db()
        with _txn(con):
            row = con.execute(
                f"""
                SELECT {self._JOB_COLUMNS} FROM jobs j
                WHERE j.state = 'queued'
                ORDER BY
                  j.priority DESC,
                  (SELECT COUNT(*) FROM jobs u
                   WHERE u.submitter = j.submitter
                     AND u.state IN ('running', 'done', 'failed')) ASC,
                  j.id ASC
                LIMIT 1
                """
            ).fetchone()
            if row is None:
                return None
            con.execute(
                "UPDATE jobs SET state = 'running', started_at = ?,"
                " attempts = attempts + 1 WHERE id = ?",
                (time.time(), row[0]),
            )
        return self.get(row[0])

    def requeue_running(self) -> List[int]:
        """Crash recovery: every ``running`` job back to ``queued``.

        Call once at coordinator startup -- a job can only be running
        while a scheduler holds it, and this store just got opened.
        """
        con = self._db()
        with _txn(con):
            ids = [row[0] for row in con.execute(
                "SELECT id FROM jobs WHERE state = 'running' ORDER BY id"
            ).fetchall()]
            con.execute(
                "UPDATE jobs SET state = 'queued' WHERE state = 'running'"
            )
        for job_id in ids:
            self.add_event(job_id, {
                "event": "state", "state": "queued",
                "note": "requeued after coordinator restart",
            })
        return ids

    # -- lifecycle -------------------------------------------------------

    def _finish(self, job_id: int, state: str, error: Optional[str],
                result: Optional[Dict[str, object]]) -> None:
        con = self._db()
        with _txn(con):
            con.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, error = ?,"
                " result = ? WHERE id = ?",
                (state, time.time(), error,
                 json.dumps(result, sort_keys=True) if result is not None
                 else None,
                 job_id),
            )
        self.add_event(job_id, {"event": "state", "state": state,
                                **({"error": error} if error else {})})

    def finish(self, job_id: int, result: Dict[str, object]) -> None:
        self._finish(job_id, "done", None, result)

    def fail(self, job_id: int, error: str) -> None:
        self._finish(job_id, "failed", error, None)

    def mark_cancelled(self, job_id: int) -> None:
        self._finish(job_id, "cancelled", None, None)

    def request_cancel(self, job_id: int) -> Optional[str]:
        """Cancel a job; returns its state after the request (or None).

        A ``queued`` job is cancelled outright; a ``running`` job gets
        ``cancel_requested`` set, honoured by the scheduler between
        cell updates; terminal jobs are left alone.
        """
        con = self._db()
        with _txn(con):
            row = con.execute(
                "SELECT state FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                return None
            state = row[0]
            if state == "queued":
                con.execute(
                    "UPDATE jobs SET state = 'cancelled', finished_at = ?"
                    " WHERE id = ?",
                    (time.time(), job_id),
                )
                state = "cancelled"
            elif state == "running":
                con.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE id = ?",
                    (job_id,),
                )
        if state == "cancelled":
            self.add_event(job_id, {"event": "state", "state": "cancelled"})
        return state

    def cancel_requested(self, job_id: int) -> bool:
        row = self._db().execute(
            "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return bool(row and row[0])

    # -- event log -------------------------------------------------------

    def add_event(self, job_id: int, payload: Dict[str, object]) -> int:
        con = self._db()
        with _txn(con):
            seq = con.execute(
                "SELECT COALESCE(MAX(seq), 0) + 1 FROM job_events"
                " WHERE job_id = ?",
                (job_id,),
            ).fetchone()[0]
            con.execute(
                "INSERT INTO job_events (job_id, seq, at, payload)"
                " VALUES (?, ?, ?, ?)",
                (job_id, seq, time.time(),
                 json.dumps(payload, sort_keys=True)),
            )
        return seq

    def events_after(
        self, job_id: int, after: int = 0
    ) -> List[Dict[str, object]]:
        rows = self._db().execute(
            "SELECT seq, at, payload FROM job_events"
            " WHERE job_id = ? AND seq > ? ORDER BY seq",
            (job_id, after),
        ).fetchall()
        return [
            {"seq": seq, "at": at, **json.loads(payload)}
            for seq, at, payload in rows
        ]

    def close(self) -> None:
        con = getattr(self._tls, "con", None)
        if con is not None:
            con.close()
            self._tls.con = None
