"""HTTP/JSON front door for :class:`~repro.service.coordinator.SweepService`.

Stdlib-only (``http.server``): one :class:`ThreadingHTTPServer` whose
handler reads and writes JSON.  Endpoints::

    GET  /health                      liveness probe -> {"ok": true}
    GET  /healthz                     alias (the conventional probe path)
    GET  /metrics                     Prometheus text exposition: queue
                                      depths, active cells, cache hit
                                      counters, worker fleet state
    GET  /api/status                  backend label, queue counts, cache stats
    GET  /api/jobs[?state=&submitter=]  job summaries, newest first
    POST /api/jobs                    {"kind", "spec", "submitter", "priority"}
                                      -> 201 {"id": N, ...summary}
    GET  /api/jobs/<id>               full job row (spec, result, error, ...)
    GET  /api/jobs/<id>/events?after=N   events with seq > N
    GET  /api/jobs/<id>/events?after=N&stream=1
                                      NDJSON: one event per line, long-polled
                                      until the job reaches a terminal state
                                      (the final line is a {"event": "state"}
                                      record carrying that state)
    GET  /api/jobs/<id>/result        the stored result payload (e.g. the
                                      ``repro sweep --output`` document)
    POST /api/jobs/<id>/cancel        cancel queued outright / flag running

Errors are ``{"error": "..."}`` with a 4xx status.  The server never
executes jobs itself -- it only talks to the service's
:class:`~repro.service.store.JobStore`, which the scheduler threads
drain -- so a slow HTTP client cannot stall a sweep.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs import REGISTRY
from repro.obs.spans import SpanContext
from repro.service.coordinator import SweepService
from repro.service.store import JOB_STATES, TERMINAL_STATES

#: How long a streaming events request waits between store polls.
STREAM_POLL_INTERVAL = 0.2

_JOB_PATH = re.compile(r"^/api/jobs/(\d+)(?:/(events|result|cancel))?$")


class ServiceAPI:
    """Binds an HTTP server to a running :class:`SweepService`."""

    def __init__(self, service: SweepService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        api = self

        class Handler(_Handler):
            pass

        Handler.api = api
        self.server = ThreadingHTTPServer((host, port), Handler)
        self.server.daemon_threads = True
        self.server.repro_closing = False
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="serve-http", daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        self.server.serve_forever()

    def close(self) -> None:
        self.server.repro_closing = True  # unblocks event streamers
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class _Handler(BaseHTTPRequestHandler):
    api: ServiceAPI  # patched onto the per-server subclass
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        pass  # the service has its own log; HTTP chatter is noise

    # -- plumbing --------------------------------------------------------

    def _send_json(self, status: int, payload: object) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json(self) -> Optional[Dict[str, object]]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except ValueError:
            self._send_error(400, "request body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._send_error(400, "request body must be a JSON object")
            return None
        return payload

    def _job_or_404(self, job_id: int) -> Optional[Dict[str, object]]:
        job = self.api.service.store.get(job_id)
        if job is None:
            self._send_error(404, f"no such job: {job_id}")
        return job

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        if url.path in ("/health", "/healthz"):
            self._send_json(200, {"ok": True})
        elif url.path == "/metrics":
            self.api.service.publish_metrics()
            body = REGISTRY.render_prometheus().encode()
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif url.path == "/api/status":
            self._send_json(200, self.api.service.status())
        elif url.path == "/api/jobs":
            state = (query.get("state") or [None])[0]
            submitter = (query.get("submitter") or [None])[0]
            if state is not None and state not in JOB_STATES:
                self._send_error(
                    400, f"unknown state {state!r} "
                         f"(expected one of {', '.join(JOB_STATES)})")
                return
            jobs = self.api.service.store.list_jobs(
                state=state, submitter=submitter)
            self._send_json(200, {"jobs": jobs})
        else:
            match = _JOB_PATH.match(url.path)
            if match is None or match.group(2) == "cancel":
                self._send_error(404, f"no such endpoint: {url.path}")
                return
            job_id, tail = int(match.group(1)), match.group(2)
            job = self._job_or_404(job_id)
            if job is None:
                return
            if tail is None:
                self._send_json(200, job)
            elif tail == "result":
                if job["state"] != "done":
                    self._send_error(
                        409, f"job {job_id} is {job['state']}, not done")
                else:
                    self._send_json(200, job["result"])
            else:  # events
                after = int((query.get("after") or ["0"])[0])
                if (query.get("stream") or ["0"])[0] in ("1", "true"):
                    self._stream_events(job_id, after)
                else:
                    events = self.api.service.store.events_after(job_id, after)
                    self._send_json(200, {"job": job_id, "events": events})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        if url.path == "/api/jobs":
            body = self._read_json()
            if body is None:
                return
            try:
                job_id = self.api.service.submit(
                    kind=str(body.get("kind") or "sweep"),
                    spec=body.get("spec") or {},
                    submitter=str(body.get("submitter") or "anonymous"),
                    priority=int(body.get("priority") or 0),
                    trace=SpanContext.from_header(
                        self.headers.get("X-Repro-Trace")),
                )
            except (ValueError, KeyError) as exc:
                self._send_error(400, str(exc))
                return
            self._send_json(201, self.api.service.store.get(job_id))
            return
        match = _JOB_PATH.match(url.path)
        if match is None or match.group(2) != "cancel":
            self._send_error(404, f"no such endpoint: {url.path}")
            return
        job_id = int(match.group(1))
        if self._job_or_404(job_id) is None:
            return
        state = self.api.service.store.request_cancel(job_id)
        self._send_json(200, {"id": job_id, "state": state})

    # -- NDJSON streaming ------------------------------------------------

    def _stream_events(self, job_id: int, after: int) -> None:
        """Long-poll the event log, one JSON object per line.

        Ends when the job reaches a terminal state; the last line is a
        synthetic ``{"event": "state"}`` record so clients need not
        re-fetch the job to learn the outcome.  Chunked encoding keeps
        the HTTP/1.1 connection well-formed without a known length.
        """
        store = self.api.service.store
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def emit(obj: object) -> None:
            line = (json.dumps(obj) + "\n").encode()
            self.wfile.write(b"%x\r\n" % len(line) + line + b"\r\n")
            self.wfile.flush()

        try:
            while not self.server.repro_closing:
                for event in store.events_after(job_id, after):
                    after = event["seq"]
                    emit(event)
                job = store.get(job_id)
                if job is None or job["state"] in TERMINAL_STATES:
                    emit({"event": "state", "seq": after,
                          "state": job["state"] if job else "deleted",
                          "error": job.get("error") if job else None})
                    break
                time.sleep(STREAM_POLL_INTERVAL)
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up
        self.close_connection = True
