"""Sweep-as-a-service: the always-on coordinator (``repro serve``).

Submodules:

* :mod:`repro.service.store` -- sqlite persistence: the
  :class:`~repro.service.store.SqliteResultCache` result index and the
  :class:`~repro.service.store.JobStore` job queue / event log.
* :mod:`repro.service.coordinator` -- :class:`SweepService`, the
  scheduler that claims jobs and drives ``stream_sweep`` over them.
* :mod:`repro.service.api` -- the HTTP/JSON front end.
* :mod:`repro.service.client` -- a stdlib-only client used by the
  ``repro job`` CLI verbs and by tests.

The coordinator and API are imported lazily by the CLI (``repro
serve`` / ``repro job``) so that importing :mod:`repro.service` stays
cheap for code that only wants the sqlite cache.
"""

from repro.service.store import JobStore, SqliteResultCache, open_result_cache

__all__ = [
    "JobStore",
    "SqliteResultCache",
    "open_result_cache",
]
