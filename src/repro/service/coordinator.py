"""The always-on sweep coordinator behind ``python -m repro serve``.

:class:`SweepService` turns the one-shot CLI orchestration into
infrastructure: it owns a persistent :class:`~repro.service.store.JobStore`
(submissions survive coordinator crashes), a shared
:class:`~repro.service.store.SqliteResultCache`, and -- optionally -- one
long-lived distributed backend (static workers, a dial-in listener,
and/or a registry subscription), then runs submitted jobs through the
exact ``stream_sweep`` machinery the CLI uses.  Reliability semantics
are therefore unchanged: the per-cell
:class:`~repro.experiments.backends.CellPolicy` (timeouts, retry
budgets, quarantine) governs service sweeps the same way it governs
``repro sweep``.

Job kinds and their ``spec`` objects:

``sweep``
    ``{"workloads": [...], "scenarios": [...], "variants": [...],
    "records": N, "threads": N, "scale": N, "timing": "...",
    "seed": N}`` -- all optional, defaulted exactly like ``repro
    sweep``.  The stored result payload matches ``repro sweep
    --output``'s JSON shape, so artifacts are byte-comparable against
    local runs.
``scenario``
    sugar for a sweep over phase-DSL scenarios only: ``{"names":
    [...]}`` plus the same optional knobs.
``report``
    ``{"figures": [...], "workloads": [...], ...}`` -- renders
    REPORT.md/REPORT.html + SVGs into the job's artifact directory
    under ``<state_dir>/artifacts/``.

Scheduling is the store's: priority first, fair share across
submitters, FIFO.  ``max_active`` bounds concurrently running jobs
(default 1 -- the worker fleet is a shared resource; a sweep already
parallelizes internally).  Progress is appended to the store's event
log as ``cell`` events, which the HTTP API serves as polls or NDJSON
streams.
"""

from __future__ import annotations

import json
import threading
import traceback
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Union

from repro.experiments.backends import CellPolicy, DistributedBackend
from repro.experiments.orchestrator import (
    ResultCache,
    default_jobs,
    stream_sweep,
    sweep_product,
)
from repro.experiments.runner import default_records
from repro.obs import REGISTRY, span
from repro.obs.log import JsonLinesLogger
from repro.obs.spans import SpanContext, activate, deactivate
from repro.service.store import JobStore, SqliteResultCache

#: Job kinds :class:`SweepService` executes.
JOB_KINDS = ("sweep", "scenario", "report")


class JobCancelled(Exception):
    """Raised inside a job executor when its cancel flag is set."""


class SweepService:
    """The long-lived coordinator: claims queued jobs and runs them.

    Use as a context manager or call :meth:`start` / :meth:`close`.
    ``state_dir`` holds the sqlite job queue and per-job artifact
    directories; ``cache_dir`` the (sqlite-indexed) result cache shared
    by every job.  ``workers`` / ``listen`` / ``registry`` configure
    one shared :class:`DistributedBackend`; with none of them, cells
    run on the local process pool (``jobs``).
    """

    def __init__(
        self,
        state_dir: Union[str, Path] = ".repro_service",
        cache_dir: Optional[Union[str, Path]] = None,
        cache_max_bytes: Optional[int] = None,
        workers: Optional[Sequence[str]] = None,
        listen: Optional[str] = None,
        registry: Optional[str] = None,
        jobs: Optional[int] = None,
        policy: Optional[CellPolicy] = None,
        max_active: int = 1,
        log: Optional[TextIO] = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.store = JobStore(self.state_dir / "jobs.sqlite3")
        self.cache: ResultCache = SqliteResultCache(
            cache_dir, max_bytes=cache_max_bytes
        )
        self.jobs = jobs
        self.policy = policy
        self.max_active = max(1, int(max_active))
        self._log = log
        self._backend: Optional[DistributedBackend] = None
        if workers or listen or registry:
            self._backend = DistributedBackend(
                workers=workers or [], listen=listen, registry=registry,
                policy=policy,
            )
        #: Serializes sweeps onto the shared distributed backend: its
        #: listener and registry subscription are single-sweep-at-a-time
        #: resources.  Local-backend jobs run without it.
        self._backend_lock = threading.Lock()
        self._stop = threading.Event()
        self._schedulers: List[threading.Thread] = []
        self._logger = (JsonLinesLogger("serve", stream=log)
                        if log is not None else None)
        #: job_id -> submitter's trace context (from the HTTP API's
        #: ``X-Repro-Trace`` header), adopted when the job runs so
        #: coordinator- and worker-side spans correlate.  In-memory
        #: only: a context outliving a coordinator restart has no
        #: client waiting on it.
        self._traces: Dict[int, SpanContext] = {}

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "SweepService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _say(self, event: str, **fields: object) -> None:
        if self._logger is not None:
            self._logger.info(event, **fields)

    def start(self) -> None:
        if self._schedulers:
            return
        requeued = self.store.requeue_running()
        if requeued:
            self._say("jobs_requeued_at_startup", jobs=list(requeued))
        for i in range(self.max_active):
            thread = threading.Thread(
                target=self._scheduler_loop, name=f"serve-scheduler-{i}",
                daemon=True,
            )
            thread.start()
            self._schedulers.append(thread)

    def close(self) -> None:
        self._stop.set()
        for thread in self._schedulers:
            thread.join(timeout=10.0)
        self._schedulers = []
        if self._backend is not None:
            self._backend.close()
        self.store.close()
        self.cache.close()

    @property
    def backend_label(self) -> str:
        if self._backend is not None:
            return self._backend.describe()
        return f"local[jobs={self.jobs or default_jobs()}]"

    # -- submission convenience (the HTTP API calls these) ---------------

    def submit(
        self,
        kind: str,
        spec: Dict[str, object],
        submitter: str = "anonymous",
        priority: int = 0,
        trace: Optional[SpanContext] = None,
    ) -> int:
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {kind!r} (expected one of "
                f"{', '.join(JOB_KINDS)})"
            )
        if not isinstance(spec, dict):
            raise ValueError("job spec must be a JSON object")
        job_id = self.store.submit(kind, spec, submitter=submitter,
                                   priority=priority)
        if trace is not None:
            self._traces[job_id] = trace
        REGISTRY.counter("repro_service_jobs_submitted_total",
                         "jobs accepted by the service",
                         kind=kind).inc()
        self._say("job_queued", job=job_id, kind=kind,
                  submitter=submitter, priority=priority)
        return job_id

    def artifact_dir(self, job_id: int) -> Path:
        return self.state_dir / "artifacts" / f"job-{job_id}"

    # -- scheduling ------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            job = self.store.claim_next()
            if job is None:
                self._stop.wait(0.2)
                continue
            self._run_job(job)

    def _run_job(self, job: Dict[str, object]) -> None:
        job_id = int(job["id"])
        self._say("job_started", job=job_id, kind=job["kind"])
        self.store.add_event(job_id, {"event": "state", "state": "running"})
        # Adopt the submitter's trace context (if the HTTP API captured
        # one) so this job's spans -- and via the shared backend, the
        # per-cell contexts shipped to workers -- correlate with it.
        token = None
        trace = self._traces.pop(job_id, None)
        if trace is not None:
            token = activate(trace)
        try:
            with span("service.job", kind=str(job["kind"]), job=job_id):
                if job["kind"] in ("sweep", "scenario"):
                    result = self._run_sweep_job(job_id, job["kind"],
                                                 job["spec"])
                else:
                    result = self._run_report_job(job_id, job["spec"])
        except JobCancelled:
            self.store.mark_cancelled(job_id)
            self._say("job_cancelled", job=job_id)
        except Exception:  # noqa: BLE001 - recorded on the job, queue survives
            error = traceback.format_exc()
            self.store.fail(job_id, error)
            self._say("job_failed", job=job_id,
                      error=error.splitlines()[-1])
        else:
            self.store.finish(job_id, result)
            self._say("job_done", job=job_id)
        finally:
            if token is not None:
                deactivate(token)

    def _check_cancel(self, job_id: int) -> None:
        if self._stop.is_set():
            # Coordinator shutdown mid-job: the job goes back to queued
            # on the next startup (requeue_running), not to failed.
            raise JobCancelled("coordinator shutting down")
        if self.store.cancel_requested(job_id):
            raise JobCancelled(f"job {job_id} cancelled")

    # -- executors -------------------------------------------------------

    def _run_sweep_job(
        self, job_id: int, kind: str, spec: Dict[str, object]
    ) -> Dict[str, object]:
        """One sweep/scenario job, via the CLI's own grid + stream path.

        The result payload replicates ``repro sweep --output`` exactly
        (sans the per-process cache counters): the CI smoke compares
        the two byte-for-byte.
        """
        from repro.scenarios import canonical_scenario
        from repro.variants import MAIN_VARIANTS, canonical_variant
        from repro.workloads.suites import WORKLOAD_NAMES, canonical_workload

        if kind == "scenario":
            names = spec.get("names") or spec.get("scenarios") or []
            if not names:
                raise ValueError("scenario job needs names: [...]")
            workloads = [canonical_scenario(str(s)) for s in names]
        else:
            scenarios = [canonical_scenario(str(s))
                         for s in spec.get("scenarios") or []]
            workloads = [canonical_workload(str(w))
                         for w in spec.get("workloads") or []]
            if not workloads and not scenarios:
                workloads = list(WORKLOAD_NAMES)
            workloads += scenarios
        variants = [canonical_variant(str(v))
                    for v in spec.get("variants") or MAIN_VARIANTS]
        records = int(spec.get("records") or default_records())
        jobs = int(spec["jobs"]) if spec.get("jobs") else (
            self.jobs if self.jobs is not None else default_jobs())
        specs = sweep_product(
            workloads,
            variants,
            records_per_thread=records,
            threads=spec.get("threads"),
            scale=spec.get("scale"),
            timing=spec.get("timing"),
            seed=spec.get("seed"),
        )
        self.store.add_event(job_id, {
            "event": "plan", "cells": len(specs), "workloads": workloads,
            "variants": variants, "records_per_thread": records,
            "backend": self.backend_label,
        })
        self._check_cancel(job_id)
        results = [None] * len(specs)
        if self._backend is not None:
            with self._backend_lock:
                self._stream(job_id, specs, results, self._backend, jobs)
        else:
            self._stream(job_id, specs, results, None, jobs)
        payload = {
            "workloads": workloads,
            "variants": variants,
            "records_per_thread": records,
            "jobs": jobs,
            "backend": self.backend_label,
            "results": [r.to_dict() for r in results],
        }
        artifact = self.artifact_dir(job_id)
        artifact.mkdir(parents=True, exist_ok=True)
        (artifact / "results.json").write_text(json.dumps(payload, indent=2))
        return payload

    def _stream(self, job_id, specs, results, backend, jobs) -> None:
        """Drain one stream_sweep, recording a ``cell`` event per cell."""
        stream = stream_sweep(specs, jobs=jobs, cache=self.cache,
                              backend=backend, policy=self.policy)
        try:
            for update in stream:
                for i in update.positions:
                    results[i] = update.result
                r = update.result
                self.store.add_event(job_id, {
                    "event": "cell",
                    "workload": r.workload,
                    "variant": r.variant,
                    "source": update.source,
                    "completed": update.completed,
                    "total": update.total,
                    "exec_ms": r.stats.execution_ns / 1e6,
                    "ipns": r.stats.throughput_ipns,
                })
                self._check_cancel(job_id)
        finally:
            # On cancel/shutdown: stop consuming; the helper thread
            # drains in the background and finished cells are already
            # in the cache (a resubmission fast-forwards through them).
            stream.close()

    def _run_report_job(
        self, job_id: int, spec: Dict[str, object]
    ) -> Dict[str, object]:
        """One report job: figure drivers + SVG/markdown rendering."""
        from repro.cli import FIGURES, _figure_kwargs  # lazy: heavy import
        from repro.figures.report import ReportBuilder
        import argparse

        names = [str(n) for n in spec.get("figures") or []] or sorted(FIGURES)
        unknown = [n for n in names if n not in FIGURES]
        if unknown:
            raise ValueError(f"unknown figure(s): {', '.join(unknown)}")
        out_dir = self.artifact_dir(job_id)
        out_dir.mkdir(parents=True, exist_ok=True)
        builder = ReportBuilder(out_dir, names)
        args = argparse.Namespace(
            workloads=[str(w) for w in spec.get("workloads") or []] or None,
            records=spec.get("records"),
            jobs=int(spec["jobs"]) if spec.get("jobs") else self.jobs,
            no_cache=False,
            cache_dir=None,
            cache_max_bytes=None,
            cell_timeout=(self.policy.cell_timeout
                          if self.policy is not None else None),
            retry_budget=(self.policy.retry_budget
                          if self.policy is not None else None),
        )

        def progress(job, source) -> None:
            builder.cell_completed(job, source)
            self.store.add_event(job_id, {
                "event": "cell", "workload": job.workload,
                "variant": job.variant, "source": source,
            })
            self._check_cancel(job_id)

        failures: List[str] = []
        backend = self._backend
        lock = self._backend_lock if backend is not None else None
        if lock is not None:
            lock.acquire()
        try:
            for name in names:
                self._check_cancel(job_id)
                fn = FIGURES[name]
                builder.figure_started(name)
                kwargs = _figure_kwargs(fn, args, backend, cache=self.cache,
                                        progress=progress)
                try:
                    data = fn(**kwargs)
                    (out_dir / f"{name}.json").write_text(
                        json.dumps(data, indent=2, default=str)
                    )
                    builder.figure_finished(name, data)
                except JobCancelled:
                    raise
                except Exception:  # noqa: BLE001 - recorded per figure
                    builder.figure_failed(name, traceback.format_exc())
                    failures.append(name)
                self.store.add_event(job_id, {
                    "event": "figure", "name": name,
                    "state": "failed" if name in failures else "done",
                })
        finally:
            if lock is not None:
                lock.release()
            builder.render()
        if failures:
            raise RuntimeError(
                f"{len(failures)} figure(s) failed: {', '.join(failures)} "
                f"(see {out_dir / 'REPORT.md'})"
            )
        return {
            "figures": names,
            "out_dir": str(out_dir),
            "report_md": str(out_dir / "REPORT.md"),
            "report_html": str(out_dir / "REPORT.html"),
        }

    # -- introspection (the HTTP API reads these) ------------------------

    def status(self) -> Dict[str, object]:
        return {
            "backend": self.backend_label,
            "max_active": self.max_active,
            "state_dir": str(self.state_dir),
            "cache": self.cache.stats(),
            "jobs": self.store.counts(),
        }

    def publish_metrics(self) -> None:
        """Refresh the service gauges in the global metrics registry.

        Called per ``/metrics`` scrape: gauges are point-in-time reads
        of the store and cache, so sampling them at scrape time keeps
        the registry honest without a background sampler thread.
        """
        for state, count in self.store.counts().items():
            REGISTRY.gauge("repro_service_jobs",
                           "jobs in the store by state",
                           state=state).set(count)
        stats = self.cache.stats()
        for key in ("entries", "size_bytes", "hits", "misses", "puts",
                    "evictions"):
            if key in stats:
                REGISTRY.gauge(f"repro_service_cache_{key}",
                               f"result cache {key}").set(
                    float(stats[key]))
        REGISTRY.gauge("repro_service_max_active",
                       "concurrent job slots").set(self.max_active)
        if self._backend is not None:
            REGISTRY.gauge(
                "repro_service_remote_cache_hits",
                "sweep cells answered from worker-side caches",
            ).set(self._backend.remote_cache_hits)
