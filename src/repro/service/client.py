"""Stdlib client for the ``repro serve`` HTTP API.

:class:`ServiceClient` wraps ``urllib`` so scripts, tests, and the
``repro job`` CLI verbs never hand-roll requests.  Every method maps
1:1 onto an endpoint documented in :mod:`repro.service.api`; streaming
reads the NDJSON event feed incrementally, so progress arrives as the
coordinator produces it.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

from repro.obs.spans import current_context
from repro.service.store import TERMINAL_STATES


class ServiceError(RuntimeError):
    """An API request failed; ``status`` carries the HTTP code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talks to one ``repro serve`` coordinator at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        if "://" not in self.base_url:
            self.base_url = "http://" + self.base_url
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None,
                 timeout: Optional[float] = None,
                 headers: Optional[Dict[str, str]] = None):
        data = json.dumps(body).encode() if body is not None else None
        send_headers = dict(headers or {})
        if data:
            send_headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers=send_headers,
        )
        try:
            return urllib.request.urlopen(
                req, timeout=self.timeout if timeout is None else timeout)
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except ValueError:
                message = str(exc)
            raise ServiceError(exc.code, message) from None

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, object]] = None,
              headers: Optional[Dict[str, str]] = None):
        with self._request(method, path, body, headers=headers) as resp:
            return json.loads(resp.read())

    # -- API surface -----------------------------------------------------

    def health(self) -> bool:
        try:
            return bool(self._json("GET", "/health").get("ok"))
        except (ServiceError, urllib.error.URLError):
            return False

    def wait_healthy(self, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.health():
                return
            time.sleep(0.1)
        raise ServiceError(503, f"{self.base_url} not healthy "
                                f"after {timeout:.0f}s")

    def status(self) -> Dict[str, object]:
        return self._json("GET", "/api/status")

    def submit(self, kind: str, spec: Dict[str, object],
               submitter: str = "anonymous",
               priority: int = 0) -> Dict[str, object]:
        # An active client-side span rides along so the coordinator's
        # job (and its workers' cells) correlate with this submission.
        context = current_context()
        headers = ({"X-Repro-Trace": context.to_header()}
                   if context is not None else None)
        return self._json("POST", "/api/jobs", {
            "kind": kind, "spec": spec,
            "submitter": submitter, "priority": priority,
        }, headers=headers)

    def jobs(self, state: Optional[str] = None,
             submitter: Optional[str] = None) -> List[Dict[str, object]]:
        path = "/api/jobs"
        params = [f"{k}={v}" for k, v in
                  (("state", state), ("submitter", submitter)) if v]
        if params:
            path += "?" + "&".join(params)
        return self._json("GET", path)["jobs"]

    def job(self, job_id: int) -> Dict[str, object]:
        return self._json("GET", f"/api/jobs/{job_id}")

    def events(self, job_id: int, after: int = 0) -> List[Dict[str, object]]:
        return self._json(
            "GET", f"/api/jobs/{job_id}/events?after={after}")["events"]

    def result(self, job_id: int) -> Dict[str, object]:
        return self._json("GET", f"/api/jobs/{job_id}/result")

    def cancel(self, job_id: int) -> Dict[str, object]:
        return self._json("POST", f"/api/jobs/{job_id}/cancel")

    def stream(self, job_id: int, after: int = 0,
               timeout: Optional[float] = None) -> Iterator[Dict[str, object]]:
        """Yield the job's events live until it reaches a terminal state.

        The last yielded record is the server's synthetic
        ``{"event": "state"}`` line.  ``timeout`` is the per-read
        socket timeout (a sweep cell can legitimately take minutes;
        default: no limit).
        """
        path = f"/api/jobs/{job_id}/events?after={after}&stream=1"
        resp = self._request("GET", path, timeout=timeout or 3600.0)
        try:
            for raw in resp:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            resp.close()

    def wait(self, job_id: int, timeout: float = 3600.0,
             poll: float = 0.2) -> Dict[str, object]:
        """Block until the job is terminal; returns the final job row."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408, f"job {job_id} still {job['state']} "
                         f"after {timeout:.0f}s")
            time.sleep(poll)
