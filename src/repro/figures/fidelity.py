"""Paper-fidelity scoring: reproduced numbers vs the paper's numbers.

The paper reports concrete values for several evaluation figures (the
6.11x mean speedup of Fig. 14, Table III's per-workload flash read
latencies, the SS VI-B cost arithmetic, ...).  Those values live as
``PAPER_EXPECTED`` annotations **next to the driver that reproduces
them** (e.g. :data:`repro.experiments.overall.PAPER_EXPECTED`); this
module turns them into :class:`Expectation` objects -- paper value +
an extractor over the driver's JSON payload + tolerance thresholds --
and evaluates them into the report's fidelity table.

Classification is by relative delta ``(reproduced - paper) / |paper|``:

* ``pass`` -- within ``pass_tol`` of the paper's number;
* ``warn`` -- within ``warn_tol``: the right shape, scaled-down
  magnitude (expected: this reproduction runs a few thousand records
  per thread at 1/512 capacity, not the paper's full traces);
* ``off`` -- beyond ``warn_tol``: investigate before trusting the cell;
* ``n/a`` -- not measurable from this payload (e.g. a smoke run that
  swept a workload subset).

``off`` rows do not fail CI -- the report is evidence, not a gate --
but the golden fidelity suite pins exact numbers per backend, so a
silent regression still trips tier-1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import cost as cost_mod
from repro.experiments import design as design_mod
from repro.experiments import motivation as motivation_mod
from repro.experiments import overall as overall_mod
from repro.figures.spec import _norm, geomean

#: Default tolerances: within 25% passes, within 150% is the expected
#: scaled-down-warm band, beyond is flagged.
PASS_TOL = 0.25
WARN_TOL = 1.5

Extractor = Callable[[dict], Optional[float]]


@dataclass(frozen=True)
class Expectation:
    """One paper-reported number and how to measure it from a payload."""

    figure: str
    metric: str
    paper: float
    extract: Extractor
    pass_tol: float = PASS_TOL
    warn_tol: float = WARN_TOL
    note: str = ""


@dataclass(frozen=True)
class FidelityRow:
    """One evaluated fidelity-table row."""

    figure: str
    metric: str
    paper: float
    reproduced: Optional[float]
    delta: Optional[float]  # relative; None when not measurable
    status: str  # "pass" | "warn" | "off" | "n/a"
    note: str = ""


def classify(paper: float, reproduced: Optional[float],
             pass_tol: float = PASS_TOL,
             warn_tol: float = WARN_TOL) -> FidelityRow:
    """Classify a reproduced value against a paper value.

    Returns a partially-filled row (figure/metric blank); the relative
    delta divides by ``max(|paper|, 1e-12)`` so a zero paper value
    cannot divide by zero.
    """
    if reproduced is None or not math.isfinite(reproduced):
        return FidelityRow("", "", paper, None, None, "n/a")
    delta = (reproduced - paper) / max(abs(paper), 1e-12)
    if abs(delta) <= pass_tol:
        status = "pass"
    elif abs(delta) <= warn_tol:
        status = "warn"
    else:
        status = "off"
    return FidelityRow("", "", paper, float(reproduced), delta, status)


# ---------------------------------------------------------------------------
# Extractors (payloads are JSON-normalized driver returns)
# ---------------------------------------------------------------------------


def _agg(values: Sequence[float], how: str) -> Optional[float]:
    if how == "geomean":
        return geomean(values)
    values = [float(v) for v in values
              if v is not None and math.isfinite(float(v))]
    if not values:
        return None
    if how == "min":
        return min(values)
    if how == "max":
        return max(values)
    return sum(values) / len(values)  # mean


def _fig2(how: str) -> Extractor:
    def extract(data: dict) -> Optional[float]:
        return _agg([row.get("slowdown") for row in data.values()], how)
    return extract


def _fig3_fast_fraction(data: dict) -> Optional[float]:
    return _agg(
        [row.get("CXL-SSD", {}).get("fast_fraction") for row in data.values()],
        "mean",
    )


def _fig4(field: str, how: str) -> Extractor:
    def extract(data: dict) -> Optional[float]:
        return _agg([row.get(field) for row in data.values()], how)
    return extract


def _fig9_best_threshold(data: dict) -> Optional[float]:
    by_threshold: Dict[float, List[float]] = {}
    for row in data.values():
        for threshold, value in row.items():
            by_threshold.setdefault(float(threshold), []).append(float(value))
    if not by_threshold:
        return None
    means = {t: sum(vs) / len(vs) for t, vs in by_threshold.items()}
    return min(sorted(means), key=lambda t: means[t])


def _fig9_max_degradation(data: dict) -> Optional[float]:
    worst = [max(float(v) for v in row.values())
             for row in data.values() if row]
    return _agg(worst, "max")


def _fig14_full_speedup(data: dict) -> Optional[float]:
    speedups = []
    for row in data.values():
        normalized = row.get("SkyByte-Full")
        if normalized:
            speedups.append(1.0 / float(normalized))
    return _agg(speedups, "geomean")


def _table3(workload: str) -> Extractor:
    def extract(data: dict) -> Optional[float]:
        value = data.get(workload)
        return None if value is None else float(value)
    return extract


def _cost(key: str) -> Extractor:
    def extract(data: dict) -> Optional[float]:
        value = data.get(key)
        return None if value is None else float(value)
    return extract


# ---------------------------------------------------------------------------
# The expectation registry (paper values live with the drivers)
# ---------------------------------------------------------------------------


def _build_expectations() -> List[Expectation]:
    m = motivation_mod.PAPER_EXPECTED
    d = design_mod.PAPER_EXPECTED
    o = overall_mod.PAPER_EXPECTED
    c = cost_mod.PAPER_EXPECTED
    rows: List[Expectation] = [
        Expectation("fig2", "min slowdown over DRAM",
                    m["fig2"]["slowdown_min"], _fig2("min"),
                    note="min over the workloads present"),
        Expectation("fig2", "max slowdown over DRAM",
                    m["fig2"]["slowdown_max"], _fig2("max"),
                    note="max over the workloads present"),
        Expectation("fig3", "CXL-SSD fast-served fraction",
                    m["fig3"]["cssd_fast_fraction"], _fig3_fast_fraction,
                    pass_tol=0.1, warn_tol=0.5,
                    note="mean fraction of requests under 300 ns"),
        Expectation("fig4", "memory-bound fraction, DRAM (min)",
                    m["fig4"]["dram_memory_bound"][0],
                    _fig4("dram_memory_bound", "min")),
        Expectation("fig4", "memory-bound fraction, DRAM (max)",
                    m["fig4"]["dram_memory_bound"][1],
                    _fig4("dram_memory_bound", "max")),
        Expectation("fig4", "memory-bound fraction, CXL-SSD (min)",
                    m["fig4"]["cssd_memory_bound"][0],
                    _fig4("cssd_memory_bound", "min")),
        Expectation("fig4", "memory-bound fraction, CXL-SSD (max)",
                    m["fig4"]["cssd_memory_bound"][1],
                    _fig4("cssd_memory_bound", "max")),
        Expectation("fig9", "best trigger threshold (us)",
                    d["fig9"]["best_threshold_us"], _fig9_best_threshold,
                    pass_tol=0.0, warn_tol=4.0,
                    note="argmin of mean normalized time"),
        Expectation("fig9", "worst-case degradation (x)",
                    d["fig9"]["max_degradation"], _fig9_max_degradation,
                    note="max normalized time over thresholds"),
        Expectation("fig14", "SkyByte-Full geomean speedup (x)",
                    o["fig14"]["skybyte_full_geomean_speedup"],
                    _fig14_full_speedup,
                    note="geomean of 1/normalized time"),
        Expectation("cost", "DRAM:flash $ ratio (x)",
                    c["cost"]["cost_ratio"], _cost("cost_ratio"),
                    pass_tol=0.05, warn_tol=0.5,
                    note="pure price arithmetic -- must match"),
        Expectation("cost", "performance fraction of DRAM-Only",
                    c["cost"]["performance_fraction_geomean"],
                    _cost("performance_fraction_geomean")),
        Expectation("cost", "cost-effectiveness (x)",
                    c["cost"]["cost_effectiveness"],
                    _cost("cost_effectiveness")),
    ]
    rows.extend(
        Expectation("table3", f"flash read latency, {workload} (us)",
                    paper_us, _table3(workload))
        for workload, paper_us in o["table3"]["read_latency_us"].items()
    )
    return rows


_EXPECTATIONS: Optional[List[Expectation]] = None


def all_expectations() -> List[Expectation]:
    global _EXPECTATIONS
    if _EXPECTATIONS is None:
        _EXPECTATIONS = _build_expectations()
    return list(_EXPECTATIONS)


def expectations_for(figure: str) -> List[Expectation]:
    return [e for e in all_expectations() if e.figure == figure]


def evaluate(figure: str, data: object) -> List[FidelityRow]:
    """Fidelity rows for one figure's payload ([] if none registered)."""
    payload = _norm(data)
    rows: List[FidelityRow] = []
    for exp in expectations_for(figure):
        try:
            reproduced = exp.extract(payload)
        except (AttributeError, KeyError, TypeError, ValueError,
                ZeroDivisionError):
            reproduced = None
        scored = classify(exp.paper, reproduced, exp.pass_tol, exp.warn_tol)
        rows.append(FidelityRow(
            figure=exp.figure,
            metric=exp.metric,
            paper=exp.paper,
            reproduced=scored.reproduced,
            delta=scored.delta,
            status=scored.status,
            note=exp.note,
        ))
    return rows
