"""Figure rendering and paper-fidelity reporting.

This subsystem turns the JSON payloads produced by the drivers in
:mod:`repro.experiments` into human-readable evaluation artifacts,
with no dependencies beyond the standard library (CI never needs
matplotlib):

* :mod:`repro.figures.spec` -- the chart-spec registry: figure id ->
  paper section, chart form, and a shaper from driver JSON to charts;
* :mod:`repro.figures.svg` -- a deterministic SVG renderer for grouped
  bars and lines;
* :mod:`repro.figures.fidelity` -- reproduced-vs-paper scoring against
  the ``PAPER_EXPECTED`` annotations embedded in the drivers;
* :mod:`repro.figures.report` -- the incremental ``REPORT.md`` /
  ``REPORT.html`` builder behind ``python -m repro report``.

See ``docs/ARCHITECTURE.md`` for where this layer sits and
``docs/FIGURES.md`` for the per-figure gallery.
"""

from repro.figures.fidelity import (
    Expectation,
    FidelityRow,
    all_expectations,
    classify,
    evaluate,
    expectations_for,
)
from repro.figures.report import ReportBuilder
from repro.figures.spec import SPECS, ChartSpec, shape_figure
from repro.figures.svg import Chart, Series, render_chart

__all__ = [
    "Chart",
    "ChartSpec",
    "Expectation",
    "FidelityRow",
    "ReportBuilder",
    "SPECS",
    "Series",
    "all_expectations",
    "classify",
    "evaluate",
    "expectations_for",
    "render_chart",
    "shape_figure",
]
