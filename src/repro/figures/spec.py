"""Chart-spec registry: figure id -> how to plot that driver's JSON.

Each driver in :mod:`repro.experiments` returns a nested dict (the same
payload ``python -m repro figures`` writes to ``<figure>.json``).  A
:class:`ChartSpec` records, per figure id, the paper section it
reproduces, the chart form, and a *shaper* that converts the driver's
payload into one or more renderable :class:`~repro.figures.svg.Chart`
objects (a figure whose natural encoding needs more series than the
palette has hues is faceted into small multiples, one chart per
workload).

Shapers are fed the **JSON-normalized** form of the data
(:func:`shape_figure` round-trips through ``json`` first), so they see
exactly what a reader of the ``figures_out/*.json`` artifacts sees:
string keys everywhere, no tuples.  That makes rendering from a live
driver run and from a JSON file on disk byte-identical.

Adding a figure: write the driver, register it in
``repro.cli.FIGURES``, add a :class:`ChartSpec` here (the registry
consistency test will insist), document it in ``docs/FIGURES.md``, and
-- if the paper reports concrete numbers for it -- add expectations in
:mod:`repro.figures.fidelity`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.figures.svg import Chart, Series

ShapeFn = Callable[[object], List[Chart]]


@dataclass(frozen=True)
class ChartSpec:
    """Everything the report needs to render and document one figure."""

    figure: str
    title: str
    section: str  # paper section, e.g. "SS II-C"
    kind: str  # "bar" | "line" (the dominant mark; CDFs are lines)
    workloads: str  # documentation: which workloads the driver defaults to
    variants: str  # documentation: which designs/parameters are swept
    description: str
    shape: ShapeFn


def _norm(data: object) -> object:
    """The JSON-normalized view of a driver payload (string keys)."""
    return json.loads(json.dumps(data, default=str))


def _fsorted(keys: Sequence[str]) -> List[str]:
    """String keys sorted by their numeric value."""
    return sorted(keys, key=float)


def _bar(title: str, rows: Dict[str, Dict[str, float]], y_label: str,
         subtitle: str = "", series_order: Sequence[str] = ()) -> Chart:
    """A grouped bar chart from ``{category: {series: value}}`` rows."""
    categories = tuple(rows)
    labels = list(series_order) or list(next(iter(rows.values()), {}))
    series = tuple(
        Series(
            label=label,
            values=tuple(
                (None if rows[c].get(label) is None else float(rows[c][label]))
                for c in categories
            ),
        )
        for label in labels
    )
    return Chart(title=title, kind="bar", categories=categories,
                 series=series, y_label=y_label, subtitle=subtitle)


def _stacked(title: str, rows: Dict[str, Dict[str, float]], y_label: str,
             subtitle: str = "", series_order: Sequence[str] = ()) -> Chart:
    """A stacked bar chart from ``{category: {segment: value}}`` rows."""
    chart = _bar(title, rows, y_label, subtitle=subtitle,
                 series_order=series_order)
    return Chart(title=chart.title, kind="stacked",
                 categories=chart.categories, series=chart.series,
                 y_label=chart.y_label, subtitle=chart.subtitle)


def _single_bar(title: str, values: Dict[str, float], label: str,
                y_label: str, subtitle: str = "") -> Chart:
    return Chart(
        title=title,
        kind="bar",
        categories=tuple(values),
        series=(Series(label=label,
                       values=tuple(float(v) for v in values.values())),),
        y_label=y_label,
        subtitle=subtitle,
    )


def _line(title: str, series: Dict[str, Sequence[Tuple[float, float]]],
          x_label: str, y_label: str, log_x: bool = False,
          subtitle: str = "") -> Chart:
    return Chart(
        title=title,
        kind="line",
        series=tuple(
            Series(label=label,
                   points=tuple((float(x), float(y)) for x, y in pts))
            for label, pts in series.items()
        ),
        x_label=x_label,
        y_label=y_label,
        log_x=log_x,
        subtitle=subtitle,
    )


# ---------------------------------------------------------------------------
# Shapers (one per figure id; data is JSON-normalized)
# ---------------------------------------------------------------------------


def _shape_fig2(data) -> List[Chart]:
    return [_single_bar(
        "Fig. 2: Base-CSSD slowdown over DRAM-Only",
        {wl: row["slowdown"] for wl, row in data.items()},
        "slowdown", "normalized execution time (x, lower is better)",
    )]


def _shape_fig3(data) -> List[Chart]:
    charts = []
    for wl, row in data.items():
        charts.append(_line(
            f"Fig. 3 ({wl}): off-chip latency CDF",
            {label: row[label]["cdf"] for label in row},
            "latency (ns)", "fraction of requests", log_x=True,
        ))
    return charts


def _shape_fig4(data) -> List[Chart]:
    return [_bar(
        "Fig. 4: memory-bounded execution fraction",
        {wl: {"DRAM": row["dram_memory_bound"],
              "CXL-SSD": row["cssd_memory_bound"]}
         for wl, row in data.items()},
        "fraction of cycles memory-bounded",
    )]


def _shape_locality(figure: str, what: str):
    def shape(data) -> List[Chart]:
        charts = []
        for wl, by_ratio in data.items():
            charts.append(_line(
                f"{figure} ({wl}): {what} locality CDF",
                {f"1:{ratio}": by_ratio[ratio]["cdf"]
                 for ratio in _fsorted(by_ratio)},
                f"fraction of lines {what} per page",
                "cumulative fraction of pages",
                subtitle="one curve per footprint:cache ratio",
            ))
        return charts
    return shape


def _shape_fig9(data) -> List[Chart]:
    return [_line(
        "Fig. 9: context-switch trigger threshold sweep",
        {wl: [(float(t), row[t]) for t in _fsorted(row)]
         for wl, row in data.items()},
        "trigger threshold (us)", "normalized execution time (2 us = 1)",
    )]


def _shape_fig10(data) -> List[Chart]:
    return [_bar(
        "Fig. 10: scheduling policies (RR / Random / CFS)",
        {wl: {policy: row[policy]["normalized_time"] for policy in row}
         for wl, row in data.items()},
        "normalized execution time (RR = 1)",
    )]


def _shape_fig14(data) -> List[Chart]:
    return [_bar(
        "Fig. 14: normalized execution time of every design",
        data, "normalized execution time (Base-CSSD = 1)",
    )]


def _shape_fig15(data) -> List[Chart]:
    charts = []
    for metric, label in (("throughput", "normalized throughput"),
                          ("ssd_bandwidth", "normalized SSD bandwidth")):
        charts.append(_line(
            f"Fig. 15: SkyByte-Full {label} vs threads",
            {wl: [(float(t), row[t][metric]) for t in _fsorted(row)]
             for wl, row in data.items()},
            "threads", f"{label} (SkyByte-WP@8 = 1)",
        ))
    return charts


def _shape_fig16(data) -> List[Chart]:
    return [_stacked(
        "Fig. 16: request class breakdown under SkyByte-Full",
        data, "fraction of requests",
        subtitle="stacked per workload: H-R/W + S-R-H + S-R-M + S-W = 1",
    )]


#: Fig. 17's stack order (SimStats.amat_breakdown keys, host outward).
AMAT_COMPONENTS = ("Host DRAM", "CXL Protocol", "Indexing", "SSD DRAM",
                   "Flash")


def _shape_fig17(data) -> List[Chart]:
    """One stacked chart per workload: AMAT decomposed into its
    components per design, the paper's Fig. 17 encoding."""
    charts = []
    for wl, by_variant in data.items():
        charts.append(_stacked(
            f"Fig. 17 ({wl}): AMAT decomposition per design",
            {variant: {c: row.get(c, 0.0) for c in AMAT_COMPONENTS}
             for variant, row in by_variant.items()},
            "AMAT (ns)",
            series_order=AMAT_COMPONENTS,
        ))
    return charts


def _shape_fig18(data) -> List[Chart]:
    return [_bar(
        "Fig. 18: flash write traffic per design",
        data, "flash writes per instruction (Base-CSSD = 1)",
    )]


def _kib(size: str) -> float:
    return float(size) / 1024.0


def _shape_fig19(data) -> List[Chart]:
    return [_line(
        "Fig. 19: performance vs write-log size",
        {wl: [(_kib(s), row[s]) for s in _fsorted(row)]
         for wl, row in data.items()},
        "write log size (KiB)", "normalized execution time (largest log = 1)",
        log_x=True,
    )]


def _shape_fig20(data) -> List[Chart]:
    return [_line(
        "Fig. 20: flash write traffic vs write-log size",
        {wl: [(_kib(s), row[s]) for s in _fsorted(row)]
         for wl, row in data.items()},
        "write log size (KiB)", "normalized flash writes (smallest log = 1)",
        log_x=True,
    )]


def _shape_fig21(data) -> List[Chart]:
    charts = []
    for wl, by_variant in data.items():
        charts.append(_line(
            f"Fig. 21 ({wl}): performance vs SSD DRAM size",
            {variant: [(_kib(s), sweep[s]) for s in _fsorted(sweep)]
             for variant, sweep in by_variant.items()},
            "SSD DRAM (KiB)",
            "normalized execution time (SkyByte-Full @ default = 1)",
            log_x=True,
        ))
    return charts


def geomean(values: Sequence[float]) -> Optional[float]:
    """Geometric mean over the finite values (None when none remain).

    Values are clamped at 1e-12 so a zero cell cannot collapse the
    mean.  Shared by the fig. 22 shaper and the fidelity extractors.
    """
    clean = [max(float(v), 1e-12) for v in values
             if v is not None and math.isfinite(float(v))]
    if not clean:
        return None
    product = 1.0
    for v in clean:
        product *= v
    return product ** (1.0 / len(clean))


def _shape_fig22(data) -> List[Chart]:
    workloads = list(data)
    timings = list(next(iter(data.values()), {}))
    designs = list(next(iter(data[workloads[0]].values()), {})) \
        if workloads else []
    rows = {
        timing: {
            design: geomean([data[wl][timing][design] for wl in workloads])
            for design in designs
        }
        for timing in timings
    }
    return [_bar(
        "Fig. 22: flash technology sensitivity",
        rows, "normalized execution time (SkyByte-Full-24 @ ULL = 1)",
        subtitle="geometric mean across workloads",
    )]


def _shape_fig23(data) -> List[Chart]:
    return [_bar(
        "Fig. 23: page migration mechanisms",
        data, "normalized execution time (SkyByte-C = 1)",
    )]


def _shape_table3(data) -> List[Chart]:
    return [_single_bar(
        "Table III: average flash read latency under SkyByte-WP",
        data, "flash read latency", "latency (us)",
    )]


def _shape_cost(data) -> List[Chart]:
    values = dict(data["performance_fraction"])
    values["geomean"] = data["performance_fraction_geomean"]
    subtitle = (
        f"cost ratio {float(data['cost_ratio']):.3g}x -> "
        f"cost-effectiveness {float(data['cost_effectiveness']):.3g}x"
    )
    return [_single_bar(
        "Cost: SkyByte-Full performance fraction of DRAM-Only",
        values, "performance fraction", "fraction of DRAM-Only throughput",
        subtitle=subtitle,
    )]


def _shape_colocation(data) -> List[Chart]:
    tenants = data["tenants"]
    subtitle = (f"{len(tenants)} tenant(s) sharing one device, "
                f"variant {data.get('variant', '?')}")
    slowdown = _single_bar(
        "Colocation: per-tenant slowdown",
        {name: row["slowdown"] for name, row in tenants.items()},
        "slowdown",
        "colocated / solo time-per-instruction (1.0 = no interference)",
        subtitle=subtitle,
    )
    requests = _stacked(
        "Colocation: per-tenant request breakdown",
        {name: row["requests"] for name, row in tenants.items()},
        "fraction of requests",
        subtitle="request classes served to each tenant while colocated",
    )
    amat = _stacked(
        "Colocation: per-tenant AMAT decomposition",
        {name: {c: row["amat"].get(c, 0.0) for c in AMAT_COMPONENTS}
         for name, row in tenants.items()},
        "AMAT (ns)",
        subtitle="where each tenant's memory time goes while colocated",
        series_order=AMAT_COMPONENTS,
    )
    return [slowdown, requests, amat]


def _shape_qos(data) -> List[Chart]:
    """SLO-violation stack at the largest tenant count, plus the
    worst-tenant p99 scaling curve -- the stacked + line pair of the
    tenant-QoS figure (see docs/QOS.md)."""
    sweep = data["sweep"]
    counts = [str(c) for c in data["tenant_counts"]]
    top = counts[-1] if counts else None
    slo_us = float(data["slo_read_ns"]) / 1000.0
    charts = []
    if top is not None:
        charts.append(_stacked(
            f"QoS: SLO-violation rate by scenario at {top} tenants",
            {isolation: dict(
                sweep[isolation][top]["violation_rate_by_scenario"])
             for isolation in data["isolations"]},
            "violation rate per scenario (stacked)",
            subtitle=f"fraction of requests slower than the "
                     f"{slo_us:g} us read SLO, per tenant scenario",
        ))
    charts.append(_line(
        "QoS: worst-tenant p99 vs tenant count",
        {isolation: [
            (float(c), sweep[isolation][c]["worst_p99_ns"])
            for c in counts]
         for isolation in data["isolations"]},
        "tenants", "worst per-tenant p99 off-chip latency (ns)",
        log_x=True,
        subtitle=f"variant {data.get('variant', '?')}; "
                 "lower and flatter is better isolation",
    ))
    return charts


def _shape_flash_sensitivity(data) -> List[Chart]:
    """Mean flash read latency per device-model policy, plus the
    execution-time slowdown each policy costs against the flat model
    (see docs/DEVICE_MODEL.md)."""
    rows = data["rows"]
    models = list(data["models"])
    latency = _bar(
        "Device model: mean flash read latency",
        {wl: {m: rows[wl][m]["mean_flash_read_ns"] / 1000.0 for m in models}
         for wl in data["workloads"]},
        "mean flash read latency (us)",
        subtitle=f"variant {data.get('variant', '?')}; flat vs deep "
                 "scheduler policies",
        series_order=models,
    )
    slowdown = _bar(
        "Device model: execution-time slowdown vs flat",
        {wl: {m: rows[wl][m]["slowdown_vs_flat"] for m in models}
         for wl in data["workloads"]},
        "execution time / flat execution time",
        subtitle="physical die/plane routing only adds constraints, so "
                 ">= 1.0 is expected",
        series_order=models,
    )
    return [latency, slowdown]


def _shape_prefetch(data) -> List[Chart]:
    return [_single_bar(
        "Ablation: baseline sequential prefetch gain",
        {wl: row["prefetch_gain"] for wl, row in data.items()},
        "prefetch gain", "throughput ratio (with / without prefetch)",
    )]


def _shape_promotion(data) -> List[Chart]:
    return [_line(
        "Ablation: promotion hotness threshold",
        {"throughput": [(float(t), data[t]["ipns"])
                        for t in _fsorted(data)],
         },
        "promotion threshold (touches)", "instructions / ns", log_x=True,
    )]


def _shape_persistence(data) -> List[Chart]:
    # Interval 0 means "never flush"; plot it at the right edge.
    intervals = _fsorted(data)
    finite = [t for t in intervals if float(t) > 0]
    edge = 2 * max((float(t) for t in finite), default=1.0)

    def x_of(t: str) -> float:
        return float(t) if float(t) > 0 else edge

    return [_line(
        "Ablation: baseline dirty-flush interval",
        {"throughput (ipns)": [(x_of(t), data[t]["ipns"])
                               for t in intervals]},
        "flush interval (us; right edge = never)", "instructions / ns",
    ), _line(
        "Ablation: flush interval vs flash write traffic",
        {"flash writes / Mi instr": [(x_of(t), data[t]["flash_writes_per_Mi"])
                                     for t in intervals]},
        "flush interval (us; right edge = never)",
        "flash page writes per Mi instructions",
    )]


def _shape_channel_occupancy(data) -> List[Chart]:
    """Per-channel busy fraction over sim-time (timeline-derived), with
    GC campaign occupancy overlaid as its own series."""
    xs = [float(x) for x in data["window_ms"]]
    channels = data["channels"]
    # The palette has 8 hues; GC takes one slot, channels the rest.
    shown = list(channels)[:7]
    series = {
        f"ch {ch}": list(zip(xs, (float(v) for v in channels[ch])))
        for ch in shown
    }
    if any(float(v) > 0 for v in data.get("gc", [])):
        series["GC"] = list(zip(xs, (float(v) for v in data["gc"])))
    dropped = len(channels) - len(shown)
    subtitle = (
        f"{data.get('workload', '?')} / {data.get('variant', '?')}, deep "
        f"device model; busy command-time per window (>1 = die overlap)"
    )
    if dropped > 0:
        subtitle += f"; {dropped} channel(s) omitted for palette"
    return [_line(
        "Channel occupancy over sim-time (from the timeline trace)",
        series,
        "sim-time (ms)", "busy fraction per window",
        subtitle=subtitle,
    )]


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_ALL_WORKLOADS = "all seven Table I workloads"
_REP_FOUR = "bc, bfs-dense, srad, tpcc"

SPECS: Dict[str, ChartSpec] = {
    spec.figure: spec
    for spec in (
        ChartSpec("fig2", "Base-CSSD slowdown over DRAM-Only", "SS II-C",
                  "bar", _ALL_WORKLOADS, "DRAM-Only, Base-CSSD",
                  "End-to-end slowdown of a naive CXL-SSD vs DRAM "
                  "(paper: 1.5x-31.4x).", _shape_fig2),
        ChartSpec("fig3", "Off-chip latency distribution", "SS II-C",
                  "line", _REP_FOUR, "DRAM-Only, Base-CSSD",
                  "Latency CDFs showing the bimodal fast/flash split "
                  "(one chart per workload, log-x).", _shape_fig3),
        ChartSpec("fig4", "Memory-boundedness", "SS II-C", "bar",
                  _ALL_WORKLOADS, "DRAM-Only, Base-CSSD",
                  "Fraction of cycles bounded by memory on DRAM vs "
                  "CXL-SSD.", _shape_fig4),
        ChartSpec("fig5", "Read cacheline locality", "SS II-C", "line",
                  "bc, dlrm, radix, ycsb", "footprint:cache 1:2..1:128",
                  "CDF of lines touched per page read from flash "
                  "(one chart per workload).",
                  _shape_locality("Fig. 5", "touched")),
        ChartSpec("fig6", "Write cacheline locality", "SS II-C", "line",
                  "bc, dlrm, radix, ycsb", "footprint:cache 1:2..1:128",
                  "CDF of dirty lines per page flushed to flash "
                  "(one chart per workload).",
                  _shape_locality("Fig. 6", "dirtied")),
        ChartSpec("fig9", "Context-switch threshold sweep", "SS III-A",
                  "line", _REP_FOUR, "SkyByte-Full, thresholds 2..80 us",
                  "Normalized execution time vs the Algorithm 1 trigger "
                  "threshold (paper: 2 us is best).", _shape_fig9),
        ChartSpec("fig10", "Scheduling policies", "SS III-A", "bar",
                  "bc, radix, srad, tpcc", "SkyByte-Full; RR/Random/CFS",
                  "Execution time under the three OS scheduling policies "
                  "(paper: near-identical).", _shape_fig10),
        ChartSpec("fig14", "Overall performance", "SS VI-B", "bar",
                  _ALL_WORKLOADS, "the eight Fig. 14 designs",
                  "Normalized execution time of every design vs Base-CSSD "
                  "(paper: SkyByte-Full 6.11x mean speedup).", _shape_fig14),
        ChartSpec("fig15", "Thread scaling", "SS VI-C", "line",
                  _ALL_WORKLOADS, "SkyByte-Full at 8..48 threads",
                  "Throughput and SSD bandwidth vs thread count, "
                  "normalized to SkyByte-WP at 8 threads.", _shape_fig15),
        ChartSpec("fig16", "Request breakdown", "SS VI-C", "stacked",
                  _ALL_WORKLOADS, "SkyByte-Full",
                  "Fractions of H-R/W, S-R-H, S-R-M and S-W requests, "
                  "stacked per workload.", _shape_fig16),
        ChartSpec("fig17", "AMAT decomposition", "SS VI-C", "stacked",
                  _ALL_WORKLOADS, "six designs Base-CSSD..DRAM-Only",
                  "Average memory access time stacked into its "
                  "host-DRAM/protocol/indexing/SSD-DRAM/flash components "
                  "(one chart per workload).", _shape_fig17),
        ChartSpec("fig18", "Flash write traffic", "SS VI-D", "bar",
                  _ALL_WORKLOADS, "the Fig. 14 designs except DRAM-Only",
                  "Flash writes per instruction normalized to Base-CSSD.",
                  _shape_fig18),
        ChartSpec("fig19", "Write-log size: performance", "SS VI-E",
                  "line", _ALL_WORKLOADS, "SkyByte-Full, log 16..256 KiB",
                  "Execution time vs log size at fixed total SSD DRAM.",
                  _shape_fig19),
        ChartSpec("fig20", "Write-log size: traffic", "SS VI-E", "line",
                  _ALL_WORKLOADS, "SkyByte-Full, log 16..256 KiB",
                  "Flash write traffic vs log size.", _shape_fig20),
        ChartSpec("fig21", "SSD DRAM size", "SS VI-F", "line",
                  _ALL_WORKLOADS, "Base-CSSD, SkyByte-WP, SkyByte-Full",
                  "Execution time vs SSD DRAM capacity (one chart per "
                  "workload).", _shape_fig21),
        ChartSpec("fig22", "Flash technology", "SS VI-G", "bar",
                  _ALL_WORKLOADS,
                  "SkyByte-P/WP + SkyByte-Full at 16/24/32 threads",
                  "ULL/ULL2/SLC/MLC flash sensitivity (geomean across "
                  "workloads).", _shape_fig22),
        ChartSpec("fig23", "Migration mechanisms", "SS VI-H", "bar",
                  _ALL_WORKLOADS, "SkyByte-C/CT/CP/WCT, AstriFlash-CXL, Full",
                  "SkyByte's counter-based promotion vs TPP sampling and "
                  "AstriFlash.", _shape_fig23),
        ChartSpec("table3", "Flash read latency", "SS VI-C", "bar",
                  _ALL_WORKLOADS, "SkyByte-WP",
                  "Average flash read latency in us (paper: 3.3-25.7 us).",
                  _shape_table3),
        ChartSpec("colocation", "Multi-tenant colocation", "repro SCENARIOS",
                  "bar", "the configured tenant mix (default: web-tier + "
                  "log-ingest)", "one design variant (default SkyByte-Full)",
                  "Per-tenant slowdown vs solo runs, plus stacked "
                  "request-class and AMAT breakdowns, when N scenario "
                  "tenants share one device (see docs/SCENARIOS.md).",
                  _shape_colocation),
        ChartSpec("qos", "Tenant QoS at scale", "repro QOS",
                  "line", "the library scenario mix (web-tier, "
                  "analytics-scan, graph-walk, log-ingest)",
                  "isolation mechanisms none/wfq/priority/"
                  "log-partition/cache-quota",
                  "Per-tenant p99 and SLO-violation rate vs tenant "
                  "count under each isolation mechanism "
                  "(see docs/QOS.md).", _shape_qos),
        ChartSpec("flash-sensitivity", "Flash device-model sensitivity",
                  "repro DEVICE_MODEL", "bar", "bc, dlrm, ycsb",
                  "SkyByte-Full under flat/deep/deep-no-rp/deep-bounded "
                  "device models",
                  "Mean flash read latency and execution-time slowdown "
                  "when commands route to their physical die/plane "
                  "instead of the earliest-free die "
                  "(see docs/DEVICE_MODEL.md).", _shape_flash_sensitivity),
        ChartSpec("cost", "Cost-effectiveness", "SS VI-B", "bar",
                  _ALL_WORKLOADS, "DRAM-Only vs SkyByte-Full",
                  "Performance fraction and $-ratio arithmetic "
                  "(paper: 11.8x cost-effectiveness).", _shape_cost),
        ChartSpec("prefetch-ablation", "Prefetch ablation", "repro DESIGN",
                  "bar", "srad, bc", "Base-CSSD +/- next-page prefetch",
                  "This reproduction's baseline prefetcher ablation.",
                  _shape_prefetch),
        ChartSpec("promotion-threshold", "Promotion threshold",
                  "repro DESIGN", "line", "ycsb",
                  "SkyByte-P, thresholds 8..256",
                  "Hotness threshold sweep of the SS III-C promotion "
                  "counters.", _shape_promotion),
        ChartSpec("persistence-interval", "Persistence interval",
                  "repro DESIGN", "line", "tpcc",
                  "Base-CSSD, flush interval 50 us..never",
                  "The baseline's dirty-flush durability interval.",
                  _shape_persistence),
        ChartSpec("channel-occupancy", "Flash channel occupancy",
                  "repro OBSERVABILITY", "line", "ycsb",
                  "SkyByte-Full, deep device model, timeline tracing",
                  "Per-channel flash busy fraction over sim-time windows, "
                  "derived from the Perfetto timeline trace; GC campaign "
                  "occupancy overlaid (see docs/OBSERVABILITY.md).",
                  _shape_channel_occupancy),
    )
}


def shape_figure(figure: str, data: object) -> List[Chart]:
    """Render-ready charts for ``figure``'s driver payload.

    ``data`` may be the driver's live return value or the parsed JSON
    artifact -- both shapes produce identical charts.
    """
    spec = SPECS.get(figure)
    if spec is None:
        raise KeyError(f"no chart spec registered for figure {figure!r}")
    return spec.shape(_norm(data))
