"""Dependency-free SVG chart renderer (grouped bars and lines).

CI and headless hosts must be able to render every paper figure, so
this module draws charts with nothing but string formatting -- no
matplotlib, no numpy.  Output is **deterministic**: the same
:class:`Chart` always yields byte-identical SVG (coordinates are
formatted with fixed precision, ticks are computed arithmetically, and
no timestamps or random ids are emitted), which lets the test suite pin
golden snapshots exactly like the simulator's golden fidelity pins.

Three mark types cover the paper's evaluation:

* ``bar`` -- grouped vertical bars (categories on x, one bar per
  series), rounded at the data end and anchored to the zero baseline;
* ``stacked`` -- stacked vertical bars (one column per category, series
  segments stacked bottom-up in palette order) for component
  decompositions: the Fig. 16 request-class and Fig. 17 AMAT breakdowns
  and the colocation per-tenant figures.  Values must be non-negative;
* ``line`` -- polylines over numeric x (optionally log-scaled, for the
  latency CDFs), with point markers when the series is sparse.

Colors follow a fixed categorical order (never cycled); a chart that
would need more than :data:`MAX_SERIES` series must be split into small
multiples by its spec instead (see :mod:`repro.figures.spec`).  Single
series charts carry no legend -- the title names the series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Fixed categorical hue order (validated colorblind-safe sequence for
#: light surfaces).  Slot i always means series i -- never recycle.
PALETTE = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

#: Hard cap on series per chart; specs must facet beyond this.
MAX_SERIES = len(PALETTE)

SURFACE = "#fcfcfb"
INK = "#0b0b0b"
INK_MUTED = "#52514e"
GRID = "#e9e8e4"
AXIS = "#b5b4ae"

FONT = "system-ui, -apple-system, 'Segoe UI', sans-serif"

WIDTH = 640
HEIGHT = 360
MARGIN_LEFT = 58
MARGIN_RIGHT = 18
MARGIN_TOP = 30
MARGIN_BOTTOM = 48
LEGEND_ROW_H = 16


@dataclass(frozen=True)
class Series:
    """One plotted series.

    Bar charts use ``values`` (aligned with the chart's ``categories``,
    ``None`` for a missing cell); line charts use ``points`` as (x, y)
    pairs.
    """

    label: str
    values: Tuple[Optional[float], ...] = ()
    points: Tuple[Tuple[float, float], ...] = ()


@dataclass(frozen=True)
class Chart:
    """A renderable chart: marks plus every label the reader needs."""

    title: str
    kind: str  # "bar" | "stacked" | "line"
    series: Tuple[Series, ...]
    categories: Tuple[str, ...] = ()  # bar/stacked charts only
    x_label: str = ""
    y_label: str = ""
    log_x: bool = False
    subtitle: str = ""

    def validate(self) -> None:
        if self.kind not in ("bar", "stacked", "line"):
            raise ValueError(f"unknown chart kind {self.kind!r}")
        if len(self.series) > MAX_SERIES:
            raise ValueError(
                f"{len(self.series)} series exceeds the {MAX_SERIES}-color "
                f"palette; split {self.title!r} into small multiples"
            )
        if self.kind in ("bar", "stacked"):
            for s in self.series:
                if len(s.values) != len(self.categories):
                    raise ValueError(
                        f"series {s.label!r} has {len(s.values)} values for "
                        f"{len(self.categories)} categories"
                    )
        if self.kind == "stacked":
            for s in self.series:
                if any(v is not None and v < 0 for v in s.values):
                    raise ValueError(
                        f"stacked series {s.label!r} has negative values; "
                        f"segments cannot stack below the baseline"
                    )


def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (determinism)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _fmt_tick(value: float) -> str:
    """Human tick label: trims float noise, keeps magnitude readable."""
    if value == 0:
        return "0"
    if abs(value) >= 10000 or abs(value) < 0.001:
        return f"{value:.0e}".replace("e+0", "e").replace("e-0", "e-")
    text = f"{value:.4g}"
    return text


def _escape(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _nice_step(rough: float) -> float:
    """The nearest {1,2,5}x10^k at or above ``rough``."""
    if rough <= 0:
        return 1.0
    power = math.floor(math.log10(rough))
    base = rough / (10 ** power)
    for mult in (1.0, 2.0, 5.0):
        if base <= mult:
            return mult * (10 ** power)
    return 10.0 ** (power + 1)


def _ticks(lo: float, hi: float, max_ticks: int = 6) -> List[float]:
    """Nice linear ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    step = _nice_step((hi - lo) / max(1, max_ticks - 1))
    first = math.floor(lo / step) * step
    ticks = []
    value = first
    # Bounded loop: step is a fixed fraction of the range.
    while value <= hi + step * 0.5 and len(ticks) < max_ticks + 3:
        if value >= lo - step * 0.5:
            ticks.append(round(value, 12))
        value += step
    return ticks


def _log_ticks(lo: float, hi: float) -> List[float]:
    """Decade ticks covering the positive range [lo, hi]."""
    lo = max(lo, 1e-12)
    hi = max(hi, lo * 10)
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0 ** k for k in range(first, last + 1)]


def _bar_path(x: float, y: float, w: float, h: float, r: float) -> str:
    """A vertical bar anchored at the baseline, rounded at the data end."""
    r = max(0.0, min(r, w / 2.0, h))
    return (
        f"M{_fmt(x)},{_fmt(y + h)} "
        f"V{_fmt(y + r)} Q{_fmt(x)},{_fmt(y)} {_fmt(x + r)},{_fmt(y)} "
        f"H{_fmt(x + w - r)} Q{_fmt(x + w)},{_fmt(y)} {_fmt(x + w)},{_fmt(y + r)} "
        f"V{_fmt(y + h)} Z"
    )


class _Canvas:
    """Accumulates SVG elements; knows the plot rectangle."""

    def __init__(self, chart: Chart) -> None:
        self.chart = chart
        legend_rows = self._legend_rows()
        self.top = MARGIN_TOP + (14 if chart.subtitle else 0) \
            + legend_rows * LEGEND_ROW_H
        self.left = MARGIN_LEFT
        self.right = WIDTH - MARGIN_RIGHT
        self.bottom = HEIGHT - MARGIN_BOTTOM
        self.parts: List[str] = []

    def _legend_rows(self) -> int:
        if len(self.chart.series) < 2:
            return 0
        per_row = self._legend_layout()[1]
        return math.ceil(len(self.chart.series) / per_row)

    def _legend_layout(self) -> Tuple[List[int], int]:
        """(item widths, items per row) under an approximate font metric."""
        widths = [18 + 7 * len(s.label) + 14 for s in self.chart.series]
        avail = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
        widest = max(widths) if widths else 1
        per_row = max(1, avail // widest)
        return widths, per_row

    # -- element emitters --------------------------------------------------

    def add(self, element: str) -> None:
        self.parts.append(element)

    def text(self, x: float, y: float, content: str, size: int = 11,
             fill: str = INK_MUTED, anchor: str = "start",
             weight: str = "normal", rotate: Optional[float] = None) -> None:
        transform = ""
        if rotate is not None:
            transform = f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"'
        weight_attr = f' font-weight="{weight}"' if weight != "normal" else ""
        self.add(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size}"'
            f' fill="{fill}" text-anchor="{anchor}"{weight_attr}{transform}>'
            f"{_escape(content)}</text>"
        )

    def chrome(self) -> None:
        """Title, subtitle, legend."""
        chart = self.chart
        self.text(MARGIN_LEFT, 18, chart.title, size=13, fill=INK,
                  weight="600")
        y = 18
        if chart.subtitle:
            y += 14
            self.text(MARGIN_LEFT, y, chart.subtitle, size=10)
        if len(chart.series) >= 2:
            widths, per_row = self._legend_layout()
            x = float(MARGIN_LEFT)
            row_y = y + 14
            col = 0
            for i, series in enumerate(chart.series):
                if col == per_row:
                    col = 0
                    x = float(MARGIN_LEFT)
                    row_y += LEGEND_ROW_H
                color = PALETTE[i]
                self.add(
                    f'<rect x="{_fmt(x)}" y="{_fmt(row_y - 8)}" width="10"'
                    f' height="10" rx="2" fill="{color}"/>'
                )
                self.text(x + 14, row_y, series.label, size=10, fill=INK)
                x += widths[i]
                col += 1

    def y_axis(self, lo: float, hi: float) -> Tuple[float, float]:
        """Draw grid + y tick labels; returns the (lo, hi) actually used."""
        ticks = _ticks(lo, hi)
        lo = min(lo, ticks[0])
        hi = max(hi, ticks[-1])
        span = max(hi - lo, 1e-12)
        for tick in ticks:
            py = self.bottom - (tick - lo) / span * (self.bottom - self.top)
            self.add(
                f'<line x1="{_fmt(self.left)}" y1="{_fmt(py)}"'
                f' x2="{_fmt(self.right)}" y2="{_fmt(py)}"'
                f' stroke="{GRID}" stroke-width="1"/>'
            )
            self.text(self.left - 6, py + 3, _fmt_tick(tick), size=10,
                      anchor="end")
        if self.chart.y_label:
            self.text(14, (self.top + self.bottom) / 2, self.chart.y_label,
                      size=11, anchor="middle", rotate=-90.0)
        return lo, hi

    def x_axis_line(self) -> None:
        self.add(
            f'<line x1="{_fmt(self.left)}" y1="{_fmt(self.bottom)}"'
            f' x2="{_fmt(self.right)}" y2="{_fmt(self.bottom)}"'
            f' stroke="{AXIS}" stroke-width="1"/>'
        )

    def x_title(self) -> None:
        if self.chart.x_label:
            self.text((self.left + self.right) / 2, HEIGHT - 8,
                      self.chart.x_label, size=11, anchor="middle")

    def render(self) -> str:
        body = "\n".join(self.parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}"'
            f' height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}"'
            f' font-family="{FONT}" role="img"'
            f' aria-label="{_escape(self.chart.title)}">\n'
            f'<rect width="{WIDTH}" height="{HEIGHT}" fill="{SURFACE}"/>\n'
            f"{body}\n</svg>\n"
        )


def _render_bars(chart: Chart) -> str:
    canvas = _Canvas(chart)
    canvas.chrome()
    values = [v for s in chart.series for v in s.values if v is not None]
    hi = max(values, default=1.0)
    lo = min(0.0, min(values, default=0.0))
    lo, hi = canvas.y_axis(lo, hi * 1.05 if hi > 0 else 1.0)
    span = max(hi - lo, 1e-12)
    n_cat = max(1, len(chart.categories))
    slot = (canvas.right - canvas.left) / n_cat
    group_w = slot * 0.72
    n_series = max(1, len(chart.series))
    bar_w = group_w / n_series
    gap = 2.0 if bar_w > 6 else 0.0
    zero_y = canvas.bottom - (0.0 - lo) / span * (canvas.bottom - canvas.top)
    for ci, category in enumerate(chart.categories):
        gx = canvas.left + slot * ci + (slot - group_w) / 2
        for si, series in enumerate(chart.series):
            value = series.values[ci]
            if value is None:
                continue
            top_v = max(value, 0.0)
            py = canvas.bottom - (top_v - lo) / span * (canvas.bottom - canvas.top)
            height = abs(zero_y - py)
            if value < 0:
                py = zero_y
                height = (
                    (0.0 - value) / span * (canvas.bottom - canvas.top)
                )
            x = gx + si * bar_w + gap / 2
            canvas.add(
                f'<path d="{_bar_path(x, py, bar_w - gap, height, 3.0)}"'
                f' fill="{PALETTE[si]}"/>'
            )
        _category_label(canvas, chart, gx, group_w, category)
    canvas.x_axis_line()
    canvas.x_title()
    return canvas.render()


def _category_label(canvas: _Canvas, chart: Chart, gx: float, width: float,
                    category: str) -> None:
    """One x-axis category label, rotated when the row gets crowded."""
    rotate = None
    anchor = "middle"
    if len(chart.categories) > 6 or max(len(c) for c in chart.categories) > 8:
        rotate = -30.0
        anchor = "end"
    canvas.text(gx + width / 2, canvas.bottom + 14, category, size=10,
                anchor=anchor, rotate=rotate)


def _render_stacked(chart: Chart) -> str:
    """Stacked bars: one column per category, segments bottom-up in
    series order (series i keeps palette slot i, exactly as in the
    legend)."""
    canvas = _Canvas(chart)
    canvas.chrome()
    totals = [
        sum(s.values[ci] or 0.0 for s in chart.series)
        for ci in range(len(chart.categories))
    ]
    hi = max(totals, default=1.0)
    lo, hi = canvas.y_axis(0.0, hi * 1.05 if hi > 0 else 1.0)
    span = max(hi - lo, 1e-12)
    n_cat = max(1, len(chart.categories))
    slot = (canvas.right - canvas.left) / n_cat
    bar_w = slot * 0.6
    scale = (canvas.bottom - canvas.top) / span
    for ci, category in enumerate(chart.categories):
        x = canvas.left + slot * ci + (slot - bar_w) / 2
        base = canvas.bottom - (0.0 - lo) * scale
        for si, series in enumerate(chart.series):
            value = series.values[ci]
            if not value:  # None and zero segments draw nothing
                continue
            height = value * scale
            top = base - height
            canvas.add(
                f'<rect x="{_fmt(x)}" y="{_fmt(top)}" width="{_fmt(bar_w)}"'
                f' height="{_fmt(height)}" fill="{PALETTE[si]}"/>'
            )
            base = top
        _category_label(canvas, chart, x, bar_w, category)
    canvas.x_axis_line()
    canvas.x_title()
    return canvas.render()


def _x_positions(chart: Chart, canvas: _Canvas) -> Tuple[float, float]:
    xs = [x for s in chart.series for x, _y in s.points]
    lo, hi = (min(xs), max(xs)) if xs else (0.0, 1.0)
    if chart.log_x:
        lo = max(lo, 1e-12)
        hi = max(hi, lo * 10)
    elif hi <= lo:
        hi = lo + 1.0
    return lo, hi


def _render_lines(chart: Chart) -> str:
    canvas = _Canvas(chart)
    canvas.chrome()
    ys = [y for s in chart.series for _x, y in s.points]
    y_lo, y_hi = canvas.y_axis(min(0.0, min(ys, default=0.0)),
                               max(ys, default=1.0) * 1.05 or 1.0)
    y_span = max(y_hi - y_lo, 1e-12)
    x_lo, x_hi = _x_positions(chart, canvas)

    def px(x: float) -> float:
        if chart.log_x:
            frac = (math.log10(max(x, 1e-12)) - math.log10(x_lo)) / max(
                math.log10(x_hi) - math.log10(x_lo), 1e-12
            )
        else:
            frac = (x - x_lo) / max(x_hi - x_lo, 1e-12)
        return canvas.left + frac * (canvas.right - canvas.left)

    def py(y: float) -> float:
        return canvas.bottom - (y - y_lo) / y_span * (canvas.bottom - canvas.top)

    # x ticks: the data's own x values when few, else nice/log ticks.
    distinct = sorted({x for s in chart.series for x, _y in s.points})
    if 0 < len(distinct) <= 8:
        x_ticks = distinct
    elif chart.log_x:
        x_ticks = _log_ticks(x_lo, x_hi)
    else:
        x_ticks = _ticks(x_lo, x_hi)
    for tick in x_ticks:
        if tick < x_lo - 1e-9 or tick > x_hi * (1.0 + 1e-9) + 1e-9:
            continue
        tx = px(tick)
        canvas.add(
            f'<line x1="{_fmt(tx)}" y1="{_fmt(canvas.bottom)}"'
            f' x2="{_fmt(tx)}" y2="{_fmt(canvas.bottom + 4)}"'
            f' stroke="{AXIS}" stroke-width="1"/>'
        )
        canvas.text(tx, canvas.bottom + 16, _fmt_tick(tick), size=10,
                    anchor="middle")
    for si, series in enumerate(chart.series):
        if not series.points:
            continue
        pts = sorted(series.points)
        coords = " ".join(f"{_fmt(px(x))},{_fmt(py(y))}" for x, y in pts)
        canvas.add(
            f'<polyline points="{coords}" fill="none" stroke="{PALETTE[si]}"'
            f' stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        )
        if len(pts) <= 12:
            for x, y in pts:
                canvas.add(
                    f'<circle cx="{_fmt(px(x))}" cy="{_fmt(py(y))}" r="4"'
                    f' fill="{PALETTE[si]}" stroke="{SURFACE}"'
                    f' stroke-width="2"/>'
                )
    canvas.x_axis_line()
    canvas.x_title()
    return canvas.render()


def render_chart(chart: Chart) -> str:
    """Render one :class:`Chart` to a standalone SVG document string."""
    chart.validate()
    if chart.kind == "bar":
        return _render_bars(chart)
    if chart.kind == "stacked":
        return _render_stacked(chart)
    return _render_lines(chart)
