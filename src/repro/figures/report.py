"""Assemble rendered figures + fidelity table into REPORT.md/REPORT.html.

:class:`ReportBuilder` is the consumer of the orchestrator's per-cell
progress callback: ``python -m repro report`` wires
:meth:`ReportBuilder.cell_completed` into every figure driver's
``progress=`` argument, so the report on disk is **rewritten after
every finished simulation cell** -- a long sweep can be watched by
refreshing ``REPORT.md`` (the status section counts cells and names
the figure in flight, finished figures are already rendered, pending
ones say so).  Both report files are written atomically (tmp + rename),
so a reader never sees a torn document, no matter which backend is
executing cells.

Outputs, all under one directory:

* ``REPORT.md`` -- status, fidelity table, one section per figure
  referencing its ``<figure>.svg`` files;
* ``REPORT.html`` -- the same content as a standalone page with every
  SVG inlined (the single-file artifact CI uploads);
* ``<figure>.svg`` (or ``<figure>_N.svg`` for faceted figures) -- the
  charts themselves, written as each figure finishes;
* ``BENCH_fidelity.json`` -- the fidelity table in machine-readable
  form: per figure a score in [0, 1] (pass=1, warn=0.5, off=0,
  averaged over its expectations), its wall time, and the raw rows,
  plus overall aggregates -- so CI can diff fidelity across commits
  instead of eyeballing the rendered table.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.figures.fidelity import FidelityRow, evaluate, expectations_for
from repro.figures.spec import SPECS, shape_figure
from repro.figures.svg import render_chart
from repro.figures.trends import render_markdown as render_trend_markdown

_STATE_LABEL = {
    "pending": "pending",
    "running": "running ...",
    "done": "done",
    "failed": "FAILED",
}


def _fmt_num(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.4g}"


def _fmt_delta(delta: Optional[float]) -> str:
    return "-" if delta is None else f"{delta:+.1%}"


def _escape_html(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _atomic_write(path: Path, content: str) -> None:
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(content, encoding="utf-8")
    os.replace(tmp, path)


class ReportBuilder:
    """Incrementally materialise the fidelity report for a figure list."""

    def __init__(self, out_dir, figures: Sequence[str],
                 title: str = "SkyByte reproduction report") -> None:
        unknown = [f for f in figures if f not in SPECS]
        if unknown:
            raise KeyError(f"no chart spec for figure(s): {', '.join(unknown)}")
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.title = title
        self.figures = list(figures)
        self.state: Dict[str, str] = {f: "pending" for f in self.figures}
        self.errors: Dict[str, str] = {}
        self.svg_files: Dict[str, List[Tuple[str, str]]] = {}
        self.fidelity: Dict[str, List[FidelityRow]] = {}
        self.cells_run = 0
        self.cells_cached = 0
        self._current: Optional[str] = None
        self.figure_wall_s: Dict[str, float] = {}
        self._figure_t0: Dict[str, float] = {}
        #: Historic trend rows (benchmarks/trends.ndjson), set by the CLI
        #: once the run completes; rendered as a sparkline table.
        self.trend_rows: List[Dict[str, object]] = []

    # -- lifecycle hooks ---------------------------------------------------

    def figure_started(self, figure: str) -> None:
        self.state[figure] = "running"
        self._current = figure
        self._figure_t0[figure] = time.monotonic()
        self.render()

    def _record_wall(self, figure: str) -> None:
        started = self._figure_t0.pop(figure, None)
        if started is not None:
            self.figure_wall_s[figure] = time.monotonic() - started

    def figure_finished(self, figure: str, data: object) -> None:
        self._record_wall(figure)
        charts = shape_figure(figure, data)
        files: List[Tuple[str, str]] = []
        for i, chart in enumerate(charts):
            name = (f"{figure}.svg" if len(charts) == 1
                    else f"{figure}_{i + 1}.svg")
            svg = render_chart(chart)
            _atomic_write(self.out_dir / name, svg)
            files.append((name, svg))
        self.svg_files[figure] = files
        self.fidelity[figure] = evaluate(figure, data)
        self.state[figure] = "done"
        if self._current == figure:
            self._current = None
        self.render()

    def figure_failed(self, figure: str, error: str) -> None:
        self._record_wall(figure)
        self.state[figure] = "failed"
        self.errors[figure] = error
        if self._current == figure:
            self._current = None
        self.render()

    def cell_completed(self, job, source: str) -> None:
        """``run_sweep`` progress hook: one finished simulation cell."""
        if source == "cache":
            self.cells_cached += 1
        else:
            self.cells_run += 1
        self.render()

    # -- document assembly -------------------------------------------------

    @property
    def complete(self) -> bool:
        return all(s in ("done", "failed") for s in self.state.values())

    def status_line(self) -> str:
        done = sum(1 for s in self.state.values() if s == "done")
        failed = sum(1 for s in self.state.values() if s == "failed")
        total = len(self.figures)
        cells = (f"{self.cells_run + self.cells_cached} cell(s) finished "
                 f"({self.cells_cached} from cache)")
        if self.complete:
            tail = f", {failed} failed" if failed else ""
            return f"Complete: {done}/{total} figure(s) rendered{tail}; {cells}."
        current = f", now running **{self._current}**" if self._current else ""
        return (f"In progress: {done}/{total} figure(s) rendered"
                f"{current}; {cells}. This file is rewritten after every "
                f"cell -- refresh to watch.")

    def _fidelity_rows(self) -> List[FidelityRow]:
        rows: List[FidelityRow] = []
        for figure in self.figures:
            if figure in self.fidelity:
                rows.extend(self.fidelity[figure])
            else:
                rows.extend(
                    FidelityRow(exp.figure, exp.metric, exp.paper, None,
                                None, _STATE_LABEL[self.state[figure]],
                                exp.note)
                    for exp in expectations_for(figure)
                )
        return rows

    def markdown(self) -> str:
        lines = [f"# {self.title}", "", self.status_line(), ""]
        rows = self._fidelity_rows()
        lines += ["## Fidelity vs. the paper", ""]
        if rows:
            lines += [
                "Relative delta `(reproduced - paper) / |paper|`; `pass` "
                "within 25%, `warn` within 150% (expected at this scale), "
                "`off` beyond, `n/a` not measurable from this run. See "
                "`docs/FIGURES.md`.",
                "",
                "| figure | metric | paper | reproduced | delta | status |",
                "| --- | --- | ---: | ---: | ---: | --- |",
            ]
            lines += [
                f"| {r.figure} | {r.metric} | {_fmt_num(r.paper)} "
                f"| {_fmt_num(r.reproduced)} | {_fmt_delta(r.delta)} "
                f"| {r.status} |"
                for r in rows
            ]
        else:
            lines.append("No paper expectations registered for the "
                         "selected figures.")
        if self.trend_rows:
            lines += ["", "## Trends", ""]
            lines += render_trend_markdown(self.trend_rows)
        lines += ["", "## Figures", ""]
        for figure in self.figures:
            spec = SPECS[figure]
            state = self.state[figure]
            lines.append(f"### {figure} -- {spec.title} ({spec.section})")
            lines += ["", spec.description, ""]
            if state == "done":
                lines += [f"![{figure}]({name})" for name, _svg in
                          self.svg_files[figure]]
            elif state == "failed":
                lines += ["```", self.errors[figure].strip(), "```"]
            else:
                lines.append(f"*{_STATE_LABEL[state]}*")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def html(self) -> str:
        rows = self._fidelity_rows()
        parts = [
            "<!DOCTYPE html>",
            '<html lang="en"><head><meta charset="utf-8">',
            f"<title>{_escape_html(self.title)}</title>",
            "<style>",
            "body{font-family:system-ui,sans-serif;margin:2rem auto;"
            "max-width:72rem;padding:0 1rem;color:#0b0b0b;"
            "background:#fcfcfb}",
            "table{border-collapse:collapse;font-size:0.85rem}",
            "th,td{border:1px solid #d9d8d3;padding:0.3rem 0.6rem;"
            "text-align:left}",
            "td.num{text-align:right;font-variant-numeric:tabular-nums}",
            ".pass{color:#006100}.warn{color:#8a5a00}.off{color:#a11a1a}",
            "figure{margin:1rem 0}",
            "pre{background:#f3f2ee;padding:0.6rem;overflow-x:auto}",
            "</style></head><body>",
            f"<h1>{_escape_html(self.title)}</h1>",
            f"<p>{_escape_html(self.status_line()).replace('**', '')}</p>",
            "<h2>Fidelity vs. the paper</h2>",
        ]
        if rows:
            parts.append(
                "<table><thead><tr><th>figure</th><th>metric</th>"
                "<th>paper</th><th>reproduced</th><th>delta</th>"
                "<th>status</th></tr></thead><tbody>"
            )
            for r in rows:
                css = r.status if r.status in ("pass", "warn", "off") else ""
                parts.append(
                    f"<tr><td>{_escape_html(r.figure)}</td>"
                    f"<td>{_escape_html(r.metric)}</td>"
                    f'<td class="num">{_fmt_num(r.paper)}</td>'
                    f'<td class="num">{_fmt_num(r.reproduced)}</td>'
                    f'<td class="num">{_fmt_delta(r.delta)}</td>'
                    f'<td class="{css}">{_escape_html(r.status)}</td></tr>'
                )
            parts.append("</tbody></table>")
        else:
            parts.append("<p>No paper expectations registered for the "
                         "selected figures.</p>")
        if self.trend_rows:
            parts.append("<h2>Trends</h2>")
            parts.append("<pre>" + _escape_html(
                "\n".join(render_trend_markdown(self.trend_rows))
            ) + "</pre>")
        parts.append("<h2>Figures</h2>")
        for figure in self.figures:
            spec = SPECS[figure]
            state = self.state[figure]
            parts.append(
                f"<h3>{_escape_html(figure)} &mdash; "
                f"{_escape_html(spec.title)} "
                f"({_escape_html(spec.section)})</h3>"
            )
            parts.append(f"<p>{_escape_html(spec.description)}</p>")
            if state == "done":
                for _name, svg in self.svg_files[figure]:
                    parts.append(f"<figure>{svg}</figure>")
            elif state == "failed":
                parts.append(
                    f"<pre>{_escape_html(self.errors[figure].strip())}</pre>"
                )
            else:
                parts.append(f"<p><em>{_STATE_LABEL[state]}</em></p>")
        parts.append("</body></html>")
        return "\n".join(parts) + "\n"

    # -- machine-readable fidelity benchmark -------------------------------

    _STATUS_SCORE = {"pass": 1.0, "warn": 0.5, "off": 0.0}

    def bench(self) -> Dict[str, object]:
        """The ``BENCH_fidelity.json`` payload: per-figure fidelity score
        (pass=1, warn=0.5, off=0, averaged over scored expectations;
        null when the figure has none or has not finished) and wall
        time, plus overall aggregates -- what CI diffs across commits."""
        figures: Dict[str, object] = {}
        status_counts = {"pass": 0, "warn": 0, "off": 0, "n/a": 0}
        scores: List[float] = []
        for figure in self.figures:
            rows = self.fidelity.get(figure, [])
            scored = [self._STATUS_SCORE[r.status] for r in rows
                      if r.status in self._STATUS_SCORE]
            for r in rows:
                if r.status in status_counts:
                    status_counts[r.status] += 1
            score = sum(scored) / len(scored) if scored else None
            if score is not None:
                scores.append(score)
            figures[figure] = {
                "state": self.state[figure],
                "score": score,
                "wall_s": self.figure_wall_s.get(figure),
                "expectations": [
                    {"metric": r.metric, "paper": r.paper,
                     "reproduced": r.reproduced, "delta": r.delta,
                     "status": r.status}
                    for r in rows
                ],
            }
        return {
            "figures": figures,
            "overall": {
                "score": sum(scores) / len(scores) if scores else None,
                "wall_s": sum(self.figure_wall_s.values()),
                "cells_run": self.cells_run,
                "cells_cached": self.cells_cached,
                "statuses": status_counts,
                "complete": self.complete,
            },
        }

    def render(self) -> None:
        """Rewrite REPORT.md, REPORT.html and BENCH_fidelity.json
        atomically."""
        _atomic_write(self.out_dir / "REPORT.md", self.markdown())
        _atomic_write(self.out_dir / "REPORT.html", self.html())
        _atomic_write(self.out_dir / "BENCH_fidelity.json",
                      json.dumps(self.bench(), indent=2, sort_keys=True) + "\n")
