"""Per-commit fidelity/speed trend tracking (``benchmarks/trends.ndjson``).

``repro report`` appends one NDJSON row per completed report run, carrying
the headline numbers of ``BENCH_fidelity.json`` and (when present)
``BENCH_speed.json`` plus the current git commit, so the repository
accumulates a queryable history of reproduction quality and simulator
speed.  The report itself renders the recent history as a sparkline table.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional

#: Rows rendered in the report's trend table (the file keeps everything).
TREND_WINDOW = 20

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def current_commit() -> Optional[str]:
    """Short git commit hash, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def trend_row(
    fidelity: Optional[Dict[str, object]],
    speed: Optional[Dict[str, object]],
) -> Dict[str, object]:
    """One NDJSON row from the two bench payloads (either may be None)."""
    row: Dict[str, object] = {
        "ts": round(time.time(), 3),
        "commit": current_commit(),
    }
    if fidelity:
        overall = fidelity.get("overall", {})
        row["fidelity_score"] = overall.get("score")
        row["fidelity_complete"] = overall.get("complete")
        row["cells_run"] = overall.get("cells_run")
        row["cells_cached"] = overall.get("cells_cached")
    if speed:
        overall = speed.get("overall", {})
        row["speedup_geomean"] = overall.get("speedup_geomean")
        row["cells_per_sec"] = overall.get("cells_per_sec")
    return row


def append_trend(
    trends_path: Path,
    fidelity_path: Optional[Path] = None,
    speed_path: Optional[Path] = None,
) -> Optional[Dict[str, object]]:
    """Append a row built from the bench files; returns it (or None if
    neither input exists)."""
    fidelity = _load(fidelity_path)
    speed = _load(speed_path)
    if fidelity is None and speed is None:
        return None
    row = trend_row(fidelity, speed)
    trends_path.parent.mkdir(parents=True, exist_ok=True)
    with open(trends_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def load_trends(trends_path: Path) -> List[Dict[str, object]]:
    """Every well-formed row of the trend file, oldest first."""
    if not trends_path.exists():
        return []
    rows: List[Dict[str, object]] = []
    for line in trends_path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict):
            rows.append(row)
    return rows


def sparkline(values: List[Optional[float]]) -> str:
    """Unicode sparkline; missing values render as spaces."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for v in values:
        if v is None:
            chars.append(" ")
        elif span <= 0:
            chars.append(_SPARK_CHARS[-1])
        else:
            idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
            chars.append(_SPARK_CHARS[idx])
    return "".join(chars)


def render_markdown(rows: List[Dict[str, object]]) -> List[str]:
    """Markdown lines for the report's trend section (empty if no rows)."""
    if not rows:
        return []
    recent = rows[-TREND_WINDOW:]
    fid = [_num(r.get("fidelity_score")) for r in recent]
    spd = [_num(r.get("speedup_geomean")) for r in recent]
    lines = [
        f"Last {len(recent)} report run(s) from `benchmarks/trends.ndjson` "
        f"(oldest left).",
        "",
        "| metric | trend | latest |",
        "| --- | --- | ---: |",
        f"| fidelity score | `{sparkline(fid) or '-'}` "
        f"| {_fmt(fid[-1])} |",
        f"| vector/scalar speedup (geomean) | `{sparkline(spd) or '-'}` "
        f"| {_fmt(spd[-1])} |",
    ]
    return lines


def _num(value: object) -> Optional[float]:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3g}"


def _load(path: Optional[Path]) -> Optional[Dict[str, object]]:
    if path is None or not Path(path).exists():
        return None
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None
