"""Configuration objects for the SkyByte reproduction.

Every number in the paper's Table II (simulator parameters) and Table IV
(NAND flash timing) is encoded here.  Two families of presets are provided:

* :func:`paper_config` -- the exact parameters of Table II.  Too large to
  simulate at cacheline granularity in Python within seconds, but useful as
  the authoritative record of the paper's setup.
* :func:`scaled_config` -- the default for tests/benchmarks.  Every capacity
  is divided by the same factor so all the ratios the mechanisms care about
  (flash:DRAM, footprint:DRAM, host-budget:DRAM, log:cache) are preserved.
  This mirrors the paper's own scaling step (Samsung's 2 TB/16 GB device was
  scaled to 128 GB/512 MB "as it is impractical to simulate a TB-scale SSD
  at cache line granularity").

All times are in **nanoseconds**, all sizes in **bytes** unless the name
says otherwise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict

# ---------------------------------------------------------------------------
# Fundamental units
# ---------------------------------------------------------------------------

CACHELINE_SIZE = 64
PAGE_SIZE = 4096
CACHELINES_PER_PAGE = PAGE_SIZE // CACHELINE_SIZE

US = 1_000.0  # microsecond in ns
MS = 1_000_000.0  # millisecond in ns

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class FlashTiming:
    """NAND flash operation latencies (paper Table IV)."""

    name: str
    read_ns: float
    program_ns: float
    erase_ns: float


#: Table IV of the paper.
FLASH_TIMINGS: Dict[str, FlashTiming] = {
    "ULL": FlashTiming("ULL", 3 * US, 100 * US, 1000 * US),
    "ULL2": FlashTiming("ULL2", 4 * US, 75 * US, 850 * US),
    "SLC": FlashTiming("SLC", 25 * US, 200 * US, 1500 * US),
    "MLC": FlashTiming("MLC", 50 * US, 600 * US, 3000 * US),
}


@dataclass(frozen=True)
class FlashGeometry:
    """Physical organisation of the flash array.

    The paper's device (Table II): 16 channels, 8 chips/channel, 8 dies/chip,
    1 plane/die, 128 blocks/plane, 256 pages/block, 4 KB pages = 128 GB.

    The simulator treats the *channel* as the unit of contention, matching
    the paper's Algorithm 1 which estimates latency from per-channel queue
    occupancy.  Chips/dies/planes scale capacity and intra-channel
    interleaving.
    """

    channels: int = 16
    chips_per_channel: int = 8
    dies_per_chip: int = 8
    planes_per_die: int = 1
    blocks_per_plane: int = 128
    pages_per_block: int = 256
    page_size: int = PAGE_SIZE

    @property
    def planes_per_channel(self) -> int:
        return self.chips_per_channel * self.dies_per_chip * self.planes_per_die

    @property
    def blocks_per_channel(self) -> int:
        return self.planes_per_channel * self.blocks_per_plane

    @property
    def total_blocks(self) -> int:
        return self.channels * self.blocks_per_channel

    @property
    def pages_per_channel(self) -> int:
        return self.blocks_per_channel * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.channels * self.pages_per_channel

    @property
    def total_bytes(self) -> int:
        return self.total_pages * self.page_size


@dataclass(frozen=True)
class SSDConfig:
    """SSD device configuration (Table II, lower half)."""

    geometry: FlashGeometry = field(default_factory=FlashGeometry)
    timing: FlashTiming = FLASH_TIMINGS["ULL"]

    #: Total SSD DRAM dedicated to caching (write log + data cache).
    dram_bytes: int = 512 * MB
    #: Cacheline-granular write log capacity (SkyByte).  64 MB default,
    #: i.e. 1:7 against the 448 MB data cache.
    write_log_bytes: int = 64 * MB
    #: Page-granular data cache associativity.
    cache_ways: int = 16
    #: SSD LPDDR4 DRAM access latency for a cacheline.
    dram_access_ns: float = 95.0
    #: Write-log hash index lookup latency (measured on the FPGA SoC, §V).
    log_index_ns: float = 72.0
    #: Data-cache index lookup latency (measured on the FPGA SoC, §V).
    cache_index_ns: float = 49.0
    #: GC trigger threshold: fraction of pages used before GC starts.
    gc_threshold: float = 0.80
    #: Fraction of a channel's blocks reclaimed per GC campaign.  Small
    #: by design: a campaign should last the "few milliseconds" of §II-C.
    #: (Table II's "# of Blocks to Erase: 19660" is the *cumulative* pool
    #: target of the paper's preconditioning, not a per-campaign count.)
    gc_free_fraction: float = 0.008
    #: Over-provisioning: flash capacity beyond the advertised logical space.
    overprovision: float = 0.25
    #: Base-CSSD sequential next-page prefetch depth (0 disables).
    prefetch_depth: int = 1
    #: Base-CSSD periodic dirty-page persistence interval.  Conventional
    #: CXL-SSD caches keep block-device durability semantics, so dirty
    #: pages are written back after at most this long even while hot
    #: (prior designs flush opportunistically for persistence).  SkyByte
    #: instead holds dirty lines in its battery-backed write log (§IV)
    #: until compaction -- this asymmetry is the "larger coalescing
    #: window" of §III-B.  Set to 0 to disable.
    dirty_flush_interval_ns: float = 100_000.0
    #: Page access count above which a page becomes a migration candidate.
    promotion_threshold: int = 24

    @property
    def data_cache_bytes(self) -> int:
        """DRAM left for the page cache once the write log is carved out."""
        return self.dram_bytes - self.write_log_bytes

    @property
    def data_cache_pages(self) -> int:
        return self.data_cache_bytes // self.geometry.page_size

    @property
    def write_log_entries(self) -> int:
        return self.write_log_bytes // CACHELINE_SIZE

    @property
    def logical_pages(self) -> int:
        """Host-visible logical page count (flash minus over-provisioning)."""
        return int(self.geometry.total_pages / (1.0 + self.overprovision))


@dataclass(frozen=True)
class CXLConfig:
    """CXL.mem link parameters (Table II: PCIe 5.0 x4)."""

    #: One-way protocol latency added to every CXL.mem transaction.
    protocol_ns: float = 40.0
    #: Link bandwidth in bytes/ns (16 GB/s = 16 B/ns).
    bandwidth_bytes_per_ns: float = 16.0

    def transfer_ns(self, nbytes: int) -> float:
        """Serialisation delay for ``nbytes`` on the link."""
        return nbytes / self.bandwidth_bytes_per_ns


@dataclass(frozen=True)
class CPUConfig:
    """Host CPU parameters (Table II, upper half)."""

    cores: int = 8
    freq_ghz: float = 4.0
    rob_entries: int = 256
    #: Peak IPC used by the interval model between off-chip events.
    peak_ipc: float = 3.0
    l1_mshrs: int = 8
    l2_mshrs: int = 128
    l3_mshrs: int = 1024
    #: Host DDR5 load-to-use latency.
    dram_latency_ns: float = 70.0
    #: Aggregate host DRAM bandwidth in bytes/ns (8 channels x 32 GB/s).
    dram_bandwidth_bytes_per_ns: float = 256.0
    #: Maximum total size of promoted pages in host DRAM (Table II: 2 GB).
    host_promote_budget_bytes: int = 2 * GB

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz


@dataclass(frozen=True)
class OSConfig:
    """Host OS scheduling parameters (§III-A)."""

    #: Measured context switch overhead (Table II: 2 us).
    context_switch_ns: float = 2 * US
    #: Context switch trigger threshold for Algorithm 1 (Table II: 2 us).
    cs_threshold_ns: float = 2 * US
    #: Thread scheduling policy: "RR", "RANDOM", or "FAIRNESS" (CFS).
    t_policy: str = "FAIRNESS"
    #: Per-core cost of the TLB shootdown IPI after a page migration.
    tlb_shootdown_ns: float = 1_000.0
    #: Demotion hysteresis: a promoted page must have been idle this long
    #: before it may be evicted to make room (prevents promotion churn).
    demote_min_idle_ns: float = 200_000.0
    #: Fixed OS-side cost of handling one migration interrupt (MSI-X,
    #: allocation, page copy issue).
    migration_handling_ns: float = 3_000.0
    #: User-level (AstriFlash-style) thread switch overhead.
    user_level_switch_ns: float = 500.0
    #: Scheduling quantum: a thread holding a core this long is preempted
    #: if other threads wait (keeps >cores thread counts fair even without
    #: device-triggered switches).
    quantum_ns: float = 1_000_000.0


@dataclass(frozen=True)
class SkyByteConfig:
    """Feature knobs mirroring the artifact's configuration file options."""

    #: ``device_triggered_ctx_swt`` in the artifact.
    device_triggered_ctx_swt: bool = True
    #: ``write_log_enable`` in the artifact.
    write_log_enable: bool = True
    #: ``promotion_enable`` in the artifact.
    promotion_enable: bool = True
    #: Page migration mechanism: "skybyte" (per-page counters, §III-C),
    #: "tpp" (sampling, §VI-H), or "none".
    migration_mechanism: str = "skybyte"
    #: Use the AstriFlash host-DRAM-as-cache organisation instead (§VI-H).
    astriflash: bool = False


@dataclass(frozen=True)
class QoSConfig:
    """Multi-tenant isolation knobs (see ``docs/QOS.md``).

    Everything a backend needs to attribute traffic to tenants travels
    inside the config -- partitions, thread ownership, weights -- so a
    trace replayed on any backend (process pool, distributed service)
    reconstructs the exact same QoS behaviour from the embedded config
    alone, with no side-channel plan object.

    The default (``isolation="none"``, empty tuples) is serialisation-
    invisible: :meth:`SimConfig.to_dict` omits the ``qos`` key entirely
    so golden digests and cache keys of non-QoS runs are unchanged.
    """

    #: Mechanism: "none", "wfq" (weighted-fair flash queues + weighted
    #: host CFS), "priority" (strict-priority flash queues + host sched),
    #: "log-partition" (per-tenant write-log shares), or "cache-quota"
    #: (per-tenant data-cache quotas).
    isolation: str = "none"
    #: Per-tenant disjoint address partitions: ((base_page, pages), ...).
    partitions: tuple = ()
    #: Owning tenant index for each software thread.
    tenant_of_thread: tuple = ()
    #: Per-tenant weights (wfq / log-partition / cache-quota shares).
    weights: tuple = ()
    #: Per-tenant priorities (higher wins) for "priority" isolation.
    priorities: tuple = ()
    #: Read-latency SLO used by the violation-rate figure.
    slo_read_ns: float = 20_000.0

    @property
    def tenants(self) -> int:
        return len(self.partitions)

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "QoSConfig":
        """Rebuild from JSON-safe dict output (lists re-tupled)."""
        return QoSConfig(
            isolation=str(data.get("isolation", "none")),
            partitions=tuple(
                (int(base), int(pages))
                for base, pages in data.get("partitions", ())
            ),
            tenant_of_thread=tuple(
                int(t) for t in data.get("tenant_of_thread", ())
            ),
            weights=tuple(float(w) for w in data.get("weights", ())),
            priorities=tuple(int(p) for p in data.get("priorities", ())),
            slo_read_ns=float(data.get("slo_read_ns", 20_000.0)),
        )


@dataclass(frozen=True)
class DeviceModelConfig:
    """Flash device-model selection and deep-model knobs.

    ``kind="flat"`` (the default) keeps the horizon-estimate flash model
    every golden digest was pinned against.  ``kind="deep"`` switches the
    controllers to the explicit-geometry queueing model of
    :mod:`repro.ssd.geometry` / :class:`repro.ssd.flash.DeepFlashArray`:
    commands route to the die and plane a page physically lives on,
    read-priority program suspension is bounded, and GC campaigns pace
    their page moves through the command queues instead of batching at
    one instant (see ``docs/DEVICE_MODEL.md``).

    The default is serialisation-invisible: :meth:`SimConfig.to_dict`
    omits the ``device_model`` key entirely, so every pre-deep-model
    cache key and golden digest is byte-identical.
    """

    #: Flash model: "flat" (horizon estimates) or "deep" (queueing).
    kind: str = "flat"
    #: Reads suspend an in-flight program on their plane (deep model).
    read_priority: bool = True
    #: Consecutive reads that may suspend one program before it becomes
    #: non-preemptible (starvation bound); 0 = unbounded, which matches
    #: the flat model's suspend semantics exactly.
    max_read_bypass: int = 0
    #: Planes of one die execute array operations independently
    #: (multi-plane parallelism); False serialises a die's planes.
    plane_parallelism: bool = True
    #: Garbage collection runs as deferred background campaigns paced
    #: through the command queues; False keeps the synchronous
    #: channel-blocking campaigns of the flat model.
    background_gc: bool = True
    #: Pause between chained background-GC campaigns on one channel.
    gc_idle_ns: float = 50_000.0

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "DeviceModelConfig":
        return DeviceModelConfig(
            kind=str(data.get("kind", "flat")),
            read_priority=bool(data.get("read_priority", True)),
            max_read_bypass=int(data.get("max_read_bypass", 0)),
            plane_parallelism=bool(data.get("plane_parallelism", True)),
            background_gc=bool(data.get("background_gc", True)),
            gc_idle_ns=float(data.get("gc_idle_ns", 50_000.0)),
        )


@dataclass(frozen=True)
class TraceConfig:
    """Sim-time timeline tracing (Chrome trace-event / Perfetto JSON).

    Disabled by default and serialisation-invisible: a default block is
    omitted from :meth:`SimConfig.to_dict`, so cache keys and golden
    digests are unchanged unless tracing is switched on.  Tracing also
    forces the scalar engine path so recorded timings are the exact
    event-by-event ones.
    """

    #: Record a timeline for this run.
    enabled: bool = False
    #: Hard cap on recorded events; later events are counted as dropped.
    max_events: int = 200_000
    #: Emit per-request core->link->device spans (the bulkiest stream);
    #: False keeps only device-level lanes (flash, GC, write-log, ...).
    requests: bool = True

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "TraceConfig":
        return TraceConfig(
            enabled=bool(data.get("enabled", False)),
            max_events=int(data.get("max_events", 200_000)),
            requests=bool(data.get("requests", True)),
        )


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    os: OSConfig = field(default_factory=OSConfig)
    cxl: CXLConfig = field(default_factory=CXLConfig)
    ssd: SSDConfig = field(default_factory=SSDConfig)
    skybyte: SkyByteConfig = field(default_factory=SkyByteConfig)
    #: Run everything out of host DRAM (the paper's DRAM-Only ideal).
    dram_only: bool = False
    #: Number of software threads (paper: 24 threads on 8 cores when the
    #: coordinated context switch is enabled, 8 otherwise).
    threads: int = 8
    #: Fraction of each trace replayed (metadata-only) to warm the SSD
    #: DRAM structures and page placement before the timed run, mirroring
    #: the paper's "use the traces to warm up the simulator, including the
    #: CPU caches, the host memory, the SSD DRAM cache, and the write
    #: log" (§VI-A).
    warmup_fraction: float = 1.0
    #: RNG seed threaded through every stochastic component.
    seed: int = 42
    #: Multi-tenant isolation knobs; the default is serialisation-invisible.
    qos: QoSConfig = field(default_factory=QoSConfig)
    #: Flash device-model selection; the default is serialisation-invisible.
    device_model: DeviceModelConfig = field(default_factory=DeviceModelConfig)
    #: Sim-time timeline tracing; the default is serialisation-invisible.
    trace: TraceConfig = field(default_factory=TraceConfig)

    def replace(self, **kwargs) -> "SimConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe) for caching and IPC.

        A default :class:`QoSConfig` is omitted so every pre-QoS digest
        (golden suites, result-cache keys) is byte-identical, and a
        default :class:`DeviceModelConfig` likewise.
        """
        data = dataclasses.asdict(self)
        if self.qos == QoSConfig():
            del data["qos"]
        if self.device_model == DeviceModelConfig():
            del data["device_model"]
        if self.trace == TraceConfig():
            del data["trace"]
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SimConfig":
        """Rebuild a :class:`SimConfig` from :meth:`to_dict` output."""
        ssd_data = dict(data["ssd"])
        ssd_data["geometry"] = FlashGeometry(**ssd_data["geometry"])
        ssd_data["timing"] = FlashTiming(**ssd_data["timing"])
        return SimConfig(
            cpu=CPUConfig(**data["cpu"]),
            os=OSConfig(**data["os"]),
            cxl=CXLConfig(**data["cxl"]),
            ssd=SSDConfig(**ssd_data),
            skybyte=SkyByteConfig(**data["skybyte"]),
            dram_only=bool(data["dram_only"]),
            threads=int(data["threads"]),
            warmup_fraction=float(data["warmup_fraction"]),
            seed=int(data["seed"]),
            qos=QoSConfig.from_dict(data["qos"]) if data.get("qos")
            else QoSConfig(),
            device_model=DeviceModelConfig.from_dict(data["device_model"])
            if data.get("device_model") else DeviceModelConfig(),
            trace=TraceConfig.from_dict(data["trace"])
            if data.get("trace") else TraceConfig(),
        )

    def with_ssd(self, **kwargs) -> "SimConfig":
        return self.replace(ssd=dataclasses.replace(self.ssd, **kwargs))

    def with_os(self, **kwargs) -> "SimConfig":
        return self.replace(os=dataclasses.replace(self.os, **kwargs))

    def with_cpu(self, **kwargs) -> "SimConfig":
        return self.replace(cpu=dataclasses.replace(self.cpu, **kwargs))

    def with_skybyte(self, **kwargs) -> "SimConfig":
        return self.replace(skybyte=dataclasses.replace(self.skybyte, **kwargs))

    def with_qos(self, **kwargs) -> "SimConfig":
        return self.replace(qos=dataclasses.replace(self.qos, **kwargs))

    def with_device(self, **kwargs) -> "SimConfig":
        return self.replace(
            device_model=dataclasses.replace(self.device_model, **kwargs)
        )

    def with_trace(self, **kwargs) -> "SimConfig":
        return self.replace(trace=dataclasses.replace(self.trace, **kwargs))


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------


def paper_config() -> SimConfig:
    """The exact Table II configuration (128 GB flash, 512 MB SSD DRAM)."""
    return SimConfig()


def scaled_config(
    scale: int = 512,
    threads: int = 8,
    timing: str = "ULL",
    seed: int = 42,
) -> SimConfig:
    """A proportionally scaled-down configuration.

    ``scale`` divides every capacity of the paper's setup.  The default
    (512) yields: 256 MB flash, 1 MB SSD DRAM (128 KB write log + 896 KB
    data cache), 4 MB host promotion budget.  Workload footprints from
    :mod:`repro.workloads.suites` are scaled by the same factor, preserving
    the footprint:DRAM ratios of Table I.

    Args:
        scale: capacity division factor (power of two recommended).
        threads: number of software threads to simulate.
        timing: flash timing preset name from :data:`FLASH_TIMINGS`.
        seed: RNG seed.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    geometry = _scaled_geometry(scale)
    dram_bytes = max((512 * MB) // scale, 64 * KB)
    write_log_bytes = max(dram_bytes // 8, 8 * KB)
    ssd = SSDConfig(
        geometry=geometry,
        timing=FLASH_TIMINGS[timing],
        dram_bytes=dram_bytes,
        write_log_bytes=write_log_bytes,
    )
    cpu = CPUConfig(host_promote_budget_bytes=max((2 * GB) // scale, 64 * KB))
    return SimConfig(cpu=cpu, ssd=ssd, threads=threads, seed=seed)


def _scaled_geometry(scale: int) -> FlashGeometry:
    """Shrink the paper's flash geometry by ``scale``.

    Capacity is shed from blocks-per-plane and pages-per-block first so
    the device keeps most of its *parallelism* (channels, and dies behind
    each channel) -- it is the die count that determines how much flash
    work overlaps, and collapsing it would make the scaled device
    behave qualitatively unlike the paper's 1024-die drive.
    """
    base = FlashGeometry()
    remaining = scale
    blocks = base.blocks_per_plane
    while remaining > 1 and blocks > 16:
        blocks //= 2
        remaining //= 2
    pages = base.pages_per_block
    while remaining > 1 and pages > 32:
        pages //= 2
        remaining //= 2
    channels = base.channels
    while remaining > 1 and channels > 8:
        channels //= 2
        remaining //= 2
    chips = base.chips_per_channel
    while remaining > 1 and chips > 2:
        chips //= 2
        remaining //= 2
    dies = base.dies_per_chip
    while remaining > 1 and dies > 2:
        dies //= 2
        remaining //= 2
    return FlashGeometry(
        channels=channels,
        chips_per_channel=chips,
        dies_per_chip=dies,
        planes_per_die=base.planes_per_die,
        blocks_per_plane=blocks,
        pages_per_block=pages,
    )
