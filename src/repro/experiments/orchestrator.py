"""Parallel experiment orchestration with on-disk result caching.

Every figure of the paper's evaluation is a sweep over independent
(workload, variant, parameter) cells, so the whole evaluation is
embarrassingly parallel.  This module is the single funnel those sweeps
go through:

* :class:`SweepJob` -- a hashable, picklable description of one
  :func:`~repro.experiments.runner.run_workload` call;
* :func:`run_sweep` -- executes a list of jobs, fanning out over a
  ``ProcessPoolExecutor`` (``jobs`` workers) while preserving input
  order, deduplicating identical cells, and consulting the result cache;
* :class:`ResultCache` -- a JSON-per-result cache under ``.repro_cache/``
  keyed by a stable hash of the fully *resolved* simulation config plus
  workload, variant, trace length and time limit, so a re-run only
  simulates missing cells and a config change can never serve stale data.

Determinism: each job builds its own :class:`~repro.sim.system.System`
from its own seeds, so a parallel sweep is numerically identical to the
serial loop it replaces -- worker results round-trip through
``RunResult.to_dict()`` (lossless for finite floats) whether they come
from a pool worker, the cache, or an in-process run.

Environment knobs: ``REPRO_JOBS`` (default worker count), ``REPRO_CACHE``
(truthy enables caching when callers do not say), ``REPRO_CACHE_DIR``
(cache location, default ``.repro_cache``).
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.experiments.runner import DEFAULT_SCALE, RunResult, resolve_run, run_workload
from repro.variants import canonical_variant
from repro.workloads.suites import canonical_workload

JOBS_ENV = "REPRO_JOBS"
CACHE_ENV = "REPRO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bump when the serialized result format or simulator semantics change
#: incompatibly; old cache entries then miss instead of deserializing
#: garbage.
CACHE_VERSION = 1

_TRUTHY = {"1", "true", "yes", "on"}

#: A job given to :func:`run_sweep`: either a prepared :class:`SweepJob`
#: or a bare ``(workload, variant)`` pair.
JobLike = Union["SweepJob", Tuple[str, str]]


def default_jobs() -> int:
    """Worker count when a sweep does not specify one (REPRO_JOBS, min 1)."""
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


@dataclass(frozen=True)
class SweepJob:
    """One (workload, variant, parameters) simulation cell.

    ``params`` holds :func:`run_workload` keyword arguments as a sorted
    tuple of pairs so jobs are hashable (for dedup) and picklable (for
    the process pool).  Build via :meth:`make`, which canonicalises
    names and drops ``None`` values.
    """

    workload: str
    variant: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, workload: str, variant: str, **params: object) -> "SweepJob":
        clean = {k: v for k, v in params.items() if v is not None}
        overrides = clean.get("ssd_overrides")
        if isinstance(overrides, dict):
            clean["ssd_overrides"] = tuple(sorted(overrides.items()))
        return cls(
            workload=canonical_workload(workload),
            variant=canonical_variant(variant),
            params=tuple(sorted(clean.items())),
        )

    def kwargs(self) -> Dict[str, object]:
        """The run_workload keyword arguments this job encodes."""
        kw = dict(self.params)
        overrides = kw.get("ssd_overrides")
        if isinstance(overrides, tuple):
            kw["ssd_overrides"] = dict(overrides)
        return kw

    def key(self) -> str:
        """Stable cache key for this job (hex digest).

        Hashes the *resolved* config -- scale, REPRO_RECORDS and thread
        defaults are applied first -- so two spellings of the same cell
        share a key and any config difference produces a new one.
        """
        kw = self.kwargs()
        config, records = resolve_run(self.workload, self.variant, **kw)
        payload = {
            "cache_version": CACHE_VERSION,
            "workload": self.workload,
            "variant": self.variant,
            "records_per_thread": records,
            "scale": kw.get("scale", DEFAULT_SCALE),
            "max_ns": kw.get("max_ns"),
            "config": config.to_dict(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:40]

    def label(self) -> str:
        return f"{self.workload}/{self.variant}"


def sweep_product(
    workloads: Sequence[str],
    variants: Sequence[str],
    **params: object,
) -> List[SweepJob]:
    """The full workload x variant grid, row-major (variant fastest)."""
    return [
        SweepJob.make(wl, variant, **params)
        for wl in workloads
        for variant in variants
    ]


class ResultCache:
    """On-disk result cache: one JSON file per simulated cell.

    Layout: ``<root>/<key>.json`` where ``<root>`` defaults to
    ``.repro_cache/`` (override with ``REPRO_CACHE_DIR``) and ``<key>``
    is :meth:`SweepJob.key`.  Files hold ``RunResult.to_dict()`` output
    and are written atomically (tmp file + rename), so a sweep killed
    mid-write never leaves a corrupt entry -- unreadable entries are
    treated as misses.  ``hits``/``misses`` count lookups since this
    object was created; :func:`run_sweep` reports them.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None (counting hit/miss)."""
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as fh:
                data = json.load(fh)
            result = RunResult.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.path_for(key)
        tmp = final.with_name(final.name + f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, separators=(",", ":"))
        os.replace(tmp, final)

    def entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete all cached results; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def resolve_cache(
    cache: Union[ResultCache, bool, str, Path, None],
) -> Optional[ResultCache]:
    """Normalise a ``cache`` argument to a ResultCache or None.

    ``True`` -> default cache; ``False`` -> disabled; a path -> cache at
    that directory; ``None`` -> enabled iff ``REPRO_CACHE`` is truthy
    (so library callers and tests stay side-effect free by default while
    the CLI opts in).
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return ResultCache()
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    if cache is None and os.environ.get(CACHE_ENV, "").lower() in _TRUTHY:
        return ResultCache()
    return None


def _as_job(item: JobLike) -> SweepJob:
    if isinstance(item, SweepJob):
        return item
    workload, variant = item
    return SweepJob.make(workload, variant)


def _execute_job(job: SweepJob) -> RunResult:
    return run_workload(job.workload, job.variant, **job.kwargs())


def _execute_job_dict(job: SweepJob) -> Dict[str, object]:
    """Pool-worker entry point: run one job, return its dict form.

    Dicts (not live RunResults) cross the process boundary so the
    parent reconstructs results through exactly the same path the cache
    uses -- one serialization format, one set of invariants.
    """
    return _execute_job(job).to_dict()


def run_sweep(
    jobs_or_pairs: Iterable[JobLike],
    jobs: Optional[int] = None,
    cache: Union[ResultCache, bool, str, Path, None] = None,
    progress: Optional[Callable[[SweepJob, str], None]] = None,
) -> List[RunResult]:
    """Run a batch of simulation cells, in parallel, through the cache.

    Args:
        jobs_or_pairs: :class:`SweepJob` objects or ``(workload,
            variant)`` pairs; results come back in the same order.
        jobs: worker processes (1 = run in-process; default
            ``REPRO_JOBS`` or 1).
        cache: see :func:`resolve_cache`.
        progress: optional callback invoked per completed cell with the
            job and its source (``"cache"`` or ``"run"``).

    Identical jobs are simulated once and fanned back out to every
    position that requested them.
    """
    specs = [_as_job(item) for item in jobs_or_pairs]
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, int(jobs))
    store = resolve_cache(cache)

    results: List[Optional[RunResult]] = [None] * len(specs)
    # Deduplicate: one simulation per distinct cache key, results shared.
    key_order: List[str] = []
    positions: Dict[str, List[int]] = {}
    job_for_key: Dict[str, SweepJob] = {}
    for i, spec in enumerate(specs):
        key = spec.key()
        if key not in positions:
            positions[key] = []
            key_order.append(key)
            job_for_key[key] = spec
        positions[key].append(i)

    pending: List[str] = []
    for key in key_order:
        cached = store.get(key) if store is not None else None
        if cached is not None:
            for i in positions[key]:
                results[i] = cached
            if progress is not None:
                progress(job_for_key[key], "cache")
        else:
            pending.append(key)

    def _finish(key: str, result: RunResult) -> None:
        if store is not None:
            store.put(key, result)
        for i in positions[key]:
            results[i] = result
        if progress is not None:
            progress(job_for_key[key], "run")

    if jobs == 1 or len(pending) <= 1:
        for key in pending:
            _finish(key, _execute_job(job_for_key[key]))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_execute_job_dict, job_for_key[key]): key
                for key in pending
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    _finish(futures[future], RunResult.from_dict(future.result()))

    return results  # type: ignore[return-value]  # every slot is filled


def run_pairs(
    workloads: Sequence[str],
    variants: Sequence[str],
    jobs: Optional[int] = None,
    cache: Union[ResultCache, bool, str, Path, None] = None,
    progress: Optional[Callable[[SweepJob, str], None]] = None,
    **params: object,
) -> Dict[Tuple[str, str], RunResult]:
    """Convenience grid sweep returning ``{(workload, variant): result}``."""
    specs = sweep_product(workloads, variants, **params)
    out = run_sweep(specs, jobs=jobs, cache=cache, progress=progress)
    return {(r.workload, r.variant): r for r in out}
