"""Parallel experiment orchestration with on-disk result caching.

Every figure of the paper's evaluation is a sweep over independent
(workload, variant, parameter) cells, so the whole evaluation is
embarrassingly parallel.  This module is the single funnel those sweeps
go through:

* :class:`SweepJob` -- a hashable, picklable description of one
  :func:`~repro.experiments.runner.run_workload` call;
* :func:`run_sweep` -- executes a list of jobs on a pluggable
  :class:`~repro.experiments.backends.SweepBackend` (process pool,
  thread pool, or distributed TCP workers) while preserving input
  order, deduplicating identical cells, and consulting the result cache;
* :func:`stream_sweep` -- the streaming core ``run_sweep`` is built on:
  an iterator of :class:`CellUpdate` events, one per distinct cell, in
  completion order -- cache-served cells first, then simulated cells as
  the backend finishes them.  Long sweeps can be observed (and their
  reports rewritten) in real time instead of at barrier boundaries;
* :class:`ResultCache` -- a JSON-per-result store under ``.repro_cache/``
  keyed by a stable hash of the fully *resolved* simulation config plus
  workload, variant, trace length and time limit, so a re-run only
  simulates missing cells and a config change can never serve stale
  data.  The store has a real storage layer: an ``index.json`` with
  LRU bookkeeping, an optional size cap with least-recently-used
  eviction, lifetime hit/miss/evict counters, and advisory file locks
  so many processes (or distributed workers on a shared filesystem)
  can use one cache directory concurrently.

Determinism: each job builds its own :class:`~repro.sim.system.System`
from its own seeds, so a parallel sweep is numerically identical to the
serial loop it replaces -- worker results round-trip through
``RunResult.to_dict()`` (lossless for finite floats) whether they come
from a pool worker, a thread, a remote worker, the cache, or an
in-process run.

Environment knobs: ``REPRO_JOBS`` (default worker count),
``REPRO_BENCH_BACKEND`` / ``REPRO_BENCH_WORKERS`` / ``REPRO_REGISTRY``
(default backend, see
:func:`repro.experiments.backends.resolve_backend`),
``REPRO_CELL_TIMEOUT`` / ``REPRO_RETRY_BUDGET`` (distributed per-cell
reliability policy, see
:class:`repro.experiments.backends.CellPolicy`), ``REPRO_CACHE``
(truthy enables caching when callers do not say), ``REPRO_CACHE_DIR``
(cache location, default ``.repro_cache``), ``REPRO_CACHE_MAX_BYTES``
(size cap; 0 or unset means unbounded).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

try:  # advisory file locking; absent on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover - POSIX-only dependency
    fcntl = None

from repro.experiments.backends import (
    BackendLike,
    CellPolicy,
    default_jobs,
    resolve_backend,
)
from repro.experiments.runner import DEFAULT_SCALE, RunResult, resolve_run, run_workload
from repro.obs import REGISTRY, span
from repro.scenarios.library import find_scenario
from repro.scenarios.tracefile import file_sha256
from repro.variants import canonical_variant
from repro.workloads.suites import canonical_workload

JOBS_ENV = "REPRO_JOBS"
CACHE_ENV = "REPRO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bump when the serialized result format or simulator semantics change
#: incompatibly; old cache entries then miss instead of deserializing
#: garbage.
CACHE_VERSION = 1

#: On-disk index format version (bumped independently of CACHE_VERSION:
#: the index is bookkeeping, the entries are data).
INDEX_VERSION = 1

_TRUTHY = {"1", "true", "yes", "on"}

#: A job given to :func:`run_sweep`: either a prepared :class:`SweepJob`
#: or a bare ``(workload, variant)`` pair.
JobLike = Union["SweepJob", Tuple[str, str]]


def default_cache_max_bytes() -> int:
    """The size cap from REPRO_CACHE_MAX_BYTES (0 = unbounded)."""
    try:
        return max(0, int(os.environ.get(CACHE_MAX_BYTES_ENV, "0") or "0"))
    except ValueError:
        return 0


@dataclass(frozen=True)
class SweepJob:
    """One (workload, variant, parameters) simulation cell.

    ``params`` holds :func:`run_workload` keyword arguments as a sorted
    tuple of pairs so jobs are hashable (for dedup) and picklable (for
    the process pool).  Build via :meth:`make`, which canonicalises
    names and drops ``None`` values.
    """

    workload: str
    variant: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, workload: str, variant: str, **params: object) -> "SweepJob":
        clean = {k: v for k, v in params.items() if v is not None}
        overrides = clean.get("ssd_overrides")
        if isinstance(overrides, dict):
            clean["ssd_overrides"] = tuple(sorted(overrides.items()))
        device = clean.get("device_model")
        if isinstance(device, dict):
            clean["device_model"] = tuple(sorted(device.items()))
        return cls(
            workload=cls._canonical_name(workload, "trace" in clean),
            variant=canonical_variant(variant),
            params=tuple(sorted(clean.items())),
        )

    @staticmethod
    def _canonical_name(workload: str, is_trace: bool) -> str:
        """Table I name, scenario registry name, or (for tracefile
        replay cells, whose workload field is just a label) any name."""
        try:
            return canonical_workload(workload)
        except KeyError:
            scenario = find_scenario(workload)
            if scenario is not None:
                return scenario.name
            if is_trace:
                return workload
            raise

    def kwargs(self) -> Dict[str, object]:
        """The run_workload keyword arguments this job encodes."""
        kw = dict(self.params)
        overrides = kw.get("ssd_overrides")
        if isinstance(overrides, tuple):
            kw["ssd_overrides"] = dict(overrides)
        device = kw.get("device_model")
        if isinstance(device, tuple):
            kw["device_model"] = dict(device)
        return kw

    def key(self) -> str:
        """Stable cache key for this job (hex digest).

        Hashes the *resolved* config -- scale, REPRO_RECORDS and thread
        defaults are applied first -- so two spellings of the same cell
        share a key and any config difference produces a new one.
        """
        kw = self.kwargs()
        config, records = resolve_run(self.workload, self.variant, **kw)
        payload = {
            "cache_version": CACHE_VERSION,
            "workload": self.workload,
            "variant": self.variant,
            "records_per_thread": records,
            "scale": kw.get("scale", DEFAULT_SCALE),
            "max_ns": kw.get("max_ns"),
            "config": config.to_dict(),
        }
        if kw.get("trace"):
            # Replay cells key on the file *content*: a regenerated
            # trace under the same path must not serve stale results.
            payload["trace_sha256"] = file_sha256(str(kw["trace"]))
        else:
            scenario = find_scenario(self.workload)
            if scenario is not None and scenario.name == self.workload:
                # Scenario cells key on the full scenario definition, so
                # editing a registered scenario invalidates its entries.
                payload["scenario"] = scenario.to_dict()
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:40]

    def label(self) -> str:
        return f"{self.workload}/{self.variant}"


def sweep_product(
    workloads: Sequence[str],
    variants: Sequence[str],
    **params: object,
) -> List[SweepJob]:
    """The full workload x variant grid, row-major (variant fastest)."""
    return [
        SweepJob.make(wl, variant, **params)
        for wl in workloads
        for variant in variants
    ]


class ResultCache:
    """On-disk result store: one JSON file per simulated cell.

    Layout: ``<root>/<key>.json`` data entries plus ``<root>/index.json``
    (LRU bookkeeping and lifetime stats) and ``<root>/index.lock`` (an
    advisory ``flock`` serialising index updates across processes and
    hosts sharing the directory).  ``<root>`` defaults to
    ``.repro_cache/`` (override with ``REPRO_CACHE_DIR``) and ``<key>``
    is :meth:`SweepJob.key`.

    Data files hold ``RunResult.to_dict()`` output and are written
    atomically (tmp file + rename), so a sweep killed mid-write never
    leaves a corrupt entry -- unreadable entries are treated as misses.
    The index is rewritten atomically under the lock, so concurrent
    writers can interleave but never corrupt it; a lost or corrupt index
    is rebuilt from the data files on the next reconcile.

    ``max_bytes`` (default ``REPRO_CACHE_MAX_BYTES``; 0 = unbounded)
    caps the total data size: every :meth:`put` evicts
    least-recently-used entries until the cap holds.  ``hits`` /
    ``misses`` / ``evictions`` count this object's lifetime;
    :meth:`stats` additionally reports the directory-wide lifetime
    counters kept in the index.
    """

    INDEX_NAME = "index.json"
    LOCK_NAME = "index.lock"

    #: Fallback lockfile (O_CREAT|O_EXCL) used when ``fcntl`` is
    #: unavailable; created per critical section, removed on release.
    LOCKFILE_NAME = "index.lockfile"

    #: Seconds after which an abandoned fallback lockfile is broken.  A
    #: crashed holder cannot release it (unlike a flock, which the OS
    #: drops with the process), so waiters must eventually steal it.
    LOCK_STALE_SECONDS = 30.0

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        if max_bytes is None:
            max_bytes = default_cache_max_bytes()
        self.max_bytes = max(0, int(max_bytes))
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- index plumbing ----------------------------------------------------

    @contextlib.contextmanager
    def _lock(self):
        """Exclusive advisory lock on the cache directory's index.

        POSIX hosts flock ``index.lock``.  Where ``fcntl`` is missing
        (e.g. Windows) the fallback is an ``O_CREAT|O_EXCL`` lockfile:
        atomic creation is the acquisition, removal the release, and a
        lockfile older than :attr:`LOCK_STALE_SECONDS` is presumed
        abandoned by a crashed holder and broken (best-effort: two
        waiters racing the break resolve through the atomic create).
        The previous behaviour -- silently skipping locking entirely --
        made every index update on such hosts a lost-update race.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            handle = open(self.root / self.LOCK_NAME, "a+")
            try:
                fcntl.flock(handle, fcntl.LOCK_EX)
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
                handle.close()
            return
        path = self.root / self.LOCKFILE_NAME
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                break
            except FileExistsError:
                try:
                    age = time.time() - os.stat(path).st_mtime
                except OSError:
                    continue  # holder just released: retry immediately
                if age > self.LOCK_STALE_SECONDS:
                    with contextlib.suppress(OSError):
                        os.unlink(path)
                    continue
                time.sleep(0.05)
        try:
            yield
        finally:
            with contextlib.suppress(OSError):
                os.unlink(path)

    @staticmethod
    def _fresh_index() -> Dict[str, object]:
        return {
            "version": INDEX_VERSION,
            "tick": 0,
            "stats": {"hits": 0, "misses": 0, "evictions": 0, "puts": 0},
            "entries": {},
        }

    def _read_index(self) -> Dict[str, object]:
        """The on-disk index, salvaging whatever a damaged one holds.

        A version mismatch or parse error used to be treated as "fresh
        index", which silently zeroed the lifetime hit/miss/evict
        counters and orphaned every existing blob entry (invisible to
        LRU eviction until the next explicit reconcile).  Instead,
        readable stats fields and well-formed entries are adopted into
        a fresh-format index, and the data files on disk are reconciled
        in so no blob is orphaned by bookkeeping damage.
        """
        raw: object = None
        intact = False
        try:
            with open(self.root / self.INDEX_NAME, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
            intact = isinstance(raw, dict) and raw.get("version") == INDEX_VERSION
        except (OSError, ValueError):
            raw = None
        index = self._fresh_index()
        if isinstance(raw, dict):
            try:
                index["tick"] = max(0, int(raw.get("tick", 0)))
            except (TypeError, ValueError):
                intact = False
            stats = raw.get("stats")
            if isinstance(stats, dict):
                for field in ("hits", "misses", "evictions", "puts"):
                    try:
                        index["stats"][field] = max(0, int(stats.get(field, 0)))
                    except (TypeError, ValueError):
                        intact = False
            entries = raw.get("entries")
            if isinstance(entries, dict):
                for key, entry in entries.items():
                    try:
                        index["entries"][str(key)] = {
                            "size": int(entry["size"]),
                            "tick": int(entry["tick"]),
                        }
                    except (TypeError, ValueError, KeyError):
                        intact = False
            else:
                intact = False
        if not intact:
            # Damaged, foreign-version, or absent bookkeeping: make the
            # salvaged index agree with the directory so existing blobs
            # stay visible to eviction and stats.
            self._reconcile(index)
        return index

    def _write_index(self, index: Dict[str, object]) -> None:
        final = self.root / self.INDEX_NAME
        tmp = final.with_name(final.name + f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(index, fh, separators=(",", ":"))
        os.replace(tmp, final)

    def _data_files(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.glob("*.json") if p.name != self.INDEX_NAME
        )

    def _reconcile(self, index: Dict[str, object]) -> None:
        """Make the index agree with the directory (call under the lock).

        Entries whose data file vanished are dropped; stray data files
        (e.g. written by a pre-index version of this cache) are adopted
        at tick 0, i.e. first in line for eviction.
        """
        entries: Dict[str, Dict[str, int]] = index["entries"]
        for key in list(entries):
            if not self.path_for(key).is_file():
                del entries[key]
        for path in self._data_files():
            key = path.stem
            if key not in entries:
                entries[key] = {"size": path.stat().st_size, "tick": 0}

    def _evict(self, index: Dict[str, object], max_bytes: int,
               protect: Tuple[str, ...] = ()) -> int:
        """Drop LRU entries until the cap holds (call under the lock)."""
        if max_bytes <= 0:
            return 0
        entries: Dict[str, Dict[str, int]] = index["entries"]
        total = sum(entry["size"] for entry in entries.values())
        victims: List[str] = []
        for key in sorted(entries, key=lambda k: (entries[k]["tick"], k)):
            if total <= max_bytes:
                break
            if key in protect:
                continue
            total -= entries[key]["size"]
            victims.append(key)
        for key in victims:
            del entries[key]
            try:
                self.path_for(key).unlink()
            except OSError:
                pass
        index["stats"]["evictions"] += len(victims)
        self.evictions += len(victims)
        return len(victims)

    def _touch(self, index: Dict[str, object], key: str, size: int) -> None:
        index["tick"] += 1
        index["entries"][key] = {"size": size, "tick": index["tick"]}

    # -- public API --------------------------------------------------------

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None (counting hit/miss)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            result = RunResult.from_dict(data)
            size = path.stat().st_size
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            REGISTRY.counter("repro_cache_misses_total",
                             "result-cache lookups that missed").inc()
            # Counter updates pay the directory lock deliberately: the
            # lifetime stats are exact across processes, and the cost is
            # per simulation cell -- orders of magnitude cheaper than
            # the cell itself.  A miss on a not-yet-created cache skips
            # even that (no directory gets conjured just to count it).
            if self.root.is_dir():
                with self._lock():
                    index = self._read_index()
                    index["stats"]["misses"] += 1
                    self._write_index(index)
            return None
        self.hits += 1
        REGISTRY.counter("repro_cache_hits_total",
                         "result-cache lookups answered from disk").inc()
        with self._lock():
            index = self._read_index()
            index["stats"]["hits"] += 1
            # LRU: a hit refreshes recency -- but the blob was read
            # *before* this lock, so a concurrent eviction may have
            # removed entry and file in between.  Touching then would
            # resurrect an index entry whose blob is gone; only refresh
            # while the blob is still on disk.
            if key in index["entries"] or path.is_file():
                self._touch(index, key, size)
            self._write_index(index)
        return result

    def _write_blob(self, key: str, result: RunResult) -> int:
        """Atomically write one data entry; returns its size in bytes."""
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.path_for(key)
        tmp = final.with_name(final.name + f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, separators=(",", ":"))
        os.replace(tmp, final)
        return final.stat().st_size

    def put(self, key: str, result: RunResult) -> None:
        REGISTRY.counter("repro_cache_puts_total",
                         "results written to the cache").inc()
        size = self._write_blob(key, result)
        final = self.path_for(key)
        with self._lock():
            index = self._read_index()
            if not final.is_file():
                # A concurrent eviction raced the blob away between the
                # write above and this lock; restore it before indexing
                # so the entry never points at a missing file.
                size = self._write_blob(key, result)
            index["stats"]["puts"] += 1
            self._touch(index, key, size)
            # Never evict what was just written, even if it alone busts
            # the cap -- caching the current sweep beats strict caps.
            self._evict(index, self.max_bytes, protect=(key,))
            self._write_index(index)

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict LRU entries until the cache fits ``max_bytes``.

        Defaults to this cache's configured cap; returns the number of
        entries removed (0 when unbounded).
        """
        target = self.max_bytes if max_bytes is None else max(0, int(max_bytes))
        if target <= 0:
            return 0
        with self._lock():
            index = self._read_index()
            self._reconcile(index)
            removed = self._evict(index, target)
            self._write_index(index)
        return removed

    def stats(self) -> Dict[str, object]:
        """Directory-wide cache statistics (reconciled under the lock)."""
        with self._lock():
            index = self._read_index()
            self._reconcile(index)
            self._write_index(index)
        entries: Dict[str, Dict[str, int]] = index["entries"]
        return {
            "root": str(self.root),
            "entries": len(entries),
            "size_bytes": sum(entry["size"] for entry in entries.values()),
            "max_bytes": self.max_bytes,
            "hits": index["stats"]["hits"],
            "misses": index["stats"]["misses"],
            "evictions": index["stats"]["evictions"],
            "puts": index["stats"]["puts"],
        }

    def entries(self) -> List[Path]:
        return self._data_files()

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._data_files())

    def clear(self) -> int:
        """Delete all cached results (and reset the index); returns count."""
        if not self.root.is_dir():
            return 0
        with self._lock():
            removed = 0
            for path in self._data_files():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            self._write_index(self._fresh_index())
        return removed


def resolve_cache(
    cache: Union[ResultCache, bool, str, Path, None],
) -> Optional[ResultCache]:
    """Normalise a ``cache`` argument to a ResultCache or None.

    ``True`` -> default cache; ``False`` -> disabled; a path -> cache at
    that directory; ``None`` -> enabled iff ``REPRO_CACHE`` is truthy
    (so library callers and tests stay side-effect free by default while
    the CLI opts in).
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return ResultCache()
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    if cache is None and os.environ.get(CACHE_ENV, "").lower() in _TRUTHY:
        return ResultCache()
    return None


def _as_job(item: JobLike) -> SweepJob:
    if isinstance(item, SweepJob):
        return item
    workload, variant = item
    return SweepJob.make(workload, variant)


def _execute_job(job: SweepJob) -> RunResult:
    with span("sweep.cell", workload=job.workload, variant=job.variant):
        return run_workload(job.workload, job.variant, **job.kwargs())


def _execute_job_dict(job: SweepJob) -> Dict[str, object]:
    """Backend entry point: run one job, return its dict form.

    Dicts (not live RunResults) cross the process/thread/network
    boundary so every backend reconstructs results through exactly the
    same path the cache uses -- one serialization format, one set of
    invariants.
    """
    return _execute_job(job).to_dict()


@dataclass(frozen=True)
class CellUpdate:
    """One completed sweep cell, as :func:`stream_sweep` yields them.

    ``positions`` are the indices in the caller's job list this cell
    fills (duplicates of one cell share an update); ``completed`` /
    ``total`` count *distinct* cells so consumers can render progress
    without recomputing the dedup.
    """

    job: SweepJob
    result: RunResult
    source: str  # "cache" or "run"
    positions: Tuple[int, ...]
    completed: int
    total: int


def stream_sweep(
    jobs_or_pairs: Iterable[JobLike],
    jobs: Optional[int] = None,
    cache: Union[ResultCache, bool, str, Path, None] = None,
    backend: BackendLike = None,
    policy: Optional[CellPolicy] = None,
) -> Iterator[CellUpdate]:
    """Run a batch of cells, yielding each one **as it completes**.

    The streaming core under :func:`run_sweep`: cells are deduplicated
    and checked against the cache exactly the same way, but instead of
    a barrier the caller receives an iterator of :class:`CellUpdate`
    events in completion order -- cache-served cells first (before any
    simulation starts), then simulated cells as the backend delivers
    them.  Cache writes happen on the backend helper thread the moment
    a cell finishes, *before* its update is queued for the consumer --
    so a consumer that crashes (or abandons the iterator early) never
    loses finished work: the cache already has it.

    The backend executes on a helper thread while the caller iterates;
    an error on any cell (or in the backend itself) is re-raised from
    the iterator after in-flight results drain.  Abandoning the
    iterator early leaves the helper thread draining in the background
    (it is a daemon and, as above, still feeds the cache); consume it
    fully -- or use :func:`run_sweep` -- when you need the barrier
    semantics.

    ``policy`` is the distributed backend's per-cell reliability policy
    (timeout / retry budget / quarantine); see
    :class:`~repro.experiments.backends.CellPolicy`.  Local and thread
    backends ignore it.
    """
    specs = [_as_job(item) for item in jobs_or_pairs]
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, int(jobs))
    store = resolve_cache(cache)
    executor = resolve_backend(backend, jobs=jobs, policy=policy)

    # Deduplicate: one simulation per distinct cache key, results shared.
    key_order: List[str] = []
    positions: Dict[str, List[int]] = {}
    job_for_key: Dict[str, SweepJob] = {}
    for i, spec in enumerate(specs):
        key = spec.key()
        if key not in positions:
            positions[key] = []
            key_order.append(key)
            job_for_key[key] = spec
        positions[key].append(i)

    total = len(key_order)
    completed = 0
    pending: List[str] = []
    for key in key_order:
        cached = store.get(key) if store is not None else None
        if cached is not None:
            completed += 1
            REGISTRY.counter("repro_sweep_cells_total",
                             "completed sweep cells by source",
                             source="cache").inc()
            yield CellUpdate(
                job=job_for_key[key], result=cached, source="cache",
                positions=tuple(positions[key]), completed=completed,
                total=total,
            )
        else:
            pending.append(key)
    if not pending:
        return

    # The backend runs on a helper thread and reports each finished
    # cell through this queue.  "finish exactly once per cell, from the
    # thread that called run()" still holds -- that thread is the
    # helper, and its calls serialize through the queue.  The cache
    # write happens here in _finish (the ResultCache is flock-guarded),
    # so finished cells are durable even if the consumer never drains
    # the queue.
    events: "queue.Queue[tuple]" = queue.Queue()

    def _finish(key: str, result: RunResult) -> None:
        if store is not None:
            store.put(key, result)
        events.put(("ok", key, result))

    def _drive() -> None:
        try:
            executor.run([(key, job_for_key[key]) for key in pending], _finish)
        except BaseException as exc:  # noqa: BLE001 - re-raised by the consumer
            events.put(("error", exc))
            return
        events.put(("end",))

    driver = threading.Thread(target=_drive, name="sweep-driver", daemon=True)
    driver.start()
    done = 0
    failure: Optional[BaseException] = None
    while done < len(pending):
        event = events.get()
        if event[0] == "ok":
            _, key, result = event
            done += 1
            completed += 1
            REGISTRY.counter("repro_sweep_cells_total",
                             "completed sweep cells by source",
                             source="run").inc()
            yield CellUpdate(
                job=job_for_key[key], result=result, source="run",
                positions=tuple(positions[key]), completed=completed,
                total=total,
            )
        elif event[0] == "error":
            failure = event[1]
            break
        else:  # "end" before every cell finished: a backend contract bug
            failure = RuntimeError(
                f"backend {executor.describe()} returned with "
                f"{len(pending) - done} cell(s) unfinished"
            )
            break
    driver.join(timeout=5.0)
    if failure is not None:
        raise failure


def run_sweep(
    jobs_or_pairs: Iterable[JobLike],
    jobs: Optional[int] = None,
    cache: Union[ResultCache, bool, str, Path, None] = None,
    progress: Optional[Callable[[SweepJob, str], None]] = None,
    backend: BackendLike = None,
    policy: Optional[CellPolicy] = None,
) -> List[RunResult]:
    """Run a batch of simulation cells, in parallel, through the cache.

    Args:
        jobs_or_pairs: :class:`SweepJob` objects or ``(workload,
            variant)`` pairs; results come back in the same order.
        jobs: worker count for the local/thread backends (1 = run
            in-process; default ``REPRO_JOBS`` or 1).
        cache: see :func:`resolve_cache`.
        progress: optional callback invoked per completed cell with the
            job and its source (``"cache"`` or ``"run"``).  The contract
            holds on **every** backend: the callback fires exactly once
            per distinct cell, always from the calling thread, and
            cache-served cells fire before any backend execution starts.
            Incremental consumers -- the figure drivers thread this
            through to ``python -m repro report``, which rewrites the
            report after each cell -- need no locking.
        backend: a :class:`~repro.experiments.backends.SweepBackend`, a
            backend name (``local``/``thread``/``serial``/
            ``distributed``/``registry``), or None for the
            ``REPRO_BENCH_BACKEND`` default; see
            :func:`~repro.experiments.backends.resolve_backend`.
        policy: per-cell reliability policy for the distributed backend
            (:class:`~repro.experiments.backends.CellPolicy`; defaults
            to ``REPRO_CELL_TIMEOUT`` / ``REPRO_RETRY_BUDGET``).

    Identical jobs are simulated once and fanned back out to every
    position that requested them.  This is a thin barrier over
    :func:`stream_sweep` -- callers that want cells as they complete
    should iterate that instead.
    """
    specs = [_as_job(item) for item in jobs_or_pairs]
    results: List[Optional[RunResult]] = [None] * len(specs)
    for update in stream_sweep(specs, jobs=jobs, cache=cache,
                               backend=backend, policy=policy):
        for i in update.positions:
            results[i] = update.result
        if progress is not None:
            progress(update.job, update.source)
    return results  # type: ignore[return-value]  # every slot is filled


def run_pairs(
    workloads: Sequence[str],
    variants: Sequence[str],
    jobs: Optional[int] = None,
    cache: Union[ResultCache, bool, str, Path, None] = None,
    progress: Optional[Callable[[SweepJob, str], None]] = None,
    backend: BackendLike = None,
    policy: Optional[CellPolicy] = None,
    **params: object,
) -> Dict[Tuple[str, str], RunResult]:
    """Convenience grid sweep returning ``{(workload, variant): result}``."""
    specs = sweep_product(workloads, variants, **params)
    out = run_sweep(specs, jobs=jobs, cache=cache, progress=progress,
                    backend=backend, policy=policy)
    return {(r.workload, r.variant): r for r in out}
