"""Motivation experiments: Figs. 2-6 of the paper (§II-C).

These quantify why naive CXL-SSDs disappoint: end-to-end slowdown versus
DRAM (Fig. 2), the bimodal latency distribution with its flash tail
(Fig. 3), memory-boundedness (Fig. 4), and the per-page cacheline
locality CDFs that motivate the write log (Figs. 5/6).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.config import CACHELINES_PER_PAGE, PAGE_SIZE
from repro.experiments.orchestrator import run_sweep, sweep_product
from repro.experiments.runner import _traces_for, default_records
from repro.sim.stats import LocalityTracker
from repro.ssd.base_cache import SetAssociativePageCache
from repro.workloads.suites import WORKLOAD_NAMES, get_model, representative_four

#: Paper-reported reference points (SS II-C), consumed by the fidelity
#: report (:mod:`repro.figures.fidelity`): the Fig. 2 slowdown range,
#: the Fig. 3 fast-served fraction, and the Fig. 4 memory-boundedness
#: ranges (DRAM and CXL-SSD, min..max over the seven workloads).
PAPER_EXPECTED = {
    "fig2": {"slowdown_min": 1.5, "slowdown_max": 31.4},
    "fig3": {"cssd_fast_fraction": 0.90},
    "fig4": {
        "dram_memory_bound": (0.629, 0.987),
        "cssd_memory_bound": (0.77, 0.998),
    },
}


def fig2_dram_vs_cssd(
    workloads: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 2: normalized execution time of Base-CSSD over DRAM.

    Returns {workload: {"slowdown": x, "dram_ipns": ..., "cssd_ipns": ...}}.
    The paper reports 1.5x-31.4x slowdowns.
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    records = records or default_records()
    sweep = iter(run_sweep(
        sweep_product(workloads, ["DRAM-Only", "Base-CSSD"],
                      records_per_thread=records),
        jobs=jobs,
        cache=cache,
        backend=backend,
        progress=progress,
        policy=policy,
    ))
    rows: Dict[str, Dict[str, float]] = {}
    for wl in workloads:
        dram = next(sweep)
        cssd = next(sweep)
        rows[wl] = {
            "slowdown": dram.speedup_over(cssd),
            "dram_ipns": dram.stats.throughput_ipns,
            "cssd_ipns": cssd.stats.throughput_ipns,
        }
    return rows


def fig3_latency_distribution(
    workloads: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, object]]:
    """Fig. 3: off-chip latency distribution, DRAM vs CXL-SSD.

    Returns, per workload, the latency CDF points plus headline
    percentiles.  The paper's observation: >90% of CXL-SSD requests are
    served fast (SSD DRAM), but the tail reaches hundreds of us (flash,
    GC).
    """
    workloads = list(workloads or representative_four())
    records = records or default_records()
    labelled = (("DRAM", "DRAM-Only"), ("CXL-SSD", "Base-CSSD"))
    sweep = iter(run_sweep(
        sweep_product(workloads, [v for _label, v in labelled],
                      records_per_thread=records),
        jobs=jobs,
        cache=cache,
        backend=backend,
        progress=progress,
        policy=policy,
    ))
    rows: Dict[str, Dict[str, object]] = {}
    for wl in workloads:
        out: Dict[str, object] = {}
        for label, _variant in labelled:
            hist = next(sweep).stats.offchip_latency
            out[label] = {
                "cdf": hist.cdf(),
                "p50_ns": hist.percentile(50),
                "p99_ns": hist.percentile(99),
                "max_ns": hist.max,
                "fast_fraction": hist.fraction_below(300.0),
            }
        rows[wl] = out
    return rows


def fig4_boundedness(
    workloads: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 4: memory- vs compute-bounded cycle fractions.

    The paper: memory-bounded grows from 62.9-98.7% (DRAM) to 77-99.8%
    (CXL-SSD).
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    records = records or default_records()
    sweep = iter(run_sweep(
        sweep_product(workloads, ["DRAM-Only", "Base-CSSD"],
                      records_per_thread=records),
        jobs=jobs,
        cache=cache,
        backend=backend,
        progress=progress,
        policy=policy,
    ))
    rows: Dict[str, Dict[str, float]] = {}
    for wl in workloads:
        dram = next(sweep)
        cssd = next(sweep)
        rows[wl] = {
            "dram_memory_bound": dram.stats.boundedness()["memory"],
            "cssd_memory_bound": cssd.stats.boundedness()["memory"],
        }
    return rows


def _replay_locality(
    workload: str,
    cache_ratio: int,
    records: int,
    seed: int = 42,
    scale: int = 512,
) -> Tuple[LocalityTracker, LocalityTracker]:
    """Metadata replay of one workload through a page cache sized at
    footprint/``cache_ratio``, recording the Fig. 5 (read) and Fig. 6
    (write) locality trackers.

    This reproduces the measurement the paper makes on its baseline: for
    every page read from flash, which fraction of its lines did the host
    touch while it was resident; for every page flushed, which fraction
    was dirty.
    """
    model = get_model(workload, scale=scale, seed=seed)
    # One generation per workload: the trace is identical across the
    # cache ratios, so route it through the runner's memo (vectorized
    # path) instead of re-synthesising it for every ratio.
    traces, _mlp = _traces_for(workload, 1, records, scale, seed)
    trace = traces[0]
    cache_pages = max(1, model.pages // cache_ratio)
    cache = SetAssociativePageCache(cache_pages, ways=16)
    reads = LocalityTracker()
    writes = LocalityTracker()

    def retire(entry) -> None:
        reads.record(entry.lines_touched)
        if entry.dirty:
            writes.record(entry.lines_dirty)

    for _gap, is_write, address in trace:
        page = address // PAGE_SIZE
        line = (address // 64) % CACHELINES_PER_PAGE
        entry = cache.lookup(page, touch_line=line)
        if entry is None:
            victim = cache.insert(page, touch_line=line)
            if victim is not None:
                retire(victim)
            entry = cache.peek(page)
        if is_write:
            entry.dirty_mask |= 1 << line
    for entry in list(cache.entries()):
        retire(entry)
    return reads, writes


def fig5_read_locality(
    workloads: Optional[Sequence[str]] = None,
    ratios: Sequence[int] = (2, 8, 32, 128),
    records: Optional[int] = None,
) -> Dict[str, Dict[int, Dict[str, object]]]:
    """Fig. 5: CDF of cacheline-touch ratios of pages read from flash,
    for footprint:cache ratios 1:n.  The paper: most workloads touch
    <40% of lines in >75% of pages."""
    workloads = list(workloads or ["bc", "dlrm", "radix", "ycsb"])
    records = records or default_records() * 4
    out: Dict[str, Dict[int, Dict[str, object]]] = {}
    for wl in workloads:
        out[wl] = {}
        for ratio in ratios:
            reads, _writes = _replay_locality(wl, ratio, records)
            out[wl][ratio] = {
                "cdf": reads.cdf(),
                "pages_below_40pct": reads.fraction_of_pages_below(0.4),
                "mean_ratio": reads.mean_ratio(),
            }
    return out


def fig6_write_locality(
    workloads: Optional[Sequence[str]] = None,
    ratios: Sequence[int] = (2, 8, 32, 128),
    records: Optional[int] = None,
) -> Dict[str, Dict[int, Dict[str, object]]]:
    """Fig. 6: CDF of dirty-line ratios of pages flushed to flash."""
    workloads = list(workloads or ["bc", "dlrm", "radix", "ycsb"])
    records = records or default_records() * 4
    out: Dict[str, Dict[int, Dict[str, object]]] = {}
    for wl in workloads:
        out[wl] = {}
        for ratio in ratios:
            _reads, writes = _replay_locality(wl, ratio, records)
            out[wl][ratio] = {
                "cdf": writes.cdf(),
                "pages_below_40pct": writes.fraction_of_pages_below(0.4),
                "mean_ratio": writes.mean_ratio(),
            }
    return out
