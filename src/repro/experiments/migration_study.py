"""Fig. 23: alternative page migration mechanisms (§VI-H).

Compares SkyByte's per-page-counter promotion (CP / Full) against TPP's
sampling-based promotion (CT / WCT) and AstriFlash's host-DRAM-as-cache
organisation, all normalized to SkyByte-C.  Paper shape: CP edges out CT
(sampling is less accurate), CP beats AstriFlash-CXL (fully-associative
hot-page placement vs set-associative on-demand paging), WCT shows the
write log composes with TPP, and Full wins overall.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.orchestrator import run_sweep, sweep_product
from repro.experiments.runner import default_records
from repro.variants import MIGRATION_VARIANTS
from repro.workloads.suites import WORKLOAD_NAMES


def fig23_migration_mechanisms(
    workloads: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 23: normalized execution time, SkyByte-C = 1.0 (lower is
    better)."""
    workloads = list(workloads or WORKLOAD_NAMES)
    variants = list(variants or MIGRATION_VARIANTS)
    records = records or default_records()
    sweep = iter(run_sweep(
        sweep_product(workloads, variants, records_per_thread=records),
        jobs=jobs,
        cache=cache,
        backend=backend,
        progress=progress,
        policy=policy,
    ))
    rows: Dict[str, Dict[str, float]] = {}
    for wl in workloads:
        base = None
        per_variant: Dict[str, float] = {}
        for variant in variants:
            r = next(sweep)
            if base is None:
                base = r
            per_variant[variant] = 1.0 / max(r.speedup_over(base), 1e-12)
        rows[wl] = per_variant
    return rows
