"""TCP/JSON sweep worker: the remote half of the distributed backend.

``python -m repro worker`` turns any host that can import this package
into sweep capacity.  A worker speaks the newline-delimited JSON
protocol of :mod:`repro.experiments.backends`: it announces itself with
a ``hello``, then answers each ``job`` message with a ``result`` until
the coordinator says ``bye`` (or the connection closes).

Three ways to wire a worker to a coordinator:

* ``--listen [HOST:]PORT`` -- bind and serve coordinator connections
  one after another (the coordinator dials with ``--workers``);
* ``--listen [HOST:]PORT --register REGHOST:REGPORT`` -- additionally
  announce the bound address to a worker registry (``python -m repro
  registry``; see :mod:`repro.experiments.registry`) and heartbeat it,
  so coordinators discover this worker with ``--registry`` instead of
  a static address list -- including mid-sweep (elastic join).  When
  the bound host is not what coordinators should dial (``0.0.0.0``,
  NAT), override the announced address with ``--announce HOST:PORT``;
* ``--connect HOST:PORT`` -- dial a listening coordinator
  (``DistributedBackend(listen=...)``), retrying briefly so workers can
  be started before the sweep.  After each sweep the worker redials, so
  a coordinator running several sweeps (``repro figures --listen ...``)
  keeps its workers; when the coordinator closes its listener the
  redial is refused and the worker exits cleanly.

Workers execute cells through exactly the same
:func:`~repro.experiments.orchestrator._execute_job` path as the local
backends, so results are byte-identical wherever a cell runs.  Passing
``cache`` (``--cache-dir``) lets workers on a shared filesystem consult
and feed one content-addressed result cache; the cache's advisory file
locking keeps concurrent workers safe.

A cell that raises on the worker is reported back (``ok: false`` plus
the traceback) and aborts the coordinator's sweep; the worker itself
survives and keeps serving.
"""

from __future__ import annotations

import os
import socket
import sys
import time
import traceback
from typing import Optional, TextIO, Tuple

from repro.experiments import backends
from repro.experiments.orchestrator import ResultCache, _execute_job


def serve_connection(
    sock: socket.socket,
    cache: Optional[ResultCache] = None,
) -> Tuple[int, int]:
    """Serve one coordinator connection to completion.

    Returns ``(cells_served, cells_answered_from_cache)``.
    """
    rfile = sock.makefile("r", encoding="utf-8")
    backends.send_msg(
        sock,
        {"type": "hello", "version": backends.PROTOCOL_VERSION, "pid": os.getpid()},
    )
    served = 0
    from_cache = 0
    while True:
        message = backends.recv_msg(rfile)
        if message is None or message.get("type") == "bye":
            return served, from_cache
        reply = {"type": "result", "id": message.get("id")}
        if message.get("type") != "job":
            reply.update(
                ok=False,
                error=f"unexpected message type {message.get('type')!r}",
            )
            backends.send_msg(sock, reply)
            continue
        try:
            job = backends.job_from_wire(message)
            cached = cache.get(job.key()) if cache is not None else None
            if cached is not None:
                from_cache += 1
                reply.update(ok=True, cached=True, result=cached.to_dict())
            else:
                result = _execute_job(job)
                if cache is not None:
                    cache.put(job.key(), result)
                reply.update(ok=True, cached=False, result=result.to_dict())
        except Exception:  # noqa: BLE001 - the coordinator decides what's fatal
            reply.update(ok=False, error=traceback.format_exc())
        served += 1
        backends.send_msg(sock, reply)


def run_worker(
    connect: Optional[str] = None,
    listen: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    retries: int = 40,
    retry_delay: float = 0.25,
    once: bool = False,
    register: Optional[str] = None,
    announce: Optional[str] = None,
    heartbeat: float = 2.0,
    out: TextIO = sys.stdout,
) -> int:
    """Entry point behind ``python -m repro worker``; returns an exit code.

    Exactly one of ``connect``/``listen`` must be given.  ``once`` makes
    a listening worker exit after its first coordinator connection
    (handy for smoke tests and CI).  ``register`` (listen mode only)
    announces the worker to a registry at that address, heartbeating
    every ``heartbeat`` seconds; ``announce`` overrides the announced
    address when the bound one is not dialable from the coordinator.
    """
    if (connect is None) == (listen is None):
        raise ValueError("exactly one of connect= or listen= is required")
    if register is not None and listen is None:
        raise ValueError("--register needs --listen (a registry hands "
                         "out dialable worker addresses)")

    if connect is not None:
        address = backends.parse_address(connect)
        connections = 0
        while True:
            # Before the first connection the coordinator may not be up
            # yet, so dial patiently; afterwards, a refused connection
            # means the coordinator closed its listener -- a clean exit.
            # (Between two sweeps the listener is still open: the redial
            # parks in its backlog and serves the next sweep, so one
            # worker survives a whole ``figures`` run.)
            budget = max(1, retries) if connections == 0 else 1
            sock = None
            last_error: Optional[OSError] = None
            for _attempt in range(budget):
                try:
                    sock = socket.create_connection(address)
                    break
                except OSError as exc:
                    last_error = exc
                    if _attempt + 1 < budget:
                        time.sleep(retry_delay)
            if sock is None:
                if connections:
                    return 0  # coordinator is gone; work is done
                print(
                    f"worker: could not reach coordinator at "
                    f"{address[0]}:{address[1]}: {last_error}",
                    file=sys.stderr,
                )
                return 1
            try:
                with sock:
                    served, from_cache = serve_connection(sock, cache)
            except OSError:
                # The redial parked in the listener's backlog and the
                # coordinator closed it (connection reset): clean exit,
                # same as a refused redial.
                if connections:
                    return 0
                raise
            connections += 1
            print(
                f"worker: served {served} cell(s) ({from_cache} from cache) "
                f"for {address[0]}:{address[1]}",
                file=out,
                flush=True,
            )
            if once:
                return 0

    server = socket.create_server(backends.parse_address(listen))
    host, port = server.getsockname()[:2]
    # Scripts parse this line to learn the bound port (PORT may be 0).
    print(f"worker: listening on {host}:{port}", file=out, flush=True)
    announcer = None
    if register is not None:
        from repro.experiments.registry import Announcer

        announcer = Announcer(
            register, announce or (host, port), interval=heartbeat
        ).start()
        print(f"worker: announcing {announcer.address} to registry "
              f"{announcer.registry[0]}:{announcer.registry[1]}",
              file=out, flush=True)
    try:
        with server:
            while True:
                sock, peer = server.accept()
                try:
                    with sock:
                        served, from_cache = serve_connection(sock, cache)
                except OSError as exc:
                    # A coordinator that hung up mid-cell (cell timeout,
                    # crash) must not take the worker down with it: log
                    # and serve the next coordinator.
                    print(
                        "worker: coordinator %s:%d dropped mid-cell (%s)"
                        % (*peer[:2], exc),
                        file=sys.stderr,
                        flush=True,
                    )
                    if once:
                        return 1
                    continue
                print(
                    "worker: served %d cell(s) (%d from cache) for %s:%d"
                    % (served, from_cache, *peer[:2]),
                    file=out,
                    flush=True,
                )
                if once:
                    return 0
    finally:
        if announcer is not None:
            announcer.close()
