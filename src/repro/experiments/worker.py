"""TCP/JSON sweep worker: the remote half of the distributed backend.

``python -m repro worker`` turns any host that can import this package
into sweep capacity.  A worker speaks the newline-delimited JSON
protocol of :mod:`repro.experiments.backends`: it announces itself with
a ``hello``, then answers each ``job`` message with a ``result`` until
the coordinator says ``bye`` (or the connection closes).

Three ways to wire a worker to a coordinator:

* ``--listen [HOST:]PORT`` -- bind and serve coordinator connections
  one after another (the coordinator dials with ``--workers``);
* ``--listen [HOST:]PORT --register REGHOST:REGPORT`` -- additionally
  announce the bound address to a worker registry (``python -m repro
  registry``; see :mod:`repro.experiments.registry`) and heartbeat it,
  so coordinators discover this worker with ``--registry`` instead of
  a static address list -- including mid-sweep (elastic join).  When
  the bound host is not what coordinators should dial (``0.0.0.0``,
  NAT), override the announced address with ``--announce HOST:PORT``;
* ``--connect HOST:PORT`` -- dial a listening coordinator
  (``DistributedBackend(listen=...)``), retrying briefly so workers can
  be started before the sweep.  After each sweep the worker redials, so
  a coordinator running several sweeps (``repro figures --listen ...``)
  keeps its workers; when the coordinator closes its listener the
  redial is refused and the worker exits cleanly.

Workers execute cells through exactly the same
:func:`~repro.experiments.orchestrator._execute_job` path as the local
backends, so results are byte-identical wherever a cell runs.  Passing
``cache`` (``--cache-dir``) lets workers on a shared filesystem consult
and feed one content-addressed result cache; the cache's advisory file
locking keeps concurrent workers safe.

A cell that raises on the worker is reported back (``ok: false`` plus
the traceback) and aborts the coordinator's sweep; the worker itself
survives and keeps serving.

On POSIX hosts each cell runs in a forked child process so it is
**preemptible**: when the coordinator abandons the cell (its
``--cell-timeout`` elapsed, or it hung up), the worker kills the child
and frees the slot immediately instead of simulating the doomed cell
to completion.  The coordinator signals this with a ``cancel`` wire
message before closing; an EOF mid-cell means the same thing.  Hosts
without ``fork`` fall back to in-process execution (no preemption).
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import queue
import select
import socket
import sys
import time
import traceback
from typing import Dict, Optional, TextIO, Tuple

from repro.experiments import backends
from repro.experiments.orchestrator import ResultCache, _execute_job
from repro.obs import get_logger, span
from repro.obs.spans import SpanContext, activate, deactivate

log = get_logger("worker")

#: Fork start-method context, or None where unavailable (Windows).
#: Fork (not spawn) so a cell child inherits the live module state --
#: cheap to start, and test monkeypatching carries into the child.
_FORK_CTX = (
    multiprocessing.get_context("fork")
    if "fork" in multiprocessing.get_all_start_methods()
    else None
)

#: Seconds a worker waits before re-dialing the same steal hint.
STEAL_REDIAL_BACKOFF = 5.0


@contextlib.contextmanager
def _cell_scope(message: Dict[str, object], job):
    """Adopt the coordinator's trace context around one cell.

    The coordinator ships a per-cell ``trace`` context alongside each
    job (see :meth:`DistributedBackend._serve_connection`); activating
    it makes this worker's ``worker.cell`` span -- and anything logged
    under it -- a child of the coordinator's sweep span, so one trace id
    follows the cell across the wire.  A missing/malformed context just
    starts a fresh root here.
    """
    ctx = SpanContext.from_wire(message.get("trace"))
    token = activate(ctx) if ctx is not None else None
    try:
        with span("worker.cell", workload=job.workload, variant=job.variant):
            yield
    finally:
        if token is not None:
            deactivate(token)


def _cell_child(conn, message: Dict[str, object],
                sock: Optional[socket.socket] = None) -> None:
    """Forked child: execute one wire-format job, ship the reply dict."""
    if sock is not None:
        # Drop the inherited coordinator connection: were the worker
        # parent SIGKILLed mid-cell, this orphan's dup would otherwise
        # hold the connection open and the coordinator would not see
        # EOF (and so not retry the cell) until the orphan finished.
        try:
            sock.close()
        except OSError:
            pass
    try:
        job = backends.job_from_wire(message)
        result = _execute_job(job)
        conn.send({"ok": True, "result": result.to_dict()})
    except Exception:  # noqa: BLE001 - the parent relays it to the coordinator
        conn.send({"ok": False, "error": traceback.format_exc()})
    finally:
        conn.close()


def _execute_preemptible(
    sock: socket.socket, rfile, message: Dict[str, object]
) -> Tuple[str, Optional[Dict[str, object]]]:
    """Run one cell in a killable child, watching the coordinator.

    Returns ``("reply", payload)`` when the cell finished (``payload``
    has ``ok``/``result`` or ``ok``/``error``), ``("cancelled", None)``
    when the coordinator sent ``cancel`` (no reply owed -- it already
    gave up on this cell), or ``("eof", None)`` when the coordinator
    hung up (the connection is over).  The child is terminated on every
    non-reply path.

    Selecting on the raw socket next to the buffered reader is safe
    *here* because the protocol is strictly request/response: at this
    point the coordinator's ``job`` line has been consumed and it sends
    nothing further until our reply -- except a ``cancel``/hang-up,
    which is exactly what the select is watching for.
    """
    assert _FORK_CTX is not None
    parent_conn, child_conn = _FORK_CTX.Pipe(duplex=False)
    proc = _FORK_CTX.Process(
        target=_cell_child, args=(child_conn, message, sock), daemon=True
    )
    proc.start()
    child_conn.close()
    try:
        while True:
            ready, _, _ = select.select([sock, parent_conn], [], [])
            if parent_conn in ready:
                try:
                    payload = parent_conn.recv()
                except EOFError:
                    proc.join(timeout=5.0)
                    payload = {
                        "ok": False,
                        "error": "cell child exited without a result "
                                 f"(exitcode {proc.exitcode})",
                    }
                return ("reply", payload)
            if sock in ready:
                note = backends.recv_msg(rfile)
                if note is None:
                    return ("eof", None)
                if note.get("type") in ("cancel", "bye"):
                    return ("cancelled", None)
                # Anything else mid-cell is a protocol violation from a
                # confused coordinator; keep simulating, it can only
                # recover by cancelling or hanging up.
    finally:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
        if proc.is_alive():  # a child ignoring SIGTERM gets SIGKILL
            proc.kill()
            proc.join(timeout=5.0)
        parent_conn.close()


def serve_connection(
    sock: socket.socket,
    cache: Optional[ResultCache] = None,
) -> Tuple[int, int]:
    """Serve one coordinator connection to completion.

    Returns ``(cells_served, cells_answered_from_cache)``.
    """
    rfile = sock.makefile("r", encoding="utf-8")
    backends.send_msg(
        sock,
        {"type": "hello", "version": backends.PROTOCOL_VERSION, "pid": os.getpid()},
    )
    served = 0
    from_cache = 0
    while True:
        message = backends.recv_msg(rfile)
        if message is None or message.get("type") == "bye":
            return served, from_cache
        reply = {"type": "result", "id": message.get("id")}
        if message.get("type") != "job":
            reply.update(
                ok=False,
                error=f"unexpected message type {message.get('type')!r}",
            )
            backends.send_msg(sock, reply)
            continue
        try:
            job = backends.job_from_wire(message)
            with _cell_scope(message, job):
                cached = cache.get(job.key()) if cache is not None else None
                if cached is not None:
                    from_cache += 1
                    reply.update(ok=True, cached=True,
                                 result=cached.to_dict())
                elif _FORK_CTX is not None:
                    outcome, payload = _execute_preemptible(
                        sock, rfile, message)
                    if outcome == "eof":
                        return served, from_cache
                    if outcome == "cancelled":
                        # The coordinator abandoned this cell; it expects
                        # no reply and has retried elsewhere.  The slot is
                        # free again -- serve whatever comes next.
                        continue
                    if payload.get("ok"):
                        result = backends.RunResult.from_dict(
                            payload["result"])
                        if cache is not None:
                            cache.put(job.key(), result)
                        reply.update(ok=True, cached=False,
                                     result=payload["result"])
                    else:
                        reply.update(ok=False,
                                     error=str(payload.get("error")))
                else:
                    result = _execute_job(job)
                    if cache is not None:
                        cache.put(job.key(), result)
                    reply.update(ok=True, cached=False,
                                 result=result.to_dict())
        except Exception:  # noqa: BLE001 - the coordinator decides what's fatal
            reply.update(ok=False, error=traceback.format_exc())
        served += 1
        backends.send_msg(sock, reply)


def run_worker(
    connect: Optional[str] = None,
    listen: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    retries: int = 40,
    retry_delay: float = 0.25,
    once: bool = False,
    register: Optional[str] = None,
    announce: Optional[str] = None,
    heartbeat: float = 2.0,
    out: TextIO = sys.stdout,
) -> int:
    """Entry point behind ``python -m repro worker``; returns an exit code.

    Exactly one of ``connect``/``listen`` must be given.  ``once`` makes
    a listening worker exit after its first coordinator connection
    (handy for smoke tests and CI).  ``register`` (listen mode only)
    announces the worker to a registry at that address, heartbeating
    every ``heartbeat`` seconds; ``announce`` overrides the announced
    address when the bound one is not dialable from the coordinator.
    """
    if (connect is None) == (listen is None):
        raise ValueError("exactly one of connect= or listen= is required")
    if register is not None and listen is None:
        raise ValueError("--register needs --listen (a registry hands "
                         "out dialable worker addresses)")

    if connect is not None:
        address = backends.parse_address(connect)
        connections = 0
        while True:
            # Before the first connection the coordinator may not be up
            # yet, so dial patiently; afterwards, a refused connection
            # means the coordinator closed its listener -- a clean exit.
            # (Between two sweeps the listener is still open: the redial
            # parks in its backlog and serves the next sweep, so one
            # worker survives a whole ``figures`` run.)
            budget = max(1, retries) if connections == 0 else 1
            sock = None
            last_error: Optional[OSError] = None
            for _attempt in range(budget):
                try:
                    sock = socket.create_connection(address)
                    break
                except OSError as exc:
                    last_error = exc
                    if _attempt + 1 < budget:
                        time.sleep(retry_delay)
            if sock is None:
                if connections:
                    return 0  # coordinator is gone; work is done
                log.error("coordinator_unreachable",
                          address=f"{address[0]}:{address[1]}",
                          error=str(last_error))
                return 1
            try:
                with sock:
                    served, from_cache = serve_connection(sock, cache)
            except OSError:
                # The redial parked in the listener's backlog and the
                # coordinator closed it (connection reset): clean exit,
                # same as a refused redial.
                if connections:
                    return 0
                raise
            connections += 1
            print(
                f"worker: served {served} cell(s) ({from_cache} from cache) "
                f"for {address[0]}:{address[1]}",
                file=out,
                flush=True,
            )
            if once:
                return 0

    server = socket.create_server(backends.parse_address(listen))
    host, port = server.getsockname()[:2]
    # Scripts parse this line to learn the bound port (PORT may be 0).
    print(f"worker: listening on {host}:{port}", file=out, flush=True)
    announcer = None
    # Work-steal hints from the registry's registered ack: coordinator
    # dial-in addresses this worker should offer itself to.  Filled by
    # the announcer thread, drained by the accept loop below.
    hints: "queue.Queue[str]" = queue.Queue()
    if register is not None:
        from repro.experiments.registry import Announcer

        announcer = Announcer(
            register, announce or (host, port), interval=heartbeat,
            on_hints=lambda addresses: [hints.put(a) for a in addresses],
        ).start()
        print(f"worker: announcing {announcer.address} to registry "
              f"{announcer.registry[0]}:{announcer.registry[1]}",
              file=out, flush=True)
        # Hints can only ever arrive while registered, so the accept
        # call must wake up to drain them.
        server.settimeout(0.5)
    recent_steals: Dict[str, float] = {}
    try:
        with server:
            while True:
                # Steal-dial hinted coordinators first: a worker that
                # just joined mid-sweep reaches the sweep through its
                # own dial instead of waiting to be discovered.
                try:
                    hint = hints.get_nowait()
                except queue.Empty:
                    hint = None
                if hint is not None:
                    served = _steal_dial(hint, cache, recent_steals, out)
                    if once and served:
                        return 0
                    continue
                try:
                    sock, peer = server.accept()
                except socket.timeout:
                    continue
                try:
                    with sock:
                        served, from_cache = serve_connection(sock, cache)
                except OSError as exc:
                    # A coordinator that hung up mid-cell (cell timeout,
                    # crash) must not take the worker down with it: log
                    # and serve the next coordinator.
                    log.warning("coordinator_dropped_mid_cell",
                                coordinator="%s:%d" % peer[:2],
                                error=str(exc))
                    if once:
                        return 1
                    continue
                print(
                    "worker: served %d cell(s) (%d from cache) for %s:%d"
                    % (served, from_cache, *peer[:2]),
                    file=out,
                    flush=True,
                )
                if once:
                    return 0
    finally:
        if announcer is not None:
            announcer.close()


def _steal_dial(
    hint: str,
    cache: Optional[ResultCache],
    recent: Dict[str, float],
    out: TextIO,
) -> bool:
    """Dial one hinted coordinator and serve it; True if cells flowed.

    Best-effort by design: the coordinator also discovers this worker
    through its registry watch, so a refused or stale hint costs
    nothing but this dial.  ``recent`` rate-limits repeat dials of the
    same address (re-announcements after a registry restart re-deliver
    hints).
    """
    try:
        address = backends.parse_address(hint)
    except ValueError:
        return False
    label = "%s:%d" % address
    now = time.monotonic()
    if now - recent.get(label, -1e9) < STEAL_REDIAL_BACKOFF:
        return False
    recent[label] = now
    try:
        sock = socket.create_connection(address, timeout=5.0)
    except OSError:
        return False
    try:
        with sock:
            served, from_cache = serve_connection(sock, cache)
    except OSError as exc:
        log.warning("stolen_coordinator_dropped_mid_cell",
                    coordinator=label, error=str(exc))
        return False
    print(
        f"worker: served {served} cell(s) ({from_cache} from cache) "
        f"for {label} (steal hint)",
        file=out,
        flush=True,
    )
    return served > 0
