"""Worker registry: discovery and liveness for elastic distributed sweeps.

The static ``--workers HOST:PORT,...`` lists of
:class:`~repro.experiments.backends.DistributedBackend` require the
operator to know every worker up front and to restart the sweep when
the fleet changes.  The registry removes both constraints:

* a :class:`Registry` is a tiny TCP service (``python -m repro
  registry``) workers and coordinators both know the address of;
* each worker (``python -m repro worker --listen PORT --register
  REGHOST:REGPORT``) runs an :class:`Announcer`: a background thread
  that holds a connection to the registry, announces the worker's
  dialable address, and heartbeats on an interval.  A worker whose
  connection drops *or* whose heartbeats stop (a SIGKILLed process
  keeps no promises) is deregistered after :attr:`Registry.stale_after`
  seconds;
* a coordinator (``DistributedBackend(registry="HOST:PORT")``, CLI
  ``--registry``) polls :func:`fetch_workers` while a sweep is running
  and dials every live worker it is not already connected to -- so
  workers can join mid-sweep and immediately pick up queued cells, and
  a worker that dies simply stops being re-dialed while its in-flight
  cell is retried elsewhere (see the per-cell
  :class:`~repro.experiments.backends.CellPolicy`).

The registry speaks the same newline-delimited JSON protocol (and
:data:`~repro.experiments.backends.PROTOCOL_VERSION`) as the sweep wire
protocol.  Four message flows:

* worker -> registry: ``{"type": "announce", "address": "H:P"}`` then
  ``{"type": "heartbeat"}`` every ``interval`` seconds.  The
  ``registered`` ack carries ``steal``: dial-in addresses of
  coordinators currently hungry for workers (see ``watch`` below), so
  a worker joining mid-sweep can dial straight into the sweep instead
  of waiting to be discovered;
* coordinator -> registry: ``{"type": "workers"}`` answered with
  ``{"type": "workers", "workers": ["H:P", ...]}`` (one-shot);
* coordinator -> registry: ``{"type": "watch"}`` answered with the
  same ``workers`` message immediately and then **pushed** again on
  every membership change (join, disconnect, stale prune) until the
  subscriber hangs up -- this replaces 1 s coordinator polling with
  push dispatch.  An optional ``steal`` field carries the
  coordinator's own dial-in listener address, advertised to workers in
  announce acks for as long as the watch is open;
* registry -> either: ``{"ok": false, "error": ...}`` on a bad request.

The registry holds **no sweep state** -- it is a pure membership view,
safe to restart at any time (announcers reconnect with backoff, and a
coordinator that cannot reach it keeps working with the workers it
already dialed).  See ``docs/DISTRIBUTED.md`` for operator guidance.
"""

from __future__ import annotations

import socket
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, TextIO, Tuple, Union

from repro.experiments.backends import (
    PROTOCOL_VERSION,
    parse_address,
    recv_msg,
    send_msg,
)
from repro.obs.log import JsonLinesLogger

#: Default seconds between worker heartbeats.
HEARTBEAT_INTERVAL = 2.0

#: Default seconds without a heartbeat before a worker is presumed dead.
#: Three missed beats: one lost message is noise, three is a corpse.
STALE_AFTER = 3 * HEARTBEAT_INTERVAL


def format_address(address: Union[str, Tuple[str, int]]) -> str:
    """Canonical ``host:port`` text for an address in either form."""
    host, port = parse_address(address)
    return f"{host}:{port}"


class Registry:
    """The membership service: accepts announcements, answers queries.

    ``listen`` is the bind address (port 0 picks a free port; see
    :attr:`address`).  Use as a context manager, or :meth:`start` /
    :meth:`close` explicitly; :meth:`serve_forever` blocks (the CLI
    path).  ``log`` receives one line per join/leave for operator logs.
    """

    def __init__(
        self,
        listen: Union[str, Tuple[str, int]] = "127.0.0.1:0",
        stale_after: float = STALE_AFTER,
        log: Optional[TextIO] = None,
    ) -> None:
        self.stale_after = stale_after
        self._log = log
        self._logger = (JsonLinesLogger("registry", stream=log)
                        if log is not None else None)
        self._server = socket.create_server(parse_address(listen))
        self._alive: Dict[str, float] = {}  # address -> last-seen monotonic
        #: address -> connection token of the current registrant, so a
        #: dying *older* connection for an address cannot deregister a
        #: newer live one.
        self._owner: Dict[str, int] = {}
        self._conn_seq = 0
        self._lock = threading.Lock()
        #: Open ``watch`` subscriber sockets, pushed a fresh workers
        #: list on every membership change.
        self._watchers: List[socket.socket] = []
        #: Coordinator dial-in addresses advertised to announcing
        #: workers ("steal" hints), keyed to the watch socket whose
        #: lifetime bounds them.
        self._steal: Dict[str, socket.socket] = {}
        #: Serializes pushes: a watcher socket is written to both by
        #: its own serve thread and by whichever thread changed the
        #: membership.
        self._push_lock = threading.Lock()
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._janitor_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) the registry is bound to."""
        return self._server.getsockname()[:2]

    def __enter__(self) -> "Registry":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _say(self, event: str, **fields: object) -> None:
        if self._logger is not None:
            self._logger.info(event, **fields)

    # -- membership --------------------------------------------------------

    def _prune_locked(self) -> bool:
        deadline = time.monotonic() - self.stale_after
        dropped = False
        for address, seen in list(self._alive.items()):
            if seen < deadline:
                del self._alive[address]
                self._owner.pop(address, None)
                self._say("worker_stale", address=address)
                dropped = True
        return dropped

    def workers(self) -> List[str]:
        """Live worker addresses (stale entries pruned), sorted."""
        with self._lock:
            self._prune_locked()
            return sorted(self._alive)

    def steal_hints(self) -> List[str]:
        """Coordinator dial-in addresses with an open watch, sorted."""
        with self._lock:
            return sorted(self._steal)

    def _notify_watchers(self) -> None:
        """Push the current workers list to every subscriber.

        A subscriber whose send fails is dropped and closed (closing
        also unblocks its serve thread's pending read).  Membership
        changes are rare next to cell traffic, so re-sending the full
        list keeps subscribers trivially convergent -- no deltas to
        miss.
        """
        payload = {"type": "workers", "ok": True, "workers": self.workers()}
        with self._lock:
            watchers = list(self._watchers)
        for sock in watchers:
            try:
                with self._push_lock:
                    send_msg(sock, payload)
            except OSError:
                self._drop_watcher(sock)

    def _drop_watcher(self, sock: socket.socket) -> None:
        with self._lock:
            if sock in self._watchers:
                self._watchers.remove(sock)
            for address, owner in list(self._steal.items()):
                if owner is sock:
                    del self._steal[address]
        try:
            sock.close()
        except OSError:
            pass

    def _janitor_loop(self) -> None:
        """Prune stale workers on a cadence and push the change.

        Lazy pruning (inside :meth:`workers`) was enough when every
        coordinator polled; push subscribers would never hear about a
        SIGKILLed worker without someone running the prune.
        """
        interval = max(min(self.stale_after / 3.0, 0.5), 0.05)
        while not self._stop.wait(interval):
            with self._lock:
                dropped = self._prune_locked()
            if dropped:
                self._notify_watchers()

    # -- server ------------------------------------------------------------

    def start(self) -> None:
        """Begin accepting connections on a daemon thread."""
        if self._accept_thread is not None:
            return
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="registry-accept", daemon=True
        )
        self._accept_thread.start()
        self._janitor_thread = threading.Thread(
            target=self._janitor_loop, name="registry-janitor", daemon=True
        )
        self._janitor_thread.start()
        host, port = self.address
        if self._log is not None:
            # Plain text, not JSON: scripts parse this line to learn
            # the bound port when the listen spec asked for port 0.
            print(f"registry: listening on {host}:{port}",
                  file=self._log, flush=True)

    def serve_forever(self) -> None:
        """Block serving until :meth:`close` (Ctrl-C exits cleanly)."""
        self.start()
        try:
            while not self._stop.wait(0.5):
                pass
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            watchers = list(self._watchers)
        for sock in watchers:
            self._drop_watcher(sock)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        if self._janitor_thread is not None:
            self._janitor_thread.join(timeout=2.0)
            self._janitor_thread = None

    def _accept_loop(self) -> None:
        self._server.settimeout(0.2)
        while not self._stop.is_set():
            try:
                sock, _peer = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(sock,),
                name="registry-conn", daemon=True,
            ).start()

    def _serve(self, sock: socket.socket) -> None:
        """One connection: an announcing worker or a one-shot query."""
        address: Optional[str] = None
        token = 0
        try:
            # Generous per-message timeout: an announcer heartbeats far
            # more often than this, so a silent peer is a dead peer.
            sock.settimeout(max(self.stale_after, 1.0))
            rfile = sock.makefile("r", encoding="utf-8")
            first = recv_msg(rfile)
            if not first:
                return
            version = first.get("version", PROTOCOL_VERSION)
            if version != PROTOCOL_VERSION:
                send_msg(sock, {"ok": False,
                                "error": f"protocol {version} != "
                                         f"{PROTOCOL_VERSION}"})
                return
            if first.get("type") == "workers":
                send_msg(sock, {"type": "workers", "ok": True,
                                "workers": self.workers()})
                return
            if first.get("type") == "watch":
                self._serve_watch(sock, rfile, first)
                return
            if first.get("type") != "announce" or not first.get("address"):
                send_msg(sock, {"ok": False,
                                "error": "expected announce, watch, "
                                         "or workers"})
                return
            address = format_address(str(first["address"]))
            with self._lock:
                self._conn_seq += 1
                token = self._conn_seq
                self._alive[address] = time.monotonic()
                self._owner[address] = token
            self._say("worker_joined", address=address)
            send_msg(sock, {"type": "registered", "ok": True,
                            "steal": self.steal_hints()})
            self._notify_watchers()
            while True:
                message = recv_msg(rfile)  # heartbeats, until EOF
                if message is None:
                    return
                with self._lock:
                    # Unconditional: a worker pruned as stale (long GC
                    # pause, VM suspend) re-registers itself with its
                    # next heartbeat over the same connection, and
                    # re-claims ownership from any lingering older
                    # connection for its address.
                    self._alive[address] = time.monotonic()
                    self._owner[address] = token
        except OSError:
            pass
        finally:
            if address is not None:
                with self._lock:
                    # Only the current registrant deregisters on
                    # disconnect; a stale duplicate connection dying
                    # must not drop a live, heartbeating worker.
                    if self._owner.get(address) == token:
                        self._alive.pop(address, None)
                        self._owner.pop(address, None)
                        left = True
                    else:
                        left = False
                if left:
                    self._say("worker_left", address=address)
                    self._notify_watchers()
            try:
                sock.close()
            except OSError:
                pass

    def _serve_watch(self, sock: socket.socket, rfile,
                     first: Dict[str, object]) -> None:
        """One push subscriber: initial list now, a push per change.

        The subscriber sends nothing further (its reads are one-way
        pushes), so the per-message timeout set for announce traffic is
        lifted -- a silent watcher is just an idle coordinator, and a
        dead one is detected when a push fails.  An optional ``steal``
        address in the subscribe message is advertised to announcing
        workers for the lifetime of this subscription.
        """
        sock.settimeout(None)
        steal: Optional[str] = None
        if first.get("steal"):
            steal = format_address(str(first["steal"]))
        with self._lock:
            self._watchers.append(sock)
            if steal is not None:
                self._steal[steal] = sock
        if steal:
            self._say("watcher_joined", steal=steal)
        else:
            self._say("watcher_joined")
        try:
            with self._push_lock:
                send_msg(sock, {"type": "workers", "ok": True,
                                "workers": self.workers()})
            while True:
                if recv_msg(rfile) is None:  # pings tolerated, EOF ends
                    return
        except OSError:
            pass
        finally:
            self._drop_watcher(sock)
            if steal:
                self._say("watcher_left", steal=steal)
            else:
                self._say("watcher_left")


def fetch_workers(
    registry: Union[str, Tuple[str, int]],
    timeout: float = 5.0,
) -> List[str]:
    """The registry's current live worker list (one-shot query).

    Raises OSError when the registry is unreachable and RuntimeError
    when it rejects the query -- callers decide whether that is fatal
    (sweep start) or transient (mid-sweep poll).
    """
    sock = socket.create_connection(parse_address(registry), timeout=timeout)
    with sock:
        rfile = sock.makefile("r", encoding="utf-8")
        send_msg(sock, {"type": "workers", "version": PROTOCOL_VERSION})
        reply = recv_msg(rfile)
    if not reply or not reply.get("ok"):
        error = (reply or {}).get("error", "no reply")
        raise RuntimeError(f"registry {format_address(registry)}: {error}")
    return [str(w) for w in reply.get("workers", [])]


class Announcer:
    """A worker's registry client: announce once, heartbeat forever.

    Runs on a daemon thread; survives registry restarts by reconnecting
    with a capped backoff.  ``address`` is the worker's *dialable*
    address as coordinators should see it (a worker bound to
    ``0.0.0.0`` must announce a reachable host -- the worker CLI's
    ``--announce`` override).
    """

    def __init__(
        self,
        registry: Union[str, Tuple[str, int]],
        address: Union[str, Tuple[str, int]],
        interval: float = HEARTBEAT_INTERVAL,
        on_hints: Optional[Callable[[List[str]], None]] = None,
    ) -> None:
        self.registry = parse_address(registry)
        self.address = format_address(address)
        self.interval = interval
        #: Called with the registry's work-steal hints (coordinator
        #: dial-in addresses) from each ``registered`` ack, so a worker
        #: joining mid-sweep can dial straight into active sweeps.
        self.on_hints = on_hints
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"announce-{self.address}", daemon=True
        )

    def start(self) -> "Announcer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _loop(self) -> None:
        backoff = min(self.interval, 0.5)
        while not self._stop.is_set():
            try:
                sock = socket.create_connection(self.registry, timeout=5.0)
            except OSError:
                # Registry down or not yet up: retry, capped backoff.
                if self._stop.wait(backoff):
                    return
                backoff = min(backoff * 2, 10.0)
                continue
            backoff = min(self.interval, 0.5)
            try:
                with sock:
                    rfile = sock.makefile("r", encoding="utf-8")
                    send_msg(sock, {
                        "type": "announce",
                        "version": PROTOCOL_VERSION,
                        "address": self.address,
                    })
                    ack = recv_msg(rfile)
                    if not ack or not ack.get("ok"):
                        return  # version mismatch etc.: do not spin
                    if self.on_hints is not None and ack.get("steal"):
                        self.on_hints(
                            [str(a) for a in ack["steal"]]
                        )
                    while not self._stop.wait(self.interval):
                        send_msg(sock, {"type": "heartbeat"})
                    return
            except OSError:
                continue  # connection lost: reconnect


def run_registry(
    listen: Union[str, Tuple[str, int]],
    stale_after: float = STALE_AFTER,
    out: TextIO = sys.stdout,
) -> int:
    """Entry point behind ``python -m repro registry``; blocks serving.

    Prints ``registry: listening on HOST:PORT`` first (scripts parse
    this line to learn the bound port when PORT was 0), then one line
    per worker join/leave.
    """
    with Registry(listen, stale_after=stale_after, log=out) as registry:
        registry.serve_forever()
    return 0
