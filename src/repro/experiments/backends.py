"""Pluggable sweep execution backends (local / threaded / distributed).

:func:`~repro.experiments.orchestrator.run_sweep` separates *what* to
simulate (the deduplicated list of pending cells) from *where* it runs.
A backend receives the pending ``(key, SweepJob)`` cells plus a
``finish(key, result)`` callback and must invoke the callback exactly
once per cell, always from the caller's thread:

* :class:`LocalProcessBackend` -- a ``ProcessPoolExecutor`` over
  ``jobs`` workers; with one worker (or one cell) it runs in-process.
  This is the default and reproduces the pre-backend behaviour exactly.
* :class:`ThreadBackend` -- a ``ThreadPoolExecutor``.  The simulator is
  pure Python so threads do not add CPU parallelism, but they skip
  process spawn/import costs, which wins for tiny smoke sweeps.
* :class:`DistributedBackend` -- fans cells out to worker processes
  (possibly on other hosts) over a newline-delimited TCP/JSON protocol.
  Workers are started with ``python -m repro worker`` (see
  :mod:`repro.experiments.worker`) and either *listen* for the
  coordinator to dial them (``--listen``, coordinator passes
  ``workers=[...]``), *dial in* to a listening coordinator
  (``--connect``, coordinator passes ``listen=...``), or are
  discovered through a **worker registry**
  (:mod:`repro.experiments.registry`; coordinator passes
  ``registry="HOST:PORT"``) which lets workers join and leave
  mid-sweep.

Fault tolerance on the distributed backend is governed by a per-cell
:class:`CellPolicy`: each cell attempt has a configurable timeout
(``REPRO_CELL_TIMEOUT``), a cell is retried on failure up to a bounded
retry budget (``REPRO_RETRY_BUDGET``) before the sweep fails with a
clear error, and a worker that keeps failing cells is quarantined (no
further cells, no re-dial) for the rest of the sweep.

Every backend funnels results through ``RunResult.to_dict()`` /
``from_dict()`` -- the same lossless serialization the result cache
uses -- so results are byte-identical no matter where a cell ran.

Environment knobs: ``REPRO_BENCH_BACKEND`` selects the default backend
(``local``, ``thread``, ``serial``, ``distributed[:HOST:PORT,...]``, or
``registry[:HOST:PORT]``), ``REPRO_BENCH_WORKERS`` supplies distributed
worker addresses, ``REPRO_REGISTRY`` the default registry address, and
``REPRO_CELL_TIMEOUT`` / ``REPRO_RETRY_BUDGET`` the reliability policy.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.experiments.runner import RunResult, default_records
from repro.obs import REGISTRY
from repro.obs.spans import SpanContext, current_context

if TYPE_CHECKING:  # pragma: no cover - import cycle is runtime-lazy
    from repro.experiments.orchestrator import SweepJob

JOBS_ENV = "REPRO_JOBS"
BACKEND_ENV = "REPRO_BENCH_BACKEND"
WORKERS_ENV = "REPRO_BENCH_WORKERS"
REGISTRY_ENV = "REPRO_REGISTRY"
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"
RETRY_BUDGET_ENV = "REPRO_RETRY_BUDGET"

#: Bumped on incompatible wire changes; coordinator and workers refuse
#: to talk across versions instead of desynchronizing mid-sweep.
PROTOCOL_VERSION = 1

PendingCell = Tuple[str, "SweepJob"]
FinishFn = Callable[[str, RunResult], None]
BackendLike = Union["SweepBackend", str, None]


def default_jobs() -> int:
    """Worker count when a sweep does not specify one (REPRO_JOBS, min 1)."""
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


@dataclass(frozen=True)
class CellPolicy:
    """Per-cell reliability policy for the distributed backend.

    ``cell_timeout``: seconds a single attempt may take on a worker
    before the coordinator abandons the connection and retries the cell
    elsewhere (None = unlimited; attempts on a cold worker include
    import/spawn time, so budget generously).

    ``retry_budget``: total attempts per cell -- failed replies, dead
    connections and timeouts all consume it.  Exhausting it fails the
    sweep with an error naming the cell and its failure history; work
    already cached/finished is kept (a rerun resumes from the cache).

    ``quarantine_after``: failed attempts attributed to one worker
    connection/address before that worker is quarantined: it gets no
    further cells and is never re-dialed during this sweep.  Defaults
    to the retry budget so a lone worker can still burn a cell's whole
    budget (exhaustion, not a silent hang, must end that story).
    """

    cell_timeout: Optional[float] = None
    retry_budget: int = 3
    quarantine_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.retry_budget < 1:
            raise ValueError("retry_budget must be >= 1")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            object.__setattr__(self, "cell_timeout", None)
        if self.quarantine_after is None:
            object.__setattr__(self, "quarantine_after", self.retry_budget)

    @classmethod
    def from_env(cls) -> "CellPolicy":
        """REPRO_CELL_TIMEOUT (seconds; unset/0 = unlimited) and
        REPRO_RETRY_BUDGET (attempts; default 3)."""
        try:
            timeout: Optional[float] = float(
                os.environ.get(CELL_TIMEOUT_ENV, "0") or "0")
        except ValueError:
            timeout = 0.0
        try:
            budget = max(1, int(os.environ.get(RETRY_BUDGET_ENV, "3") or "3"))
        except ValueError:
            budget = 3
        return cls(cell_timeout=timeout if timeout and timeout > 0 else None,
                   retry_budget=budget)

    def describe(self) -> str:
        timeout = "inf" if self.cell_timeout is None else f"{self.cell_timeout:g}s"
        return f"timeout={timeout},budget={self.retry_budget}"


# ---------------------------------------------------------------------------
# Wire protocol helpers (shared by DistributedBackend and the worker)
# ---------------------------------------------------------------------------


def parse_address(spec: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) to a ``(host, port)`` pair."""
    if isinstance(spec, tuple):
        host, port = spec
        return (host or "127.0.0.1", int(port))
    text = str(spec).strip()
    host, _, port = text.rpartition(":")
    if not port or not port.isdigit():
        raise ValueError(f"bad worker address {spec!r} (expected HOST:PORT)")
    return (host or "127.0.0.1", int(port))


def send_msg(sock: socket.socket, payload: Dict[str, object]) -> None:
    """One protocol message: compact JSON, newline-terminated."""
    sock.sendall(json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n")


def recv_msg(rfile) -> Optional[Dict[str, object]]:
    """The next message from a socket's text file wrapper, or None on EOF."""
    line = rfile.readline()
    if not line:
        return None
    return json.loads(line)


def job_to_wire(job: "SweepJob") -> Dict[str, object]:
    """JSON-safe form of a job; :func:`job_from_wire` reverses it.

    Environment-dependent defaults are resolved *here*, on the
    coordinator: a worker host with a different ``REPRO_RECORDS`` must
    never change what a shipped cell simulates (it would silently break
    the byte-identical guarantee and poison the shared cache under the
    coordinator's key).
    """
    params = job.kwargs()
    params.setdefault("records_per_thread", default_records())
    return {
        "workload": job.workload,
        "variant": job.variant,
        "params": params,
    }


def job_from_wire(data: Dict[str, object]) -> "SweepJob":
    from repro.experiments.orchestrator import SweepJob

    return SweepJob.make(data["workload"], data["variant"], **data["params"])


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class SweepBackend:
    """Executes pending sweep cells.

    Subclasses implement :meth:`run`, calling ``finish(key, result)``
    exactly once per pending cell *from the calling thread* (so cache
    writes and progress callbacks need no locking upstream).
    """

    name = "abstract"

    def run(self, pending: Sequence[PendingCell], finish: FinishFn) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def close(self) -> None:
        """Release any long-lived resources (listening sockets)."""

    def __enter__(self) -> "SweepBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _drain_pool(pool, pending: Sequence[PendingCell], finish: FinishFn) -> None:
    """Submit every cell to an executor, finishing them as they land."""
    from repro.experiments import orchestrator as orch

    futures = {
        pool.submit(orch._execute_job_dict, job): key for key, job in pending
    }
    not_done = set(futures)
    while not_done:
        done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
        for future in done:
            finish(futures[future], RunResult.from_dict(future.result()))


class LocalProcessBackend(SweepBackend):
    """Today's default: a process pool on this host (serial when jobs=1)."""

    name = "local"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = max(1, int(jobs if jobs is not None else default_jobs()))

    def describe(self) -> str:
        return f"local[jobs={self.jobs}]"

    def run(self, pending: Sequence[PendingCell], finish: FinishFn) -> None:
        from repro.experiments import orchestrator as orch

        if self.jobs == 1 or len(pending) <= 1:
            for key, job in pending:
                finish(key, orch._execute_job(job))
            return
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
            _drain_pool(pool, pending, finish)


class ThreadBackend(SweepBackend):
    """A thread pool: no spawn/import cost, ideal for tiny smoke sweeps.

    Each job still round-trips through ``to_dict``/``from_dict`` so the
    result invariants match the process and distributed paths.
    """

    name = "thread"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = max(1, int(jobs if jobs is not None else default_jobs()))

    def describe(self) -> str:
        return f"thread[jobs={self.jobs}]"

    def run(self, pending: Sequence[PendingCell], finish: FinishFn) -> None:
        with ThreadPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
            _drain_pool(pool, pending, finish)


class DistributedBackend(SweepBackend):
    """Fan cells out to ``python -m repro worker`` processes over TCP.

    Three connection topologies, usable together:

    * ``workers=["host:port", ...]`` -- the coordinator dials workers
      that were started with ``--listen``;
    * ``listen="host:port"`` -- the coordinator binds a port (0 picks a
      free one; see :attr:`address`) and workers dial in with
      ``--connect``;
    * ``registry="host:port"`` -- the coordinator subscribes to a
      :class:`~repro.experiments.registry.Registry` (``watch`` push
      dispatch; 1 s polling against older registries) and dials every
      live announced worker it is not yet connected to, so the fleet
      can grow and shrink mid-sweep (elastic autoscaling: a
      late-joining worker is dialed the moment it announces, and with
      ``listen=`` set it is also handed this coordinator's address as
      a work-steal hint so it can dial in itself).

    One connection thread per worker keeps a single cell in flight on
    that worker.  Failures are governed by the per-cell
    :class:`CellPolicy` (``policy=``, default
    :meth:`CellPolicy.from_env`): a connection that dies mid-cell, a
    worker that replies with an error, and an attempt that exceeds
    ``cell_timeout`` all consume one unit of that cell's retry budget
    and the cell is requeued for another worker; a cell whose budget is
    exhausted fails the sweep with its failure history.  A worker
    address that accumulates ``quarantine_after`` failed attempts is
    quarantined -- no further cells, no re-dial -- so one sick host
    cannot eat every retry.  All ``finish`` callbacks happen on the
    thread that called :meth:`run`, exactly once per cell -- the
    per-cell progress contract ``run_sweep`` exposes holds here like on
    the local backends.

    Workers may answer a cell from their own result cache (a shared
    ``--cache-dir``); such replies are tallied in
    :attr:`remote_cache_hits` (lifetime counter) so sweeps can report
    how much of the work the worker-side cache absorbed.
    """

    name = "distributed"

    #: Seconds between registry polls -- the fallback cadence used only
    #: against registries that do not support ``watch`` push dispatch,
    #: and the reconnect pacing when the registry is unreachable.
    REGISTRY_POLL_INTERVAL = 1.0

    #: Seconds before re-attempting to dial an address that did not
    #: answer -- an unreachable announced worker (NAT, died without
    #: deregistering) must not be hammered on every poll.
    REGISTRY_DIAL_BACKOFF = 5.0

    #: Most recent connection-failure reasons kept for error messages.
    MAX_DOWN_REASONS = 20

    def __init__(
        self,
        workers: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        listen: Optional[Union[str, Tuple[str, int]]] = None,
        registry: Optional[Union[str, Tuple[str, int]]] = None,
        connect_timeout: float = 30.0,
        policy: Optional[CellPolicy] = None,
    ) -> None:
        if not workers and listen is None and registry is None:
            raise ValueError(
                "distributed backend needs worker addresses "
                "(--workers HOST:PORT,... or REPRO_BENCH_WORKERS), "
                "a registry (--registry HOST:PORT or REPRO_REGISTRY), "
                "or a listen address for workers to dial in to"
            )
        self.workers = [parse_address(w) for w in (workers or [])]
        self.registry = parse_address(registry) if registry is not None else None
        self.connect_timeout = connect_timeout
        self.policy = policy if policy is not None else CellPolicy.from_env()
        self.remote_cache_hits = 0
        #: Trace context of the thread that called :meth:`run`; each
        #: shipped cell carries a child of it so worker-side spans
        #: correlate back to the coordinator (``docs/OBSERVABILITY.md``).
        self._trace_parent: Optional[SpanContext] = None
        self._listener: Optional[socket.socket] = None
        if listen is not None:
            self._listener = socket.create_server(parse_address(listen))

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The (host, port) workers should ``--connect`` to, if listening."""
        return self._listener.getsockname()[:2] if self._listener else None

    def describe(self) -> str:
        parts = [f"{h}:{p}" for h, p in self.workers]
        if self.registry:
            parts.append(f"registry={self.registry[0]}:{self.registry[1]}")
        if self.address:
            parts.append(f"listen={self.address[0]}:{self.address[1]}")
        parts.append(self.policy.describe())
        return f"distributed[{','.join(parts)}]"

    def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # -- coordinator internals ---------------------------------------------

    def _serve_connection(self, sock, label, job_q, events, quarantined,
                          done) -> None:
        """One worker connection: feed it cells until the sweep is done.

        An idle connection polls the queue rather than hanging up the
        moment it looks empty -- a cell failing elsewhere may be
        requeued at any time until ``done`` is set, and this worker
        must be around to absorb it (that is the rebalancing half of
        the retry story).  A failure mid-cell reports the cell in the
        ``down`` event (the run loop owns retry accounting, so
        requeueing happens there).

        Quarantine is keyed on a *stable* worker identity -- the peer
        host plus the pid from the worker's hello -- not the connection
        label: a dial-in (``--connect``) worker reconnects from a fresh
        ephemeral port after every dismissal, and must not re-enter
        with a clean slate.
        """
        current: Optional[PendingCell] = None
        worker_id = label
        try:
            rfile = sock.makefile("r", encoding="utf-8")
            sock.settimeout(self.connect_timeout)
            hello = recv_msg(rfile)
            if not hello or hello.get("type") != "hello":
                raise ConnectionError(f"worker {label} sent no hello")
            if hello.get("version") != PROTOCOL_VERSION:
                raise ConnectionError(
                    f"worker {label} speaks protocol "
                    f"{hello.get('version')!r}, not {PROTOCOL_VERSION}"
                )
            if hello.get("pid"):
                worker_id = f"{label.rsplit(':', 1)[0]}#pid{hello['pid']}"
            # Per-attempt budget from the cell policy (None = unlimited).
            sock.settimeout(self.policy.cell_timeout)
            seq = 0
            while True:
                if worker_id in quarantined or label in quarantined:
                    # Pace a dial-in worker's reconnect spin before the
                    # dismissal (it will redial the moment we hang up).
                    done.wait(0.5)
                    send_msg(sock, {"type": "bye"})
                    break
                if done.is_set():
                    send_msg(sock, {"type": "bye"})
                    break
                try:
                    current = job_q.get(timeout=0.2)
                except queue.Empty:
                    continue
                if worker_id in quarantined or label in quarantined:
                    # Charging a failure quarantines *before* requeueing
                    # the cell, so this re-check reliably keeps a just-
                    # quarantined worker from grabbing its own retry.
                    job_q.put(current)
                    current = None
                    send_msg(sock, {"type": "bye"})
                    break
                key, job = current
                seq += 1
                message = {"type": "job", "id": seq, "key": key}
                message.update(job_to_wire(job))
                # Trace context rides as a sibling key: job_from_wire
                # reads only workload/variant/params, so old workers
                # ignore it and cache keys are untouched.
                parent = self._trace_parent
                cell_ctx = (parent.child() if parent is not None
                            else SpanContext.new_root())
                message["trace"] = cell_ctx.to_wire()
                send_msg(sock, message)
                try:
                    reply = recv_msg(rfile)
                except socket.timeout:
                    # Tell the worker to abort the cell before hanging
                    # up: without this the worker keeps simulating the
                    # abandoned cell to completion, burning its slot
                    # while the retry runs elsewhere.  Best-effort --
                    # the retry accounting below owns correctness.
                    try:
                        send_msg(sock, {"type": "cancel", "id": seq,
                                        "key": key})
                    except OSError:
                        pass
                    raise ConnectionError(
                        f"worker {label} exceeded the "
                        f"{self.policy.cell_timeout:g}s cell timeout"
                    ) from None
                if reply is None:
                    raise ConnectionError(f"worker {label} closed mid-cell")
                if reply.get("ok"):
                    events.put(
                        ("ok", key, reply["result"], bool(reply.get("cached")))
                    )
                else:
                    events.put(
                        ("fail", label, worker_id, current,
                         str(reply.get("error", "?")))
                    )
                current = None
        except Exception as exc:  # noqa: BLE001 - reported via the event queue
            events.put(("down", label, worker_id, repr(exc), current))
            return
        finally:
            try:
                sock.close()
            except OSError:
                pass
        events.put(("done", label))

    def run(self, pending: Sequence[PendingCell], finish: FinishFn) -> None:
        policy = self.policy
        # Connection threads start with a fresh contextvar context, so
        # the caller's trace context is captured here and handed to them.
        self._trace_parent = current_context()
        job_q: "queue.Queue[PendingCell]" = queue.Queue()
        for cell in pending:
            job_q.put(cell)
        events: "queue.Queue[tuple]" = queue.Queue()
        threads: List[threading.Thread] = []
        stop = threading.Event()
        # Set once every cell has finished (or the sweep failed): idle
        # connections then dismiss their workers with "bye".
        done = threading.Event()
        # Shared with connection threads: a quarantined label takes no
        # further cells (checked before each hand-out).
        quarantined: Set[str] = set()
        live_labels: Set[str] = set()

        def start_conn(sock: socket.socket, label: str) -> None:
            live_labels.add(label)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock, label, job_q, events, quarantined, done),
                name=f"sweep-conn-{label}",
                daemon=True,
            )
            # Start before publishing: the run loop and the final join
            # must never see a thread that is not yet startable/joinable.
            thread.start()
            threads.append(thread)

        def accept_loop() -> None:
            assert self._listener is not None
            self._listener.settimeout(0.2)
            while not stop.is_set():
                try:
                    sock, peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                start_conn(sock, "%s:%d" % peer[:2])

        down_reasons: List[str] = []

        def note(reason: str) -> None:
            """Record a connection failure, keeping the list bounded."""
            down_reasons.append(reason)
            del down_reasons[:-self.MAX_DOWN_REASONS]

        def registry_loop() -> None:
            """Dial registered workers, off the event thread.

            Preferred path: a ``watch`` subscription -- the registry
            pushes a fresh workers list on every membership change, so
            a worker joining mid-sweep is dialed within milliseconds
            instead of on the next poll tick.  When listening
            (``listen=`` + ``registry=`` together), the subscription
            advertises this coordinator's dial-in address as a
            work-steal hint, letting joining workers dial us directly.
            A registry that rejects ``watch`` (an older build) drops
            this loop back to 1 s polling.

            Dials block for up to ``connect_timeout``; doing them here
            keeps the run loop free to process results while a dead
            announced address times out.  Unreachable addresses are
            re-tried no more often than ``REGISTRY_DIAL_BACKOFF``.
            """
            from repro.experiments.registry import fetch_workers

            last_attempt: Dict[str, float] = {}

            def dial_new(addresses: Sequence[str]) -> None:
                for address in addresses:
                    if stop.is_set():
                        return
                    label = "%s:%d" % parse_address(address)
                    if label in live_labels or label in quarantined:
                        continue
                    now = time.monotonic()
                    if now - last_attempt.get(label, -1e9) \
                            < self.REGISTRY_DIAL_BACKOFF:
                        continue
                    last_attempt[label] = now
                    try:
                        sock = socket.create_connection(
                            parse_address(address),
                            timeout=self.connect_timeout,
                        )
                    except OSError as exc:
                        note(f"dial {label}: {exc}")
                        continue
                    start_conn(sock, label)

            def watch_once() -> bool:
                """One watch subscription; False = fall back to polling.

                The socket is read with a plain 1 s ``recv`` timeout
                into a hand-rolled line buffer -- no buffered file
                wrapper, whose ``readline`` would lose partial lines on
                timeout and strand coalesced pushes in its buffer.  The
                timeout tick doubles as the re-dial cadence for
                announced workers that refused an earlier dial.
                """
                wsock = socket.create_connection(self.registry, timeout=5.0)
                try:
                    wsock.settimeout(5.0)
                    subscribe = {"type": "watch",
                                 "version": PROTOCOL_VERSION}
                    if self.address is not None:
                        subscribe["steal"] = "%s:%d" % self.address
                    send_msg(wsock, subscribe)
                    buf = b""
                    known: List[str] = []
                    subscribed = False
                    while not stop.is_set():
                        newline = buf.find(b"\n")
                        if newline >= 0:
                            line, buf = buf[:newline], buf[newline + 1:]
                            message = json.loads(line)
                            if not subscribed:
                                if not message.get("ok"):
                                    return False  # old registry: poll
                                subscribed = True
                                wsock.settimeout(1.0)
                            known = [str(w) for w in
                                     message.get("workers", [])]
                            dial_new(known)
                            continue
                        try:
                            chunk = wsock.recv(4096)
                        except socket.timeout:
                            dial_new(known)  # backed-off re-dials
                            continue
                        if not chunk:
                            return True  # registry gone: resubscribe
                        buf += chunk
                    return True
                finally:
                    try:
                        wsock.close()
                    except OSError:
                        pass

            watch = True
            while not stop.is_set():
                if watch:
                    try:
                        watch = watch_once()
                        if not watch:
                            note(f"registry {self.registry[0]}:"
                                 f"{self.registry[1]} has no watch "
                                 f"support, falling back to polling")
                        elif stop.wait(0.2):  # pace resubscribe spins
                            return
                        continue
                    except (OSError, ValueError) as exc:
                        note(f"registry {self.registry[0]}:"
                             f"{self.registry[1]}: {exc}")
                        if stop.wait(self.REGISTRY_POLL_INTERVAL):
                            return
                        continue
                try:
                    addresses = fetch_workers(self.registry, timeout=5.0)
                except (OSError, RuntimeError) as exc:
                    note(f"registry {self.registry[0]}:{self.registry[1]}: "
                         f"{exc}")
                    addresses = []
                dial_new(addresses)
                if stop.wait(self.REGISTRY_POLL_INTERVAL):
                    return

        accept_thread: Optional[threading.Thread] = None
        registry_thread: Optional[threading.Thread] = None
        try:
            for host, port in self.workers:
                sock = socket.create_connection(
                    (host, port), timeout=self.connect_timeout
                )
                start_conn(sock, f"{host}:{port}")
            if self._listener is not None:
                accept_thread = threading.Thread(
                    target=accept_loop, name="sweep-accept", daemon=True
                )
                accept_thread.start()
            if self.registry is not None:
                registry_thread = threading.Thread(
                    target=registry_loop, name="sweep-registry",
                    daemon=True,
                )
                registry_thread.start()

            remaining = {key for key, _ in pending}
            cell_for_key: Dict[str, PendingCell] = {k: (k, j) for k, j in pending}
            failures: Dict[str, List[str]] = {}  # key -> attempt errors
            worker_failures: Dict[str, int] = {}
            ended = 0
            # A dead connection's cell is requeued, but the survivors may
            # already have drained the queue and been sent "bye" -- so in
            # dial mode, re-dial the configured workers (a listening
            # worker accepts a fresh connection) a bounded number of
            # times before giving up.
            redial_budget = policy.retry_budget * len(self.workers)

            def charge(key: str, label: str, worker_id: str,
                       error: str) -> None:
                """One failed attempt: budget accounting + quarantine.

                Quarantining (both the stable worker identity and the
                dialable address label) happens *before* the requeue,
                so the offender can never grab its own retry.
                """
                history = failures.setdefault(key, [])
                history.append(f"{label}: {error}")
                worker_failures[worker_id] = worker_failures.get(worker_id, 0) + 1
                if worker_failures[worker_id] >= policy.quarantine_after:
                    if worker_id not in quarantined:
                        quarantined.add(worker_id)
                        quarantined.add(label)
                        REGISTRY.counter(
                            "repro_worker_quarantine_total",
                            "workers quarantined mid-sweep",
                        ).inc()
                        note(f"{label}: quarantined after "
                             f"{worker_failures[worker_id]} failed attempt(s)")
                if len(history) >= policy.retry_budget:
                    raise RuntimeError(
                        f"cell {key} failed {len(history)} attempt(s), "
                        f"retry budget {policy.retry_budget} exhausted: "
                        f"{'; '.join(history)}"
                    )
                job_q.put(cell_for_key[key])

            while remaining:
                try:
                    event = events.get(timeout=0.5)
                except queue.Empty:
                    if accept_thread is not None or registry_thread is not None:
                        continue  # a listener/registry can bring new workers
                    if ended < len(threads) or any(t.is_alive() for t in threads):
                        continue
                    revived = False
                    while self.workers and redial_budget > 0 and not revived:
                        for host, port in self.workers:
                            if redial_budget <= 0:
                                break
                            label = f"{host}:{port}"
                            if label in quarantined:
                                continue
                            redial_budget -= 1
                            try:
                                sock = socket.create_connection(
                                    (host, port), timeout=self.connect_timeout
                                )
                            except OSError as exc:
                                note(f"redial {host}:{port}: {exc}")
                                continue
                            start_conn(sock, label)
                            revived = True
                        break
                    if revived:
                        continue
                    detail = (
                        f" ({'; '.join(down_reasons[-5:])})"
                        if down_reasons else ""
                    )
                    raise RuntimeError(
                        f"all distributed workers exited with "
                        f"{len(remaining)} cell(s) unfinished{detail}"
                    )
                kind = event[0]
                if kind == "ok":
                    _, key, payload, was_cached = event
                    if key in remaining:
                        remaining.discard(key)
                        if was_cached:
                            self.remote_cache_hits += 1
                            REGISTRY.counter(
                                "repro_remote_cache_hits_total",
                                "sweep cells answered from a worker-side "
                                "result cache",
                            ).inc()
                        finish(key, RunResult.from_dict(payload))
                elif kind == "fail":
                    _, label, worker_id, cell, error = event
                    charge(cell[0], label, worker_id, f"worker error: {error}")
                elif kind == "down":
                    _, label, worker_id, reason, cell = event
                    ended += 1
                    live_labels.discard(label)
                    note(f"{label}: {reason}")
                    if cell is not None and cell[0] in remaining:
                        charge(cell[0], label, worker_id, reason)
                else:  # "done"
                    ended += 1
                    live_labels.discard(event[1])
        finally:
            done.set()
            stop.set()
            for thread in threads:
                thread.join(timeout=2.0)
            if accept_thread is not None:
                accept_thread.join(timeout=2.0)
            if registry_thread is not None:
                registry_thread.join(timeout=2.0)


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------

_BACKEND_NAMES = ("local", "thread", "serial", "distributed", "registry")


def resolve_backend(
    backend: BackendLike = None,
    jobs: Optional[int] = None,
    workers: Optional[Sequence[str]] = None,
    policy: Optional[CellPolicy] = None,
) -> SweepBackend:
    """Normalise a backend argument to a :class:`SweepBackend`.

    ``None`` consults ``REPRO_BENCH_BACKEND`` (default ``local``, or
    ``distributed`` when ``workers`` are supplied).  Strings accept
    ``local``/``process``, ``thread``/``threads``, ``serial`` (local
    with one worker), ``distributed[:HOST:PORT,...]``, and
    ``registry[:HOST:PORT]``; distributed worker addresses come from
    the spec suffix, the ``workers`` argument, or
    ``REPRO_BENCH_WORKERS``, and the registry address from the spec
    suffix or ``REPRO_REGISTRY``.  An explicit ``policy`` overrides the
    backend's cell policy, including on an already-built instance.
    """
    if isinstance(backend, SweepBackend):
        if policy is not None and hasattr(backend, "policy"):
            backend.policy = policy
        return backend
    if backend is None:
        # An explicit worker list beats the ambient env default: a user
        # who typed --workers means distributed, whatever the shell has
        # REPRO_BENCH_BACKEND set to.
        if workers:
            spec = "distributed"
        else:
            spec = os.environ.get(BACKEND_ENV, "").strip() or "local"
    else:
        spec = str(backend).strip()
    name, _, rest = spec.partition(":")
    name = name.lower()
    if name in ("local", "process", "processes"):
        return LocalProcessBackend(jobs)
    if name in ("thread", "threads"):
        return ThreadBackend(jobs)
    if name == "serial":
        return LocalProcessBackend(1)
    if name == "distributed":
        addresses = list(workers or [])
        if not addresses and rest:
            addresses = [part for part in rest.split(",") if part]
        if not addresses:
            env_workers = os.environ.get(WORKERS_ENV, "")
            addresses = [part for part in env_workers.split(",") if part.strip()]
        return DistributedBackend(workers=addresses, policy=policy)
    if name == "registry":
        registry = rest.strip() or os.environ.get(REGISTRY_ENV, "").strip()
        if not registry:
            raise ValueError(
                "registry backend needs a registry address "
                "(--registry HOST:PORT, registry:HOST:PORT, or "
                "REPRO_REGISTRY)"
            )
        return DistributedBackend(registry=registry, policy=policy)
    raise ValueError(
        f"unknown sweep backend {spec!r} (expected one of {', '.join(_BACKEND_NAMES)})"
    )
