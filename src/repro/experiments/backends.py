"""Pluggable sweep execution backends (local / threaded / distributed).

:func:`~repro.experiments.orchestrator.run_sweep` separates *what* to
simulate (the deduplicated list of pending cells) from *where* it runs.
A backend receives the pending ``(key, SweepJob)`` cells plus a
``finish(key, result)`` callback and must invoke the callback exactly
once per cell, always from the caller's thread:

* :class:`LocalProcessBackend` -- a ``ProcessPoolExecutor`` over
  ``jobs`` workers; with one worker (or one cell) it runs in-process.
  This is the default and reproduces the pre-backend behaviour exactly.
* :class:`ThreadBackend` -- a ``ThreadPoolExecutor``.  The simulator is
  pure Python so threads do not add CPU parallelism, but they skip
  process spawn/import costs, which wins for tiny smoke sweeps.
* :class:`DistributedBackend` -- fans cells out to worker processes
  (possibly on other hosts) over a newline-delimited TCP/JSON protocol.
  Workers are started with ``python -m repro worker`` (see
  :mod:`repro.experiments.worker`) and either *listen* for the
  coordinator to dial them (``--listen``, coordinator passes
  ``workers=[...]``) or *dial in* to a listening coordinator
  (``--connect``, coordinator passes ``listen=...``).

Every backend funnels results through ``RunResult.to_dict()`` /
``from_dict()`` -- the same lossless serialization the result cache
uses -- so results are byte-identical no matter where a cell ran.

Environment knobs: ``REPRO_BENCH_BACKEND`` selects the default backend
(``local``, ``thread``, ``serial``, or ``distributed[:HOST:PORT,...]``)
and ``REPRO_BENCH_WORKERS`` supplies distributed worker addresses.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.runner import RunResult, default_records

if TYPE_CHECKING:  # pragma: no cover - import cycle is runtime-lazy
    from repro.experiments.orchestrator import SweepJob

JOBS_ENV = "REPRO_JOBS"
BACKEND_ENV = "REPRO_BENCH_BACKEND"
WORKERS_ENV = "REPRO_BENCH_WORKERS"

#: Bumped on incompatible wire changes; coordinator and workers refuse
#: to talk across versions instead of desynchronizing mid-sweep.
PROTOCOL_VERSION = 1

PendingCell = Tuple[str, "SweepJob"]
FinishFn = Callable[[str, RunResult], None]
BackendLike = Union["SweepBackend", str, None]


def default_jobs() -> int:
    """Worker count when a sweep does not specify one (REPRO_JOBS, min 1)."""
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


# ---------------------------------------------------------------------------
# Wire protocol helpers (shared by DistributedBackend and the worker)
# ---------------------------------------------------------------------------


def parse_address(spec: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) to a ``(host, port)`` pair."""
    if isinstance(spec, tuple):
        host, port = spec
        return (host or "127.0.0.1", int(port))
    text = str(spec).strip()
    host, _, port = text.rpartition(":")
    if not port or not port.isdigit():
        raise ValueError(f"bad worker address {spec!r} (expected HOST:PORT)")
    return (host or "127.0.0.1", int(port))


def send_msg(sock: socket.socket, payload: Dict[str, object]) -> None:
    """One protocol message: compact JSON, newline-terminated."""
    sock.sendall(json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n")


def recv_msg(rfile) -> Optional[Dict[str, object]]:
    """The next message from a socket's text file wrapper, or None on EOF."""
    line = rfile.readline()
    if not line:
        return None
    return json.loads(line)


def job_to_wire(job: "SweepJob") -> Dict[str, object]:
    """JSON-safe form of a job; :func:`job_from_wire` reverses it.

    Environment-dependent defaults are resolved *here*, on the
    coordinator: a worker host with a different ``REPRO_RECORDS`` must
    never change what a shipped cell simulates (it would silently break
    the byte-identical guarantee and poison the shared cache under the
    coordinator's key).
    """
    params = job.kwargs()
    params.setdefault("records_per_thread", default_records())
    return {
        "workload": job.workload,
        "variant": job.variant,
        "params": params,
    }


def job_from_wire(data: Dict[str, object]) -> "SweepJob":
    from repro.experiments.orchestrator import SweepJob

    return SweepJob.make(data["workload"], data["variant"], **data["params"])


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class SweepBackend:
    """Executes pending sweep cells.

    Subclasses implement :meth:`run`, calling ``finish(key, result)``
    exactly once per pending cell *from the calling thread* (so cache
    writes and progress callbacks need no locking upstream).
    """

    name = "abstract"

    def run(self, pending: Sequence[PendingCell], finish: FinishFn) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def close(self) -> None:
        """Release any long-lived resources (listening sockets)."""

    def __enter__(self) -> "SweepBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _drain_pool(pool, pending: Sequence[PendingCell], finish: FinishFn) -> None:
    """Submit every cell to an executor, finishing them as they land."""
    from repro.experiments import orchestrator as orch

    futures = {
        pool.submit(orch._execute_job_dict, job): key for key, job in pending
    }
    not_done = set(futures)
    while not_done:
        done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
        for future in done:
            finish(futures[future], RunResult.from_dict(future.result()))


class LocalProcessBackend(SweepBackend):
    """Today's default: a process pool on this host (serial when jobs=1)."""

    name = "local"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = max(1, int(jobs if jobs is not None else default_jobs()))

    def describe(self) -> str:
        return f"local[jobs={self.jobs}]"

    def run(self, pending: Sequence[PendingCell], finish: FinishFn) -> None:
        from repro.experiments import orchestrator as orch

        if self.jobs == 1 or len(pending) <= 1:
            for key, job in pending:
                finish(key, orch._execute_job(job))
            return
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
            _drain_pool(pool, pending, finish)


class ThreadBackend(SweepBackend):
    """A thread pool: no spawn/import cost, ideal for tiny smoke sweeps.

    Each job still round-trips through ``to_dict``/``from_dict`` so the
    result invariants match the process and distributed paths.
    """

    name = "thread"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = max(1, int(jobs if jobs is not None else default_jobs()))

    def describe(self) -> str:
        return f"thread[jobs={self.jobs}]"

    def run(self, pending: Sequence[PendingCell], finish: FinishFn) -> None:
        with ThreadPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
            _drain_pool(pool, pending, finish)


class DistributedBackend(SweepBackend):
    """Fan cells out to ``python -m repro worker`` processes over TCP.

    Two connection topologies, usable together:

    * ``workers=["host:port", ...]`` -- the coordinator dials workers
      that were started with ``--listen``;
    * ``listen="host:port"`` -- the coordinator binds a port (0 picks a
      free one; see :attr:`address`) and workers dial in with
      ``--connect``.

    One connection thread per worker keeps a single cell in flight on
    that worker; a connection that dies mid-cell has its cell requeued
    for the surviving workers.  A cell that *fails on* a worker (the
    worker replied with an error) raises, exactly like a crashed pool
    worker would.  All ``finish`` callbacks happen on the caller's
    thread, exactly once per cell -- the per-cell progress contract
    ``run_sweep`` exposes holds here like on the local backends.

    Workers may answer a cell from their own result cache (a shared
    ``--cache-dir``); such replies are tallied in
    :attr:`remote_cache_hits` (lifetime counter) so sweeps can report
    how much of the work the worker-side cache absorbed.
    """

    name = "distributed"

    def __init__(
        self,
        workers: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        listen: Optional[Union[str, Tuple[str, int]]] = None,
        connect_timeout: float = 30.0,
    ) -> None:
        if not workers and listen is None:
            raise ValueError(
                "distributed backend needs worker addresses "
                "(--workers HOST:PORT,... or REPRO_BENCH_WORKERS) "
                "or a listen address for workers to dial in to"
            )
        self.workers = [parse_address(w) for w in (workers or [])]
        self.connect_timeout = connect_timeout
        self.remote_cache_hits = 0
        self._listener: Optional[socket.socket] = None
        if listen is not None:
            self._listener = socket.create_server(parse_address(listen))

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The (host, port) workers should ``--connect`` to, if listening."""
        return self._listener.getsockname()[:2] if self._listener else None

    def describe(self) -> str:
        parts = [f"{h}:{p}" for h, p in self.workers]
        if self.address:
            parts.append(f"listen={self.address[0]}:{self.address[1]}")
        return f"distributed[{','.join(parts)}]"

    def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # -- coordinator internals ---------------------------------------------

    def _serve_connection(self, sock, label, job_q, events) -> None:
        """One worker connection: feed it cells until the queue drains."""
        current: Optional[PendingCell] = None
        try:
            rfile = sock.makefile("r", encoding="utf-8")
            sock.settimeout(self.connect_timeout)
            hello = recv_msg(rfile)
            if not hello or hello.get("type") != "hello":
                raise ConnectionError(f"worker {label} sent no hello")
            if hello.get("version") != PROTOCOL_VERSION:
                raise ConnectionError(
                    f"worker {label} speaks protocol "
                    f"{hello.get('version')!r}, not {PROTOCOL_VERSION}"
                )
            sock.settimeout(None)  # cells may legitimately take long
            seq = 0
            while True:
                try:
                    current = job_q.get_nowait()
                except queue.Empty:
                    send_msg(sock, {"type": "bye"})
                    break
                key, job = current
                seq += 1
                message = {"type": "job", "id": seq, "key": key}
                message.update(job_to_wire(job))
                send_msg(sock, message)
                reply = recv_msg(rfile)
                if reply is None:
                    raise ConnectionError(f"worker {label} closed mid-cell")
                if reply.get("ok"):
                    events.put(
                        ("ok", key, reply["result"], bool(reply.get("cached")))
                    )
                else:
                    events.put(("fail", key, str(reply.get("error", "?"))))
                current = None
        except Exception as exc:  # noqa: BLE001 - reported via the event queue
            if current is not None:
                job_q.put(current)  # let a surviving worker pick it up
            events.put(("down", label, repr(exc)))
            return
        finally:
            try:
                sock.close()
            except OSError:
                pass
        events.put(("done", label))

    def run(self, pending: Sequence[PendingCell], finish: FinishFn) -> None:
        job_q: "queue.Queue[PendingCell]" = queue.Queue()
        for cell in pending:
            job_q.put(cell)
        events: "queue.Queue[tuple]" = queue.Queue()
        threads: List[threading.Thread] = []
        stop = threading.Event()

        def start_conn(sock: socket.socket, label: str) -> None:
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock, label, job_q, events),
                name=f"sweep-conn-{label}",
                daemon=True,
            )
            # Start before publishing: the run loop and the final join
            # must never see a thread that is not yet startable/joinable.
            thread.start()
            threads.append(thread)

        def accept_loop() -> None:
            assert self._listener is not None
            self._listener.settimeout(0.2)
            while not stop.is_set():
                try:
                    sock, peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                start_conn(sock, "%s:%d" % peer[:2])

        accept_thread: Optional[threading.Thread] = None
        try:
            for host, port in self.workers:
                sock = socket.create_connection(
                    (host, port), timeout=self.connect_timeout
                )
                start_conn(sock, f"{host}:{port}")
            if self._listener is not None:
                accept_thread = threading.Thread(
                    target=accept_loop, name="sweep-accept", daemon=True
                )
                accept_thread.start()

            remaining = {key for key, _ in pending}
            ended = 0
            down_reasons: List[str] = []
            # A dead connection's cell is requeued, but the survivors may
            # already have drained the queue and been sent "bye" -- so in
            # dial mode, re-dial the configured workers (a listening
            # worker accepts a fresh connection) a bounded number of
            # times before giving up.
            redial_budget = 2 * len(self.workers)
            while remaining:
                try:
                    event = events.get(timeout=0.5)
                except queue.Empty:
                    if accept_thread is not None:
                        continue  # a listener can still bring new workers
                    if ended < len(threads) or any(t.is_alive() for t in threads):
                        continue
                    revived = False
                    while self.workers and redial_budget > 0 and not revived:
                        for host, port in self.workers:
                            if redial_budget <= 0:
                                break
                            redial_budget -= 1
                            try:
                                sock = socket.create_connection(
                                    (host, port), timeout=self.connect_timeout
                                )
                            except OSError as exc:
                                down_reasons.append(
                                    f"redial {host}:{port}: {exc}"
                                )
                                continue
                            start_conn(sock, f"{host}:{port}")
                            revived = True
                        break
                    if revived:
                        continue
                    detail = (
                        f" ({'; '.join(down_reasons[-5:])})"
                        if down_reasons else ""
                    )
                    raise RuntimeError(
                        f"all distributed workers exited with "
                        f"{len(remaining)} cell(s) unfinished{detail}"
                    )
                kind = event[0]
                if kind == "ok":
                    _, key, payload, was_cached = event
                    if key in remaining:
                        remaining.discard(key)
                        if was_cached:
                            self.remote_cache_hits += 1
                        finish(key, RunResult.from_dict(payload))
                elif kind == "fail":
                    _, key, error = event
                    raise RuntimeError(f"worker failed on cell {key}: {error}")
                elif kind == "down":
                    ended += 1
                    down_reasons.append(f"{event[1]}: {event[2]}")
                else:  # "done"
                    ended += 1
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=2.0)
            if accept_thread is not None:
                accept_thread.join(timeout=2.0)


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------

_BACKEND_NAMES = ("local", "thread", "serial", "distributed")


def resolve_backend(
    backend: BackendLike = None,
    jobs: Optional[int] = None,
    workers: Optional[Sequence[str]] = None,
) -> SweepBackend:
    """Normalise a backend argument to a :class:`SweepBackend`.

    ``None`` consults ``REPRO_BENCH_BACKEND`` (default ``local``, or
    ``distributed`` when ``workers`` are supplied).  Strings accept
    ``local``/``process``, ``thread``/``threads``, ``serial`` (local
    with one worker), and ``distributed[:HOST:PORT,...]``; distributed
    worker addresses come from the spec suffix, the ``workers``
    argument, or ``REPRO_BENCH_WORKERS``.
    """
    if isinstance(backend, SweepBackend):
        return backend
    if backend is None:
        # An explicit worker list beats the ambient env default: a user
        # who typed --workers means distributed, whatever the shell has
        # REPRO_BENCH_BACKEND set to.
        if workers:
            spec = "distributed"
        else:
            spec = os.environ.get(BACKEND_ENV, "").strip() or "local"
    else:
        spec = str(backend).strip()
    name, _, rest = spec.partition(":")
    name = name.lower()
    if name in ("local", "process", "processes"):
        return LocalProcessBackend(jobs)
    if name in ("thread", "threads"):
        return ThreadBackend(jobs)
    if name == "serial":
        return LocalProcessBackend(1)
    if name == "distributed":
        addresses = list(workers or [])
        if not addresses and rest:
            addresses = [part for part in rest.split(",") if part]
        if not addresses:
            env_workers = os.environ.get(WORKERS_ENV, "")
            addresses = [part for part in env_workers.split(",") if part.strip()]
        return DistributedBackend(workers=addresses)
    raise ValueError(
        f"unknown sweep backend {spec!r} (expected one of {', '.join(_BACKEND_NAMES)})"
    )
