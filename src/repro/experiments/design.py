"""Design-space experiments: Figs. 9 and 10 (§III-A).

Fig. 9 sweeps the context-switch trigger threshold of Algorithm 1;
Fig. 10 compares the RR / Random / CFS thread scheduling policies.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.orchestrator import SweepJob, run_sweep
from repro.experiments.runner import default_records
from repro.workloads.suites import representative_four

#: Paper-reported reference points (SS III-A) for the fidelity report:
#: the 2 us trigger threshold wins, and larger thresholds degrade
#: execution time by up to ~2x.
PAPER_EXPECTED = {
    "fig9": {"best_threshold_us": 2.0, "max_degradation": 2.0},
}

#: The thresholds of Fig. 9, in microseconds.
FIG9_THRESHOLDS_US = (2, 10, 20, 40, 60, 80)

#: The policies of Fig. 10 (paper names RR / Random / CFS).
FIG10_POLICIES = ("RR", "RANDOM", "FAIRNESS")


def fig9_threshold_sweep(
    workloads: Optional[Sequence[str]] = None,
    thresholds_us: Sequence[float] = FIG9_THRESHOLDS_US,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[float, float]]:
    """Fig. 9: normalized execution time vs trigger threshold.

    Returns {workload: {threshold_us: normalized_time}} where 1.0 is the
    2 us (default) threshold.  The paper: 2 us is best; larger thresholds
    forfeit switches and degrade up to ~2x.
    """
    workloads = list(workloads or representative_four())
    records = records or default_records()
    specs = [
        SweepJob.make(
            wl, "SkyByte-Full", records_per_thread=records,
            cs_threshold_ns=threshold * 1000.0,
        )
        for wl in workloads
        for threshold in thresholds_us
    ]
    results = iter(run_sweep(specs, jobs=jobs, cache=cache, backend=backend,
                             progress=progress, policy=policy))
    rows: Dict[str, Dict[float, float]] = {}
    for wl in workloads:
        base_ipns = None
        sweep: Dict[float, float] = {}
        for threshold in thresholds_us:
            ipns = max(next(results).stats.throughput_ipns, 1e-12)
            if base_ipns is None:
                base_ipns = ipns
            sweep[threshold] = base_ipns / ipns  # normalized execution time
        rows[wl] = sweep
    return rows


def fig10_scheduling_policies(
    workloads: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 10: execution time and its breakdown under RR/Random/CFS.

    Returns, per workload and policy, normalized execution time (RR = 1)
    plus the compute/memory/context-switch boundedness fractions.  The
    paper finds the three policies deliver similar performance.
    """
    workloads = list(workloads or ["bc", "radix", "srad", "tpcc"])
    records = records or default_records()
    specs = [
        SweepJob.make(
            wl, "SkyByte-Full", records_per_thread=records,
            t_policy=sched_policy,
        )
        for wl in workloads
        for sched_policy in FIG10_POLICIES
    ]
    results = iter(run_sweep(specs, jobs=jobs, cache=cache, backend=backend,
                             progress=progress, policy=policy))
    rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    for wl in workloads:
        rr_ipns = None
        per_policy: Dict[str, Dict[str, float]] = {}
        for sched_policy in FIG10_POLICIES:
            r = next(results)
            ipns = max(r.stats.throughput_ipns, 1e-12)
            if rr_ipns is None:
                rr_ipns = ipns
            bd = r.stats.boundedness()
            per_policy[sched_policy] = {
                "normalized_time": rr_ipns / ipns,
                "memory": bd["memory"],
                "compute": bd["compute"],
                "context_switch": bd["context_switch"],
                "switches": float(r.stats.context_switches),
            }
        rows[wl] = per_policy
    return rows
