"""Per-figure experiment drivers (one module per evaluation section).

All drivers route their independent simulation cells through
:mod:`repro.experiments.orchestrator`, which provides process-pool
parallelism (``jobs=N``) and an on-disk result cache.
"""

from repro.experiments.orchestrator import (
    ResultCache,
    SweepJob,
    run_pairs,
    run_sweep,
    sweep_product,
)
from repro.experiments.runner import RunResult, run_workload

__all__ = [
    "ResultCache",
    "RunResult",
    "SweepJob",
    "run_pairs",
    "run_sweep",
    "run_workload",
    "sweep_product",
]
