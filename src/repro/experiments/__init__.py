"""Per-figure experiment drivers (one module per evaluation section).

All drivers route their independent simulation cells through
:mod:`repro.experiments.orchestrator`, which provides pluggable
execution backends (``backend=``: process pool, thread pool, or
distributed TCP workers -- see :mod:`repro.experiments.backends`) and a
size-capped, concurrency-safe on-disk result cache.
"""

from repro.experiments.backends import (
    CellPolicy,
    DistributedBackend,
    LocalProcessBackend,
    SweepBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.experiments.orchestrator import (
    CellUpdate,
    ResultCache,
    SweepJob,
    run_pairs,
    run_sweep,
    stream_sweep,
    sweep_product,
)
from repro.experiments.registry import Announcer, Registry, fetch_workers
from repro.experiments.runner import RunResult, run_workload

__all__ = [
    "Announcer",
    "CellPolicy",
    "CellUpdate",
    "DistributedBackend",
    "LocalProcessBackend",
    "Registry",
    "ResultCache",
    "RunResult",
    "SweepBackend",
    "SweepJob",
    "ThreadBackend",
    "fetch_workers",
    "resolve_backend",
    "run_pairs",
    "run_sweep",
    "run_workload",
    "stream_sweep",
    "sweep_product",
]
