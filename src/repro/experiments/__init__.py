"""Per-figure experiment drivers (one module per evaluation section)."""
