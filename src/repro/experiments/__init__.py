"""Per-figure experiment drivers (one module per evaluation section).

All drivers route their independent simulation cells through
:mod:`repro.experiments.orchestrator`, which provides pluggable
execution backends (``backend=``: process pool, thread pool, or
distributed TCP workers -- see :mod:`repro.experiments.backends`) and a
size-capped, concurrency-safe on-disk result cache.
"""

from repro.experiments.backends import (
    DistributedBackend,
    LocalProcessBackend,
    SweepBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.experiments.orchestrator import (
    ResultCache,
    SweepJob,
    run_pairs,
    run_sweep,
    sweep_product,
)
from repro.experiments.runner import RunResult, run_workload

__all__ = [
    "DistributedBackend",
    "LocalProcessBackend",
    "ResultCache",
    "RunResult",
    "SweepBackend",
    "SweepJob",
    "ThreadBackend",
    "resolve_backend",
    "run_pairs",
    "run_sweep",
    "run_workload",
    "sweep_product",
]
