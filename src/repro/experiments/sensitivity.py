"""Sensitivity studies: Figs. 19-22 (§VI-E/F/G).

Fig. 19/20 sweep the write-log size at fixed total SSD DRAM; Fig. 21
sweeps the SSD DRAM size (host budget and log scaled along, as in the
paper); Fig. 22 swaps the flash timing between ULL/ULL2/SLC/MLC and
varies SkyByte-Full's thread count.

All sweeps fan out through the orchestrator (``jobs`` workers, shared
result cache), so e.g. Fig. 19 and Fig. 20 -- which simulate the same
(workload, log size) cells -- only pay for them once when cached.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import KB
from repro.experiments.orchestrator import SweepJob, run_sweep
from repro.experiments.runner import default_records
from repro.workloads.suites import WORKLOAD_NAMES

#: Scaled-down analogue of Fig. 19/20's 0.5 MB..256 MB sweep.  The
#: paper's capacities divide by the default scale factor (512); we sweep
#: the same proportional range of the 1 MB SSD DRAM.
FIG19_LOG_SIZES = (16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB)

#: Scaled analogue of Fig. 21's 0.125..2 GB SSD DRAM sweep.
FIG21_DRAM_SIZES = (256 * KB, 512 * KB, 1024 * KB, 2048 * KB, 4096 * KB)

FIG22_TIMINGS = ("ULL", "ULL2", "SLC", "MLC")


def _log_size_sweep(
    workloads: Sequence[str],
    log_sizes: Sequence[int],
    records: int,
    jobs: Optional[int],
    cache: object,
    backend: object,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[int, "object"]]:
    """One SkyByte-Full run per (workload, log size), as a nested dict."""
    specs = [
        SweepJob.make(
            wl, "SkyByte-Full", records_per_thread=records, write_log_bytes=size
        )
        for wl in workloads
        for size in log_sizes
    ]
    sweep = iter(run_sweep(specs, jobs=jobs, cache=cache, backend=backend,
                           progress=progress, policy=policy))
    return {wl: {size: next(sweep) for size in log_sizes} for wl in workloads}


def fig19_log_size_performance(
    workloads: Optional[Sequence[str]] = None,
    log_sizes: Sequence[int] = FIG19_LOG_SIZES,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[int, float]]:
    """Fig. 19: SkyByte-Full execution time vs write-log size (total SSD
    DRAM fixed).  Normalized to the largest log.  Paper shape: a log of
    ~1/8 of SSD DRAM already suffices; tiny logs hurt write-heavy
    workloads."""
    workloads = list(workloads or WORKLOAD_NAMES)
    records = records or default_records()
    cells = _log_size_sweep(workloads, log_sizes, records, jobs, cache,
                            backend, progress, policy)
    rows: Dict[str, Dict[int, float]] = {}
    for wl in workloads:
        ref_ipns = None
        sweep: Dict[int, float] = {}
        for size in sorted(log_sizes, reverse=True):
            ipns = max(cells[wl][size].stats.throughput_ipns, 1e-12)
            if ref_ipns is None:
                ref_ipns = ipns
            sweep[size] = ref_ipns / ipns
        rows[wl] = dict(sorted(sweep.items()))
    return rows


def fig20_log_size_traffic(
    workloads: Optional[Sequence[str]] = None,
    log_sizes: Sequence[int] = FIG19_LOG_SIZES,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[int, float]]:
    """Fig. 20: flash write traffic vs write-log size, normalized to the
    smallest log.  Paper shape: traffic falls steeply as the log (and so
    the coalescing window) grows."""
    workloads = list(workloads or WORKLOAD_NAMES)
    records = records or default_records()
    cells = _log_size_sweep(workloads, log_sizes, records, jobs, cache,
                            backend, progress, policy)
    rows: Dict[str, Dict[int, float]] = {}
    for wl in workloads:
        ref_rate = None
        sweep: Dict[int, float] = {}
        for size in sorted(log_sizes):
            stats = cells[wl][size].stats
            rate = stats.flash_page_writes / max(stats.instructions, 1)
            if ref_rate is None:
                ref_rate = max(rate, 1e-12)
            sweep[size] = rate / ref_rate
        rows[wl] = sweep
    return rows


def fig21_dram_size(
    workloads: Optional[Sequence[str]] = None,
    dram_sizes: Sequence[int] = FIG21_DRAM_SIZES,
    variants: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Fig. 21: execution time vs SSD DRAM cache size per design.

    As in the paper, the host promotion budget keeps its 4:1 ratio to
    the SSD DRAM, and the write log its 1:8 share.  Normalized to
    SkyByte-Full at the default (middle) size.  Shape: SkyByte-Full wins
    at every size; a small SkyByte beats a much larger Base-CSSD.
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    variants = list(variants or ["Base-CSSD", "SkyByte-WP", "SkyByte-Full"])
    records = records or default_records()
    sizes = sorted(dram_sizes)
    reference_size = sizes[len(sizes) // 2]
    specs = []
    for wl in workloads:
        specs.append(SweepJob.make(
            wl, "SkyByte-Full", records_per_thread=records,
            dram_bytes=reference_size, host_budget_bytes=reference_size * 4,
        ))
        specs.extend(
            SweepJob.make(
                wl, variant, records_per_thread=records,
                dram_bytes=size, host_budget_bytes=size * 4,
            )
            for variant in variants
            for size in sizes
        )
    sweep = iter(run_sweep(specs, jobs=jobs, cache=cache, backend=backend,
                           progress=progress, policy=policy))
    rows: Dict[str, Dict[str, Dict[int, float]]] = {}
    for wl in workloads:
        ref = next(sweep)
        ref_ipns = max(ref.stats.throughput_ipns, 1e-12)
        per_variant: Dict[str, Dict[int, float]] = {}
        for variant in variants:
            per_variant[variant] = {
                size: ref_ipns / max(next(sweep).stats.throughput_ipns, 1e-12)
                for size in sizes
            }
        rows[wl] = per_variant
    return rows


def fig22_flash_latency(
    workloads: Optional[Sequence[str]] = None,
    timings: Sequence[str] = FIG22_TIMINGS,
    variants: Optional[Sequence[str]] = None,
    thread_counts: Sequence[int] = (16, 24, 32),
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 22: performance with ULL/ULL2/SLC/MLC flash.

    Returns {workload: {timing: {design: normalized_time}}} where designs
    include SkyByte-P/W/WP and SkyByte-Full at several thread counts,
    normalized to SkyByte-Full-24 with ULL flash.  Paper shape: slower
    flash widens SkyByte's advantage, and more threads keep hiding the
    longer latency.
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    variants = list(variants or ["SkyByte-P", "SkyByte-WP"])
    records = records or default_records()
    specs = []
    for wl in workloads:
        specs.append(SweepJob.make(
            wl, "SkyByte-Full", records_per_thread=records, threads=24,
            timing="ULL",
        ))
        for timing in timings:
            specs.extend(
                SweepJob.make(
                    wl, variant, records_per_thread=records, timing=timing
                )
                for variant in variants
            )
            specs.extend(
                SweepJob.make(
                    wl, "SkyByte-Full", records_per_thread=records,
                    threads=threads, timing=timing,
                )
                for threads in thread_counts
            )
    sweep = iter(run_sweep(specs, jobs=jobs, cache=cache, backend=backend,
                           progress=progress, policy=policy))
    rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    for wl in workloads:
        ref = next(sweep)
        ref_ipns = max(ref.stats.throughput_ipns, 1e-12)
        per_timing: Dict[str, Dict[str, float]] = {}
        for timing in timings:
            cell: Dict[str, float] = {}
            for variant in variants:
                r = next(sweep)
                cell[variant] = ref_ipns / max(r.stats.throughput_ipns, 1e-12)
            for threads in thread_counts:
                r = next(sweep)
                cell[f"SkyByte-Full-{threads}"] = ref_ipns / max(
                    r.stats.throughput_ipns, 1e-12
                )
            per_timing[timing] = cell
        rows[wl] = per_timing
    return rows
