"""Timeline-derived channel-occupancy figure (``channel-occupancy``).

Runs one deep-device-model cell with sim-time tracing enabled
(``TraceConfig``) and reduces the recorded flash-operation spans to a
per-channel busy fraction over fixed sim-time windows -- the
channel/plane contention picture the flat horizon model cannot show and
end-of-run aggregates hide.  Because tracing forces the scalar engine
path and bypasses the result cache, this driver always simulates; it is
deliberately a single small cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.runner import (
    DEFAULT_SCALE,
    _traces_for,
    resolve_run,
)
from repro.sim.system import System
from repro.variants import get_variant

#: Fixed number of sim-time windows the run is bucketed into.
WINDOWS = 48

#: Series cap: the SVG palette has 8 hues and one slot goes to the GC
#: overlay, so at most 7 per-channel occupancy lines are emitted.
MAX_CHANNEL_SERIES = 7


def channel_occupancy_study(
    workload: str = "ycsb",
    variant: str = "SkyByte-Full",
    records: Optional[int] = None,
    progress=None,
) -> Dict[str, object]:
    """Per-channel flash busy fraction over sim-time windows.

    Returns ``{"windows": [...], "channels": {id: [frac...]},
    "gc": [frac...], "meta": {...}}`` where each fraction is the summed
    in-flight flash-command time of that channel inside the window,
    divided by the window length (> 1 means multiple dies were busy in
    parallel).
    """
    del progress  # single direct cell; no orchestrator progress events
    config, records_per_thread = resolve_run(
        workload,
        variant,
        records_per_thread=records,
        device_model="deep",
    )
    config = config.with_trace(enabled=True, requests=False)
    design = get_variant(variant)
    traces, mlp = _traces_for(
        workload, config.threads, records_per_thread, DEFAULT_SCALE,
        config.seed,
    )
    system = System(config, traces, design, workload_mlp=mlp)
    stats = system.run()
    tracer = system.tracer
    events = tracer.events() if tracer is not None else []

    flash_ops = [
        e for e in events
        if e.get("ph") == "X" and str(e.get("name", "")).startswith("flash.")
    ]
    gc_ops = [
        e for e in events if e.get("ph") == "X" and e.get("name") == "gc.campaign"
    ]
    start_us = stats.start_ns / 1000.0
    end_us = max(
        [e["ts"] + e["dur"] for e in flash_ops + gc_ops],
        default=stats.end_ns / 1000.0,
    )
    span_us = max(end_us - start_us, 1e-9)
    window_us = span_us / WINDOWS

    def bucketize(ops: List[dict], key) -> Dict[int, List[float]]:
        busy: Dict[int, List[float]] = {}
        for op in ops:
            ident = key(op)
            lanes = busy.setdefault(ident, [0.0] * WINDOWS)
            t0 = op["ts"] - start_us
            t1 = t0 + op["dur"]
            first = max(0, int(t0 // window_us))
            last = min(WINDOWS - 1, int(t1 // window_us))
            for w in range(first, last + 1):
                lo = w * window_us
                hi = lo + window_us
                overlap = min(t1, hi) - max(t0, lo)
                if overlap > 0:
                    lanes[w] += overlap
        return busy

    def channel_of(op: dict) -> int:
        return int(op.get("args", {}).get("channel", 0))

    per_channel = bucketize(flash_ops, channel_of)
    gc_busy = bucketize(gc_ops, lambda _op: 0).get(0, [0.0] * WINDOWS)

    window_mid_ms = [
        (start_us + (w + 0.5) * window_us) / 1000.0 for w in range(WINDOWS)
    ]
    channels = {
        str(ch): [round(b / window_us, 4) for b in lanes]
        for ch, lanes in sorted(per_channel.items())
    }
    return {
        "workload": workload,
        "variant": variant,
        "window_ms": window_mid_ms,
        "channels": channels,
        "gc": [round(b / window_us, 4) for b in gc_busy],
        "meta": {
            "records_per_thread": records_per_thread,
            "device_model": "deep",
            "windows": WINDOWS,
            "window_us": round(window_us, 3),
            "flash_ops_traced": len(flash_ops),
            "gc_campaigns_traced": len(gc_ops),
            "events_dropped": tracer.dropped if tracer is not None else 0,
            "gc_invocations": stats.gc_invocations,
        },
    }
