"""Tenant QoS at scale: SLO sweep across isolation mechanisms.

The colocation study (PR 5) *measures* interference between a handful of
tenants; this driver *manages* it.  It sweeps tenant count -- into the
hundreds if asked -- over a scenario mix drawn from
:mod:`repro.scenarios.library`, once per isolation mechanism
(``docs/QOS.md``):

* ``none`` -- the unprotected shared device (the baseline);
* ``wfq`` -- weighted-fair flash admission + weighted host CFS;
* ``priority`` -- strict-priority flash admission + host scheduling;
* ``log-partition`` -- per-tenant write-log shares;
* ``cache-quota`` -- per-tenant data-cache quotas.

Because tail behaviour is the whole point of tenant QoS (means hide the
victims), every payload row reports per-tenant **p99** off-chip latency
and the **SLO-violation rate** -- the fraction of a tenant's requests
whose latency bucket exceeds ``slo_read_ns`` -- from the per-tenant
latency histograms kept by
:class:`~repro.experiments.colocation.ColocatedSystem`.

The default mix assigns the latency-sensitive scenarios (``web-tier``,
``graph-walk``) weight 2.0 / priority 1 and the scan-heavy ones
(``analytics-scan``, ``log-ingest``) weight 1.0 / priority 0, so the
wfq and priority mechanisms have a stated goal the figure can check:
protect the point-lookup tiers from the scanners.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.colocation import run_colocation
from repro.experiments.runner import DEFAULT_SCALE, default_records
from repro.scenarios.colocate import Tenant

#: Scenario mix cycled across tenants (library composites).
DEFAULT_MIX = ("web-tier", "analytics-scan", "graph-walk", "log-ingest")

#: Scenarios treated as latency-sensitive by the default weight/priority
#: assignment.
LATENCY_SENSITIVE = ("web-tier", "graph-walk")

#: Isolation mechanisms the sweep compares (order is figure order).
ISOLATIONS = ("none", "wfq", "priority", "log-partition", "cache-quota")

DEFAULT_TENANT_COUNTS = (2, 8, 32)


def mix_tenants(
    count: int,
    mix: Sequence[str] = DEFAULT_MIX,
    seed: int = 42,
    records_per_thread: Optional[int] = None,
) -> List[Tenant]:
    """``count`` single-threaded tenants cycling through ``mix``.

    One thread per tenant keeps the thread count linear in the tenant
    count, which is what lets the sweep reach hundreds of tenants.
    """
    return [
        Tenant(
            name=f"{mix[i % len(mix)]}-{i}",
            scenario=mix[i % len(mix)],
            threads=1,
            records_per_thread=records_per_thread,
            seed=seed + i,
        )
        for i in range(count)
    ]


def tenant_weights(tenants: Sequence[Tenant]) -> List[float]:
    return [2.0 if t.scenario in LATENCY_SENSITIVE else 1.0
            for t in tenants]


def tenant_priorities(tenants: Sequence[Tenant]) -> List[int]:
    return [1 if t.scenario in LATENCY_SENSITIVE else 0 for t in tenants]


def qos_slo_study(
    records: Optional[int] = None,
    tenant_counts: Optional[Sequence[int]] = None,
    isolations: Optional[Sequence[str]] = None,
    mix: Sequence[str] = DEFAULT_MIX,
    variant: str = "SkyByte-Full",
    scale: int = DEFAULT_SCALE,
    seed: int = 42,
    slo_read_ns: float = 20_000.0,
) -> Dict[str, object]:
    """Tail latency and SLO violations vs tenant count per mechanism.

    Returns ``{"sweep": {isolation: {count: row}}}`` where each row has
    per-tenant p99s, the worst/mean p99, the aggregate SLO-violation
    rate, and the per-scenario violation rates that feed the stacked
    figure.  Runs execute in-process: a colocated system is a single
    multi-tenant cell, like the ``colocation`` figure's.
    """
    records = records or default_records()
    counts = [int(c) for c in (tenant_counts or DEFAULT_TENANT_COUNTS)]
    mechanisms = list(isolations or ISOLATIONS)

    sweep: Dict[str, Dict[str, object]] = {}
    for isolation in mechanisms:
        by_count: Dict[str, object] = {}
        for count in counts:
            tenants = mix_tenants(count, mix=mix, seed=seed,
                                  records_per_thread=records)
            system = run_colocation(
                tenants,
                variant=variant,
                scale=scale,
                records_per_thread=records,
                seed=seed,
                isolation=isolation,
                weights=tenant_weights(tenants),
                priorities=tenant_priorities(tenants),
                slo_read_ns=slo_read_ns,
            )
            by_count[str(count)] = _row(system, tenants, slo_read_ns)
        sweep[isolation] = by_count

    return {
        "variant": variant,
        "records_per_thread": records,
        "slo_read_ns": slo_read_ns,
        "mix": list(mix),
        "tenant_counts": counts,
        "isolations": mechanisms,
        "sweep": sweep,
    }


def _row(system, tenants: Sequence[Tenant],
         slo_read_ns: float) -> Dict[str, object]:
    """One sweep cell: per-tenant tails plus per-scenario aggregates."""
    p99: Dict[str, float] = {}
    by_scenario_viol: Dict[str, int] = {}
    by_scenario_total: Dict[str, int] = {}
    violations = 0
    total = 0
    for tenant, stats in zip(tenants, system.tenant_stats):
        hist = stats.offchip_latency
        p99[tenant.name] = hist.percentile(99)
        above = hist.count_above(slo_read_ns)
        violations += above
        total += hist.count
        by_scenario_viol[tenant.scenario] = (
            by_scenario_viol.get(tenant.scenario, 0) + above
        )
        by_scenario_total[tenant.scenario] = (
            by_scenario_total.get(tenant.scenario, 0) + hist.count
        )
    values = list(p99.values())
    return {
        "p99_ns": p99,
        "worst_p99_ns": max(values) if values else 0.0,
        "mean_p99_ns": sum(values) / len(values) if values else 0.0,
        "slo_violation_rate": violations / total if total else 0.0,
        "violation_rate_by_scenario": {
            name: by_scenario_viol[name] / by_scenario_total[name]
            if by_scenario_total[name] else 0.0
            for name in sorted(by_scenario_total)
        },
        "execution_ns": system.stats.execution_ns,
        "context_switches": system.stats.context_switches,
    }
