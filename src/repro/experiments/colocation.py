"""Multi-tenant colocation study: who pays when tenants share a device.

The paper's evaluation runs one application per device.  This driver
answers the question a shared CXL-SSD deployment actually faces: when N
tenants colocate, how much does each slow down relative to running
alone, and *where* does the interference land (queueing in front of
flash, write-log pressure, cache contention)?

Method:

* every tenant's **solo** baseline runs through the normal sweep
  pipeline (so it parallelises, caches and distributes like any other
  cell);
* the **colocated** run replays all tenants' traces -- rebased into
  disjoint address partitions by
  :func:`repro.scenarios.colocate.build_colocation` -- on one
  :class:`ColocatedSystem`, which attributes per-thread behaviour back
  to tenants: each tenant gets its own host-side
  :class:`~repro.sim.stats.SimStats` (request classes, AMAT components,
  off-chip latency histogram) plus its completion time;
* per-tenant slowdown is the ratio of colocated to solo
  time-per-instruction, the same normalized-time metric every paper
  figure uses.

Attribution notes: the tenant stats are the *host-observable* view.
Device-side counters (flash traffic, GC) are genuinely shared and are
reported once, for the device.  Accesses squashed by a context switch
are reversed in the global stats (as the paper specifies) but not in
the per-tenant view, which counts issued requests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import SimConfig, scaled_config
from repro.experiments.orchestrator import SweepJob, run_sweep
from repro.experiments.runner import DEFAULT_SCALE, default_records
from repro.scenarios.colocate import (
    ColocationPlan,
    Tenant,
    build_colocation,
)
from repro.sim.stats import HOST_DRAM, SimStats
from repro.sim.system import System
from repro.ssd.interface import AccessResult
from repro.variants import DesignVariant, get_variant

#: The default tenant mix: a latency-sensitive point-lookup tier
#: colocated with a scan-heavy ingest pipeline -- the classic
#: noisy-neighbour pairing.
DEFAULT_TENANTS = (
    Tenant(name="web-tier", scenario="web-tier", threads=4, seed=42),
    Tenant(name="log-ingest", scenario="log-ingest", threads=4, seed=43),
)

#: AMAT component keys as :meth:`SimStats.record_amat` spells them.
_AMAT_KEYS = ("host_dram", "protocol", "indexing", "ssd_dram", "flash")


class ColocatedSystem(System):
    """A :class:`System` that attributes per-thread activity to tenants.

    The simulation itself is completely standard -- one device, one
    scheduler, one global :class:`SimStats`.  On top of that, every
    memory access is mirrored into the issuing tenant's stats object,
    and thread completions record per-tenant makespans.
    """

    def __init__(
        self,
        config: SimConfig,
        plan: ColocationPlan,
        variant: DesignVariant,
    ) -> None:
        super().__init__(config, plan.traces, variant, workload_mlp=plan.mlp)
        self.plan = plan
        self.tenant_stats: List[SimStats] = [SimStats() for _ in plan.tenants]
        self.tenant_end_ns: List[float] = [0.0] * len(plan.tenants)
        # Instruction accounting matches the cores' (window gaps only),
        # so tenant time-per-instruction is directly comparable to the
        # solo baseline's stats.instructions.
        for trace, owner in zip(plan.traces, plan.tenant_of_thread):
            self.tenant_stats[owner].instructions += sum(r[0] for r in trace)

    def memory_access(
        self, core_id: int, tid: int, is_write: bool, address: int, now: float
    ) -> AccessResult:
        result = super().memory_access(core_id, tid, is_write, address, now)
        if self.stats.enabled:
            tenant = self.tenant_stats[self.plan.tenant_of_thread[tid]]
            tenant.count_request(result.request_class)
            tenant.record_offchip(max(1.0, result.complete_ns - now))
            tenant.record_amat(**{
                key: float(result.breakdown.get(key, 0.0))
                for key in _AMAT_KEYS
            })
        return result

    def dram_window_access(self, ops, now, tid: int = -1):
        """DRAM-only fast path with per-tenant mirroring: the batched
        window loop stays vectorized (no per-access ``memory_access``
        fallback); attribution replays the same latency arithmetic on
        the returned completion times."""
        completes = super().dram_window_access(ops, now, tid)
        if self.stats.enabled and tid >= 0:
            tenant = self.tenant_stats[self.plan.tenant_of_thread[tid]]
            for complete in completes:
                latency = complete - now
                tenant.count_request(HOST_DRAM)
                tenant.record_offchip(latency if latency > 1.0 else 1.0)
                tenant.record_amat(host_dram=latency)
        return completes

    def on_thread_done(self, thread) -> None:
        super().on_thread_done(thread)
        index = self.plan.tenant_of_thread[thread.tid]
        self.tenant_end_ns[index] = max(
            self.tenant_end_ns[index], self.engine.now
        )
        self.tenant_stats[index].end_ns = self.tenant_end_ns[index]


def run_colocation(
    tenants: Sequence[Tenant],
    variant: str = "SkyByte-Full",
    scale: int = DEFAULT_SCALE,
    records_per_thread: Optional[int] = None,
    seed: int = 42,
    timing: str = "ULL",
    max_ns: Optional[float] = None,
    isolation: str = "none",
    weights: Optional[Sequence[float]] = None,
    priorities: Optional[Sequence[int]] = None,
    slo_read_ns: float = 20_000.0,
) -> ColocatedSystem:
    """Build and execute one colocated run; returns the finished system.

    ``isolation`` selects a tenant-QoS mechanism (``"wfq"``,
    ``"priority"``, ``"log-partition"``, ``"cache-quota"``; see
    ``docs/QOS.md``).  The default ``"none"`` leaves the config -- and
    therefore every digest -- exactly as before.
    """
    records = records_per_thread or default_records()
    plan = build_colocation(tenants, scale=scale, records_per_thread=records)
    design = get_variant(variant)
    config = scaled_config(
        scale=scale, threads=len(plan.traces), timing=timing, seed=seed
    ).replace(warmup_fraction=0.1)
    if isolation != "none":
        config = config.replace(qos=plan.qos_config(
            isolation, weights=weights, priorities=priorities,
            slo_read_ns=slo_read_ns,
        ))
    system = ColocatedSystem(config, plan, design)
    system.run(max_ns=max_ns)
    return system


def colocation_study(
    tenants: Optional[Sequence[Tenant]] = None,
    variant: str = "SkyByte-Full",
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, object]:
    """Per-tenant slowdown and breakdown for a colocated tenant mix.

    Returns ``{"variant", "tenants": {name: {...}}, "device": {...}}``
    where each tenant row carries its solo/colocated time-per-
    instruction, the slowdown ratio, and its request-class and AMAT
    breakdowns from the colocated run.  Solo baselines fan out through
    :func:`~repro.experiments.orchestrator.run_sweep`; the colocated
    composition runs in-process (it is a single multi-tenant cell, like
    the replay-based Figs. 5/6).
    """
    tenants = list(tenants or DEFAULT_TENANTS)
    records = records or default_records()
    solo_jobs = [
        SweepJob.make(
            tenant.scenario,
            variant,
            records_per_thread=tenant.records_per_thread or records,
            threads=tenant.threads,
            seed=tenant.seed,
        )
        for tenant in tenants
    ]
    solo = run_sweep(solo_jobs, jobs=jobs, cache=cache, backend=backend,
                     progress=progress, policy=policy)
    system = run_colocation(tenants, variant=variant,
                            records_per_thread=records)

    rows: Dict[str, object] = {}
    for index, tenant in enumerate(tenants):
        stats = system.tenant_stats[index]
        solo_stats = solo[index].stats
        solo_tpi = solo_stats.execution_ns / max(solo_stats.instructions, 1)
        coloc_tpi = stats.execution_ns / max(stats.instructions, 1)
        rows[tenant.name] = {
            "scenario": tenant.scenario,
            "threads": tenant.threads,
            "partition_pages": system.plan.partitions[index][1],
            "solo_time_per_instr_ns": solo_tpi,
            "colocated_time_per_instr_ns": coloc_tpi,
            "slowdown": coloc_tpi / max(solo_tpi, 1e-12),
            "requests": stats.request_breakdown(),
            "amat_ns": stats.amat_ns,
            "amat": stats.amat_breakdown(),
        }
    device = system.stats
    return {
        "variant": variant,
        "records_per_thread": records,
        "tenants": rows,
        "device": {
            "execution_ns": device.execution_ns,
            "flash_page_reads": device.flash_page_reads,
            "flash_page_writes": device.flash_page_writes,
            "gc_invocations": device.gc_invocations,
            "context_switches": device.context_switches,
            "log_appends": device.log_appends,
        },
    }
