"""Experiment harness: one function to run (workload, variant) pairs.

All benchmarks, examples and figure drivers go through
:func:`run_workload`, so every experiment shares the same scaling rules:

* capacities are scaled by ``scale`` (default 512) with all of the
  paper's ratios preserved (see :func:`repro.config.scaled_config`);
* trace lengths default to a laptop-friendly size and can be raised via
  the ``REPRO_RECORDS`` environment variable for higher-fidelity runs;
* thread counts follow the paper's rule (3x cores with context
  switching, == cores otherwise) unless overridden.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import DeviceModelConfig, SimConfig, scaled_config
from repro.scenarios.library import find_scenario
from repro.scenarios.tracefile import read_meta, read_tracefile, write_tracefile
from repro.sim import fastpath
from repro.sim.stats import SimStats
from repro.sim.system import System
from repro.variants import DesignVariant, get_variant
from repro.workloads.suites import canonical_workload, get_model
from repro.workloads.trace import TraceRecord

DEFAULT_SCALE = 512


def default_records() -> int:
    """Trace records per thread; override with REPRO_RECORDS."""
    return int(os.environ.get("REPRO_RECORDS", "3000"))


@dataclass
class RunResult:
    """Everything a figure needs from one simulation run."""

    workload: str
    variant: str
    threads: int
    stats: SimStats
    config: SimConfig

    @property
    def execution_ns(self) -> float:
        return self.stats.execution_ns

    @property
    def throughput(self) -> float:
        return self.stats.throughput_ipns

    def speedup_over(self, other: "RunResult") -> float:
        """Throughput ratio of self over ``other`` (same trace workload)."""
        if self.stats.throughput_ipns == 0:
            return 0.0
        return self.stats.throughput_ipns / max(other.stats.throughput_ipns, 1e-12)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; round-trips losslessly via :meth:`from_dict`.

        This is what worker processes ship back to the orchestrator and
        what the on-disk result cache stores.
        """
        return {
            "workload": self.workload,
            "variant": self.variant,
            "threads": self.threads,
            "stats": self.stats.to_dict(),
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        return cls(
            workload=data["workload"],
            variant=data["variant"],
            threads=int(data["threads"]),
            stats=SimStats.from_dict(data["stats"]),
            config=SimConfig.from_dict(data["config"]),
        )


def resolve_device_model(spec: object) -> DeviceModelConfig:
    """Normalise a device-model spec: a :class:`DeviceModelConfig`, a
    kind string (``"deep"``), or a dict of config fields."""
    if isinstance(spec, DeviceModelConfig):
        return spec
    if isinstance(spec, str):
        return DeviceModelConfig(kind=spec)
    return DeviceModelConfig.from_dict(dict(spec))


def build_config(
    scale: int = DEFAULT_SCALE,
    timing: str = "ULL",
    seed: int = 42,
    threads: int = 8,
    cs_threshold_ns: Optional[float] = None,
    t_policy: Optional[str] = None,
    write_log_bytes: Optional[int] = None,
    dram_bytes: Optional[int] = None,
    host_budget_bytes: Optional[int] = None,
    warmup_fraction: float = 0.1,
    ssd_overrides: Optional[Dict[str, object]] = None,
    device_model: Optional[object] = None,
) -> SimConfig:
    """Assemble a scaled config with the common experiment overrides.

    ``ssd_overrides`` passes arbitrary :class:`~repro.config.SSDConfig`
    fields (``prefetch_depth``, ``promotion_threshold``, ...) straight
    through, applied after the named shortcuts above.  ``device_model``
    selects the flash model: a kind string (``"deep"``) or a dict of
    :class:`~repro.config.DeviceModelConfig` fields; ``None`` keeps the
    flat default (and the config's serialised form byte-identical).
    """
    config = scaled_config(scale=scale, threads=threads, timing=timing, seed=seed)
    config = config.replace(warmup_fraction=warmup_fraction)
    ssd_fields: Dict[str, object] = {}
    if dram_bytes is not None:
        ssd_fields["dram_bytes"] = dram_bytes
        # Keep the paper's 1:7 log:cache split unless told otherwise.
        if write_log_bytes is None:
            ssd_fields["write_log_bytes"] = max(dram_bytes // 8, 4096)
    if write_log_bytes is not None:
        ssd_fields["write_log_bytes"] = write_log_bytes
    if ssd_overrides:
        ssd_fields.update(ssd_overrides)
    if ssd_fields:
        config = config.with_ssd(**ssd_fields)
    os_overrides: Dict[str, object] = {}
    if cs_threshold_ns is not None:
        os_overrides["cs_threshold_ns"] = cs_threshold_ns
    if t_policy is not None:
        os_overrides["t_policy"] = t_policy
    if os_overrides:
        config = config.with_os(**os_overrides)
    if host_budget_bytes is not None:
        config = config.with_cpu(host_promote_budget_bytes=host_budget_bytes)
    if device_model is not None:
        config = config.replace(device_model=resolve_device_model(device_model))
    return config


#: Memoized (traces, mlp) per resolved generation key.  Trace synthesis
#: is deterministic in ``(workload, threads, records, scale, seed)`` and
#: consumers never mutate the record lists (cursors copy; pushbacks build
#: new lists), so sweep cells that differ only in design variant share
#: one generated trace instead of re-running the per-record synthesis.
_TRACE_MEMO: "OrderedDict[Tuple, Tuple[List[List[TraceRecord]], int]]" = (
    OrderedDict()
)
_TRACE_MEMO_MAX = 16


def _traces_for(
    workload: str, threads: int, records: int, scale: int, seed: int
) -> Tuple[List[List[TraceRecord]], int]:
    """Per-thread traces and the workload's MLP, for a Table I name
    (seed model) or a scenario name (phase DSL).

    Memoized on the vectorized path (bounded LRU); the scalar path
    regenerates every time, as the original code did.
    """
    if not fastpath.vectorized():
        return _generate_traces(workload, threads, records, scale, seed)
    key = (workload, threads, records, scale, seed)
    hit = _TRACE_MEMO.get(key)
    if hit is not None:
        _TRACE_MEMO.move_to_end(key)
        return hit
    generated = _generate_traces(workload, threads, records, scale, seed)
    _TRACE_MEMO[key] = generated
    while len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
        _TRACE_MEMO.popitem(last=False)
    return generated


def _generate_traces(
    workload: str, threads: int, records: int, scale: int, seed: int
) -> Tuple[List[List[TraceRecord]], int]:
    try:
        name = canonical_workload(workload)
    except KeyError:
        scenario = find_scenario(workload)
        if scenario is None:
            from repro.scenarios.library import scenario_names
            from repro.workloads.suites import TABLE_I

            raise KeyError(
                f"unknown workload or scenario {workload!r}; workloads: "
                f"{sorted(TABLE_I)}; scenarios: {scenario_names()}"
            ) from None
        traces = scenario.generate(threads, records, scale=scale, seed=seed)
        return traces, scenario.mlp
    model = get_model(name, scale=scale, seed=seed)
    return model.generate(threads, records), model.spec.mlp


def resolve_run(
    workload: str,
    variant: str,
    *,
    scale: int = DEFAULT_SCALE,
    records_per_thread: Optional[int] = None,
    threads: Optional[int] = None,
    timing: str = "ULL",
    seed: int = 42,
    cs_threshold_ns: Optional[float] = None,
    t_policy: Optional[str] = None,
    write_log_bytes: Optional[int] = None,
    dram_bytes: Optional[int] = None,
    host_budget_bytes: Optional[int] = None,
    warmup_fraction: float = 0.1,
    max_ns: Optional[float] = None,
    ssd_overrides: Optional[Dict[str, object]] = None,
    device_model: Optional[object] = None,
    trace: Optional[str] = None,
) -> Tuple[SimConfig, int]:
    """Resolve the exact ``(config, records_per_thread)`` a
    :func:`run_workload` call with these arguments would simulate.

    Shared by :func:`run_workload` and the orchestrator's cache keying so
    the key always reflects the *resolved* configuration (thread defaults,
    REPRO_RECORDS, capacity ratios), never the raw argument spelling.
    ``max_ns`` is accepted (so a job's kwargs can be splatted directly)
    but does not influence the config.

    ``trace`` replays a ``.sbt`` tracefile: the configuration embedded at
    capture/generation time is authoritative (so replay is bit-exact) and
    the other configuration arguments are ignored.
    """
    del max_ns  # part of the run, not of the config
    if trace is not None:
        meta = read_meta(trace)
        if "config" not in meta:
            raise ValueError(
                f"tracefile {trace!r} has no embedded config; it was not "
                f"written by 'repro trace gen/capture' and cannot be "
                f"replayed as a sweep cell"
            )
        config = SimConfig.from_dict(meta["config"])
        return config, int(meta.get("records_per_thread") or 0)
    design: DesignVariant = get_variant(variant)
    if records_per_thread is None:
        records_per_thread = default_records()
    base = build_config(
        scale=scale,
        timing=timing,
        seed=seed,
        cs_threshold_ns=cs_threshold_ns,
        t_policy=t_policy,
        write_log_bytes=write_log_bytes,
        dram_bytes=dram_bytes,
        host_budget_bytes=host_budget_bytes,
        warmup_fraction=warmup_fraction,
        ssd_overrides=ssd_overrides,
        device_model=device_model,
    )
    if threads is None:
        threads = design.default_threads(base.cpu.cores)
    return base.replace(threads=threads), records_per_thread


def run_workload(
    workload: str,
    variant: str,
    *,
    scale: int = DEFAULT_SCALE,
    records_per_thread: Optional[int] = None,
    threads: Optional[int] = None,
    timing: str = "ULL",
    seed: int = 42,
    cs_threshold_ns: Optional[float] = None,
    t_policy: Optional[str] = None,
    write_log_bytes: Optional[int] = None,
    dram_bytes: Optional[int] = None,
    host_budget_bytes: Optional[int] = None,
    warmup_fraction: float = 0.1,
    max_ns: Optional[float] = None,
    ssd_overrides: Optional[Dict[str, object]] = None,
    device_model: Optional[object] = None,
    trace: Optional[str] = None,
    timeline: Optional[str] = None,
) -> RunResult:
    """Simulate one (workload, design) pair and return its stats.

    ``workload`` names a Table I application or a registered scenario
    (see :mod:`repro.scenarios.library`).  ``trace`` replays a ``.sbt``
    tracefile instead of generating traces: the file's embedded config,
    thread count and MLP are used, making replay bit-exact on every
    backend.

    ``timeline`` writes a Chrome-trace-event/Perfetto JSON of the run to
    the given path (``docs/OBSERVABILITY.md``).  It enables sim-time
    tracing on the config, which forces the timing-identical scalar
    engine path; timelined runs bypass the result cache (the orchestrator
    never passes ``timeline``), so cache keys are unaffected.
    """
    design: DesignVariant = get_variant(variant)
    config, records_per_thread = resolve_run(
        workload,
        variant,
        scale=scale,
        records_per_thread=records_per_thread,
        threads=threads,
        timing=timing,
        seed=seed,
        cs_threshold_ns=cs_threshold_ns,
        t_policy=t_policy,
        write_log_bytes=write_log_bytes,
        dram_bytes=dram_bytes,
        host_budget_bytes=host_budget_bytes,
        warmup_fraction=warmup_fraction,
        ssd_overrides=ssd_overrides,
        device_model=device_model,
        trace=trace,
    )
    if trace is not None:
        meta, traces = read_tracefile(trace)
        mlp = int(meta.get("mlp") or 8)
    else:
        traces, mlp = _traces_for(
            workload, config.threads, records_per_thread, scale, seed
        )
    if timeline is not None:
        config = config.with_trace(enabled=True)
    system = System(config, traces, design, workload_mlp=mlp)
    stats = system.run(max_ns=max_ns)
    if timeline is not None and system.tracer is not None:
        system.tracer.write(timeline)
    return RunResult(
        workload=workload,
        variant=variant,
        threads=len(traces),
        stats=stats,
        config=system.config,
    )


def capture_workload(
    workload: str,
    variant: str,
    out_path: str,
    **kwargs: object,
) -> RunResult:
    """Run one cell while capturing the consumed trace to ``out_path``.

    The capture tap sits on the live simulation's thread contexts (each
    record is recorded the first time a core fetches it), and the
    tracefile embeds the resolved config, so ``repro trace replay`` on
    the file reproduces this run's stats bit-exactly.
    """
    design: DesignVariant = get_variant(variant)
    max_ns = kwargs.pop("max_ns", None)
    config, records_per_thread = resolve_run(workload, variant, **kwargs)
    scale = int(kwargs.get("scale", DEFAULT_SCALE))
    seed = int(kwargs.get("seed", 42))
    traces, mlp = _traces_for(
        workload, config.threads, records_per_thread, scale, seed
    )
    system = System(config, traces, design, workload_mlp=mlp)
    captured: List[List[TraceRecord]] = [[] for _ in traces]
    for thread in system.threads:
        thread.on_fetch = captured[thread.tid].append
    stats = system.run(max_ns=max_ns)
    meta = {
        "kind": "capture",
        "workload": workload,
        "variant": variant,
        "seed": seed,
        "scale": scale,
        "threads": len(traces),
        "records_per_thread": records_per_thread,
        "mlp": mlp,
        "config": config.to_dict(),
    }
    write_tracefile(out_path, captured, meta)
    return RunResult(
        workload=workload,
        variant=variant,
        threads=len(traces),
        stats=stats,
        config=system.config,
    )
