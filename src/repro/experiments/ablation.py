"""Ablations of this reproduction's own design choices.

DESIGN.md calls out several modelling/design decisions beyond the
paper's named variants; these sweeps quantify them:

* baseline sequential prefetching (Base-CSSD's published optimisation),
* the promotion hotness threshold (§III-C tracks counts vs a threshold),
* the baseline's dirty-page persistence interval (the block-durability
  semantics SkyByte's battery-backed log escapes),
* the scheduling quantum backstop.

All cells run through the orchestrator (``ssd_overrides`` carries the
ablated knob), so they parallelise and cache like every other sweep.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.orchestrator import SweepJob, run_sweep
from repro.experiments.runner import default_records


def prefetch_ablation(
    workloads: Sequence[str] = ("srad", "bc"),
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, float]]:
    """Base-CSSD with and without next-page prefetch.

    Expectation: streaming workloads (srad) lose noticeably without the
    prefetcher; pointer-chasing ones (bc) barely notice.
    """
    records = records or default_records()
    specs = []
    for wl in workloads:
        for depth in (1, 0):
            specs.append(SweepJob.make(
                wl, "Base-CSSD", records_per_thread=records,
                ssd_overrides={"prefetch_depth": depth},
            ))
    sweep = iter(run_sweep(specs, jobs=jobs, cache=cache, backend=backend,
                           progress=progress, policy=policy))
    rows: Dict[str, Dict[str, float]] = {}
    for wl in workloads:
        with_pf = next(sweep).stats
        without = next(sweep).stats
        rows[wl] = {
            "with_prefetch_ipns": with_pf.throughput_ipns,
            "without_prefetch_ipns": without.throughput_ipns,
            "prefetch_gain": with_pf.throughput_ipns
            / max(without.throughput_ipns, 1e-12),
        }
    return rows


def promotion_threshold_sweep(
    workload: str = "ycsb",
    thresholds: Sequence[int] = (8, 24, 64, 256),
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[int, Dict[str, float]]:
    """How the §III-C hotness threshold trades promotion precision
    against churn: too low promotes lukewarm pages (migration overhead),
    too high leaves hot pages on flash."""
    records = records or default_records()
    specs = [
        SweepJob.make(
            workload, "SkyByte-P", records_per_thread=records,
            ssd_overrides={"promotion_threshold": threshold},
        )
        for threshold in thresholds
    ]
    sweep = run_sweep(specs, jobs=jobs, cache=cache, backend=backend,
                      progress=progress, policy=policy)
    rows: Dict[int, Dict[str, float]] = {}
    for threshold, result in zip(thresholds, sweep):
        stats = result.stats
        rows[threshold] = {
            "ipns": stats.throughput_ipns,
            "pages_promoted": float(stats.pages_promoted),
            "pages_demoted": float(stats.pages_demoted),
            "host_served": stats.request_breakdown()["H-R/W"],
        }
    return rows


def persistence_interval_sweep(
    workload: str = "tpcc",
    intervals_us: Sequence[float] = (50, 100, 500, 0),
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[float, Dict[str, float]]:
    """The baseline's dirty-flush interval: tighter durability means more
    flash programs (0 disables the flush entirely -- the volatile-cache
    upper bound)."""
    records = records or default_records()
    specs = [
        SweepJob.make(
            workload, "Base-CSSD", records_per_thread=records,
            ssd_overrides={"dirty_flush_interval_ns": interval * 1000.0},
        )
        for interval in intervals_us
    ]
    sweep = run_sweep(specs, jobs=jobs, cache=cache, backend=backend,
                      progress=progress, policy=policy)
    rows: Dict[float, Dict[str, float]] = {}
    for interval, result in zip(intervals_us, sweep):
        stats = result.stats
        rows[interval] = {
            "ipns": stats.throughput_ipns,
            "flash_writes_per_Mi": stats.flash_page_writes
            / max(stats.instructions / 1e6, 1e-12),
        }
    return rows
