"""Ablations of this reproduction's own design choices.

DESIGN.md calls out several modelling/design decisions beyond the
paper's named variants; these sweeps quantify them:

* baseline sequential prefetching (Base-CSSD's published optimisation),
* the promotion hotness threshold (§III-C tracks counts vs a threshold),
* the baseline's dirty-page persistence interval (the block-durability
  semantics SkyByte's battery-backed log escapes),
* the scheduling quantum backstop.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


from repro.experiments.runner import build_config, default_records
from repro.sim.system import System
from repro.variants import get_variant
from repro.workloads.suites import get_model


def _run_with_ssd_override(
    workload: str,
    variant: str,
    records: int,
    threads: Optional[int] = None,
    **ssd_overrides,
):
    design = get_variant(variant)
    config = build_config()
    if threads is None:
        threads = design.default_threads(config.cpu.cores)
    config = config.replace(threads=threads).with_ssd(**ssd_overrides)
    model = get_model(workload)
    traces = model.generate(threads, records)
    system = System(config, traces, design, workload_mlp=model.spec.mlp)
    return system.run()


def prefetch_ablation(
    workloads: Sequence[str] = ("srad", "bc"),
    records: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Base-CSSD with and without next-page prefetch.

    Expectation: streaming workloads (srad) lose noticeably without the
    prefetcher; pointer-chasing ones (bc) barely notice.
    """
    records = records or default_records()
    rows: Dict[str, Dict[str, float]] = {}
    for wl in workloads:
        with_pf = _run_with_ssd_override(wl, "Base-CSSD", records,
                                         prefetch_depth=1)
        without = _run_with_ssd_override(wl, "Base-CSSD", records,
                                         prefetch_depth=0)
        rows[wl] = {
            "with_prefetch_ipns": with_pf.throughput_ipns,
            "without_prefetch_ipns": without.throughput_ipns,
            "prefetch_gain": with_pf.throughput_ipns
            / max(without.throughput_ipns, 1e-12),
        }
    return rows


def promotion_threshold_sweep(
    workload: str = "ycsb",
    thresholds: Sequence[int] = (8, 24, 64, 256),
    records: Optional[int] = None,
) -> Dict[int, Dict[str, float]]:
    """How the §III-C hotness threshold trades promotion precision
    against churn: too low promotes lukewarm pages (migration overhead),
    too high leaves hot pages on flash."""
    records = records or default_records()
    rows: Dict[int, Dict[str, float]] = {}
    for threshold in thresholds:
        stats = _run_with_ssd_override(
            workload, "SkyByte-P", records, promotion_threshold=threshold
        )
        rows[threshold] = {
            "ipns": stats.throughput_ipns,
            "pages_promoted": float(stats.pages_promoted),
            "pages_demoted": float(stats.pages_demoted),
            "host_served": stats.request_breakdown()["H-R/W"],
        }
    return rows


def persistence_interval_sweep(
    workload: str = "tpcc",
    intervals_us: Sequence[float] = (50, 100, 500, 0),
    records: Optional[int] = None,
) -> Dict[float, Dict[str, float]]:
    """The baseline's dirty-flush interval: tighter durability means more
    flash programs (0 disables the flush entirely -- the volatile-cache
    upper bound)."""
    records = records or default_records()
    rows: Dict[float, Dict[str, float]] = {}
    for interval in intervals_us:
        stats = _run_with_ssd_override(
            workload, "Base-CSSD", records,
            dirty_flush_interval_ns=interval * 1000.0,
        )
        rows[interval] = {
            "ipns": stats.throughput_ipns,
            "flash_writes_per_Mi": stats.flash_page_writes
            / max(stats.instructions / 1e6, 1e-12),
        }
    return rows
