"""Headline evaluation experiments: Figs. 14-18 and Table III (§VI-B/C/D).

Fig. 14 is the main ablation across the eight designs; Fig. 15 sweeps
thread counts; Fig. 16 breaks requests into the H-R/W, S-R-H, S-R-M and
S-W classes; Fig. 17 decomposes AMAT; Fig. 18 compares flash write
traffic; Table III reports SkyByte-WP's average flash read latency.

Because design variants run different thread counts (24 threads with the
coordinated context switch, 8 otherwise) over per-thread traces, all
"normalized execution time" numbers here are time-per-instruction ratios
-- exactly the paper's metric once its fixed program section is divided
out.

Every function fans its independent (workload, variant) cells out
through :func:`repro.experiments.orchestrator.run_sweep`; pass ``jobs``
to parallelise, ``cache`` to reuse previously simulated cells, and
``progress`` to observe every finished cell (the hook ``python -m repro
report`` uses for incremental reporting).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.orchestrator import SweepJob, run_sweep, sweep_product
from repro.experiments.runner import default_records
from repro.variants import MAIN_VARIANTS
from repro.workloads.suites import WORKLOAD_NAMES

#: Paper-reported reference points (SS VI-B/C) for the fidelity report:
#: Fig. 14's 6.11x geometric-mean speedup of SkyByte-Full over
#: Base-CSSD, and Table III's per-workload average flash read latency
#: in microseconds.
PAPER_EXPECTED = {
    "fig14": {"skybyte_full_geomean_speedup": 6.11},
    "table3": {
        "read_latency_us": {
            "bc": 3.5, "bfs-dense": 25.7, "dlrm": 3.4, "radix": 4.9,
            "srad": 22.5, "tpcc": 19.6, "ycsb": 3.3,
        },
    },
}


def fig14_overall(
    workloads: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 14: normalized execution time of every design vs Base-CSSD.

    Returns {workload: {variant: normalized_time}} (lower is better,
    Base-CSSD = 1.0).  Paper shape: SkyByte-Full best of the CXL designs
    (6.11x mean speedup), DRAM-Only the ideal floor, and each mechanism
    (P, C, W) individually above the baseline.
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    variants = list(variants or MAIN_VARIANTS)
    records = records or default_records()
    sweep = run_sweep(
        sweep_product(workloads, variants, records_per_thread=records),
        jobs=jobs,
        cache=cache,
        backend=backend,
        progress=progress,
        policy=policy,
    )
    rows: Dict[str, Dict[str, float]] = {}
    it = iter(sweep)
    for wl in workloads:
        base = None
        per_variant: Dict[str, float] = {}
        for variant in variants:
            r = next(it)
            if base is None:
                base = r
            per_variant[variant] = 1.0 / max(r.speedup_over(base), 1e-12)
        rows[wl] = per_variant
    return rows


def fig15_thread_scaling(
    workloads: Optional[Sequence[str]] = None,
    thread_counts: Sequence[int] = (8, 16, 24, 32, 40, 48),
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Fig. 15: SkyByte-Full throughput and SSD bandwidth vs threads.

    Normalized to SkyByte-WP at 8 threads, as in the paper.  Shape:
    throughput tracks SSD bandwidth utilisation; flash-read-heavy
    workloads scale further before the switch overhead dominates.
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    records = records or default_records()
    specs = []
    for wl in workloads:
        specs.append(
            SweepJob.make(wl, "SkyByte-WP", records_per_thread=records, threads=8)
        )
        specs.extend(
            SweepJob.make(
                wl, "SkyByte-Full", records_per_thread=records, threads=threads
            )
            for threads in thread_counts
        )
    sweep = iter(run_sweep(specs, jobs=jobs, cache=cache, backend=backend,
                           progress=progress, policy=policy))
    rows: Dict[str, Dict[int, Dict[str, float]]] = {}
    for wl in workloads:
        baseline = next(sweep)
        base_ipns = max(baseline.stats.throughput_ipns, 1e-12)
        base_bw = max(baseline.stats.flash_page_reads
                      / max(baseline.stats.execution_ns, 1.0), 1e-12)
        per_threads: Dict[int, Dict[str, float]] = {}
        for threads in thread_counts:
            r = next(sweep)
            flash_bw = r.stats.flash_page_reads / max(r.stats.execution_ns, 1.0)
            per_threads[threads] = {
                "throughput": r.stats.throughput_ipns / base_ipns,
                "ssd_bandwidth": flash_bw / base_bw,
                "context_switches": float(r.stats.context_switches),
            }
        rows[wl] = per_threads
    return rows


def fig16_request_breakdown(
    workloads: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    variant: str = "SkyByte-Full",
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 16: fraction of requests per class (H-R/W, S-R-H, S-R-M, S-W)
    under the full SkyByte design."""
    workloads = list(workloads or WORKLOAD_NAMES)
    records = records or default_records()
    sweep = run_sweep(
        sweep_product(workloads, [variant], records_per_thread=records),
        jobs=jobs,
        cache=cache,
        backend=backend,
        progress=progress,
        policy=policy,
    )
    return {wl: r.stats.request_breakdown() for wl, r in zip(workloads, sweep)}


def fig17_amat(
    workloads: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 17: AMAT and its component breakdown per design.

    Returns {workload: {variant: {"amat_ns": ..., components...}}}.
    Shape: the flash component shrinks with W (write log) and P
    (promotion); SkyByte-Full approaches DRAM-Only.
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    variants = list(
        variants
        or ["Base-CSSD", "SkyByte-P", "SkyByte-W", "SkyByte-WP",
            "SkyByte-Full", "DRAM-Only"]
    )
    records = records or default_records()
    sweep = iter(run_sweep(
        sweep_product(workloads, variants, records_per_thread=records),
        jobs=jobs,
        cache=cache,
        backend=backend,
        progress=progress,
        policy=policy,
    ))
    rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    for wl in workloads:
        per_variant: Dict[str, Dict[str, float]] = {}
        for variant in variants:
            r = next(sweep)
            entry = {"amat_ns": r.stats.amat_ns}
            entry.update(r.stats.amat_breakdown())
            per_variant[variant] = entry
        rows[wl] = per_variant
    return rows


def fig18_write_traffic(
    workloads: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 18: flash write traffic normalized to Base-CSSD.

    Traffic is measured per instruction so designs running different
    thread counts compare fairly.  Shape: the write log (W) cuts traffic
    the most; promotion (P) also helps; context switching adds a little
    back through extra contention.
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    variants = list(variants or MAIN_VARIANTS[:-1])  # DRAM-Only writes none
    records = records or default_records()
    sweep = iter(run_sweep(
        sweep_product(workloads, variants, records_per_thread=records),
        jobs=jobs,
        cache=cache,
        backend=backend,
        progress=progress,
        policy=policy,
    ))
    rows: Dict[str, Dict[str, float]] = {}
    for wl in workloads:
        base_rate = None
        per_variant: Dict[str, float] = {}
        for variant in variants:
            r = next(sweep)
            rate = r.stats.flash_page_writes / max(r.stats.instructions, 1)
            if base_rate is None:
                base_rate = max(rate, 1e-12)
            per_variant[variant] = rate / base_rate
        rows[wl] = per_variant
    return rows


def table3_flash_read_latency(
    workloads: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, float]:
    """Table III: average flash read latency (us) under SkyByte-WP.

    Paper values: bc 3.5, bfs-dense 25.7, dlrm 3.4, radix 4.9, srad 22.5,
    tpcc 19.6, ycsb 3.3 -- i.e. queueing/compaction interference pushes
    some workloads well above the 3 us device latency.
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    records = records or default_records()
    sweep = run_sweep(
        sweep_product(workloads, ["SkyByte-WP"], records_per_thread=records),
        jobs=jobs,
        cache=cache,
        backend=backend,
        progress=progress,
        policy=policy,
    )
    return {
        wl: r.stats.flash_read_latency.mean / 1000.0
        for wl, r in zip(workloads, sweep)
    }
