"""Cost-effectiveness analysis (§VI-B).

The paper prices DDR5 DRAM at $4.28/GB and ULL SSD at $0.27/GB (summer
2024 market), concluding SkyByte-Full costs 15.9x less than the
DRAM-only setup while reaching 75% of its performance -- an 11.8x
cost-effectiveness win.  This module reproduces that arithmetic with the
measured performance ratio from the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.orchestrator import run_sweep, sweep_product
from repro.experiments.runner import default_records
from repro.workloads.suites import WORKLOAD_NAMES

#: $/GB, from §VI-B.
DDR5_COST_PER_GB = 4.28
ULL_SSD_COST_PER_GB = 0.27

#: Paper-reported headline numbers (SS VI-B) for the fidelity report:
#: the 15.9x DRAM:flash price ratio, SkyByte-Full reaching 75% of
#: DRAM-Only performance, and the resulting 11.8x cost-effectiveness.
PAPER_EXPECTED = {
    "cost": {
        "cost_ratio": 15.9,
        "performance_fraction_geomean": 0.75,
        "cost_effectiveness": 11.8,
    },
}


@dataclass
class CostModel:
    """Capacity and price assumptions for the two setups."""

    #: DRAM-only: enough DDR5 to hold the whole working set (the paper's
    #: ideal assumes the 128 GB the CXL-SSD provides, in DRAM).
    dram_only_gb: float = 128.0
    #: SkyByte: the CXL-SSD's flash plus the small host DRAM budget.
    skybyte_flash_gb: float = 128.0
    skybyte_host_dram_gb: float = 2.0

    @property
    def dram_only_cost(self) -> float:
        return self.dram_only_gb * DDR5_COST_PER_GB

    @property
    def skybyte_cost(self) -> float:
        return (
            self.skybyte_flash_gb * ULL_SSD_COST_PER_GB
            + self.skybyte_host_dram_gb * DDR5_COST_PER_GB
        )

    @property
    def cost_ratio(self) -> float:
        """The paper's headline 15.9x: the per-GB price ratio of DDR5
        over ULL flash ($4.28 / $0.27).  0.75 performance x 15.9 gives
        the 11.8x cost-effectiveness of §VI-B."""
        return DDR5_COST_PER_GB / ULL_SSD_COST_PER_GB

    @property
    def setup_cost_ratio(self) -> float:
        """Whole-setup ratio including SkyByte's small host-DRAM budget
        (slightly below the per-GB ratio)."""
        return self.dram_only_cost / self.skybyte_cost


def cost_effectiveness(
    workloads: Optional[Sequence[str]] = None,
    records: Optional[int] = None,
    model: Optional[CostModel] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, object]:
    """Measured performance-per-dollar of SkyByte-Full vs DRAM-Only.

    Returns the per-workload performance fractions, their geometric mean,
    the cost ratio and the resulting cost-effectiveness multiple.
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    records = records or default_records()
    model = model or CostModel()
    sweep = iter(run_sweep(
        sweep_product(workloads, ["DRAM-Only", "SkyByte-Full"],
                      records_per_thread=records),
        jobs=jobs,
        cache=cache,
        backend=backend,
        progress=progress,
        policy=policy,
    ))
    fractions: Dict[str, float] = {}
    product = 1.0
    for wl in workloads:
        ideal = next(sweep)
        full = next(sweep)
        frac = full.stats.throughput_ipns / max(ideal.stats.throughput_ipns, 1e-12)
        fractions[wl] = frac
        product *= frac
    geomean = product ** (1.0 / len(workloads)) if workloads else 0.0
    return {
        "performance_fraction": fractions,
        "performance_fraction_geomean": geomean,
        "cost_ratio": model.cost_ratio,
        "setup_cost_ratio": model.setup_cost_ratio,
        "cost_effectiveness": geomean * model.cost_ratio,
        "dram_only_cost_usd": model.dram_only_cost,
        "skybyte_cost_usd": model.skybyte_cost,
    }
