"""Flash device-model sensitivity: flat vs deep scheduler/GC policies.

The deep device model (``docs/DEVICE_MODEL.md``) routes every command to
the die and plane its page physically lives on, so hot blocks contend
for their own unit while the flat model's earliest-free-die dispatch
hides that entirely.  This driver quantifies what the extra fidelity
costs and buys: one cell per (workload, device-model policy), reporting
mean flash read latency, execution-time slowdown against the flat
model, write amplification, and the deep model's GC/queue-depth stats.

All cells fan out through the orchestrator, so they cache, replay and
sweep on every backend like any other experiment.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.orchestrator import SweepJob, run_sweep
from repro.experiments.runner import default_records

#: Device-model policies compared, in plotting order: the flat baseline,
#: the full deep model, deep without read priority (reads queue FIFO
#: behind programs), and deep with a bounded read-bypass budget.
MODEL_SPECS: Dict[str, Optional[Dict[str, object]]] = {
    "flat": None,
    "deep": {"kind": "deep"},
    "deep-no-rp": {"kind": "deep", "read_priority": False},
    "deep-bounded": {"kind": "deep", "max_read_bypass": 4},
}

#: Default workload slice: the read-heavy pointer chaser, the scan-heavy
#: analytics mix, and the write-heavy stream -- the three Table I shapes
#: the scheduler policies separate most.
DEFAULT_WORKLOADS = ("tab1-bc", "tab1-dlrm", "tab1-ycsb")

def flash_sensitivity_study(
    workloads: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    variant: str = "SkyByte-Full",
    records: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    backend: object = None,
    progress: object = None,
    policy: object = None,
) -> Dict[str, object]:
    """One cell per (workload, device-model policy).

    Returns ``{"variant", "records_per_thread", "models", "workloads",
    "rows"}`` where ``rows[workload][model]`` holds execution time, mean
    flash read latency, slowdown vs the flat cell, write amplification,
    and (deep cells) GC and queue-depth counters.
    """
    workloads = list(workloads or DEFAULT_WORKLOADS)
    models = list(models or MODEL_SPECS)
    unknown = [m for m in models if m not in MODEL_SPECS]
    if unknown:
        raise KeyError(
            f"unknown device model(s) {unknown}; available: {sorted(MODEL_SPECS)}"
        )
    records = records or default_records()
    specs = [
        SweepJob.make(
            wl,
            variant,
            records_per_thread=records,
            device_model=MODEL_SPECS[model],
        )
        for wl in workloads
        for model in models
    ]
    sweep = iter(run_sweep(specs, jobs=jobs, cache=cache, backend=backend,
                           progress=progress, policy=policy))
    cells = {wl: {model: next(sweep) for model in models} for wl in workloads}
    rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    for wl in workloads:
        flat_ns = None
        if "flat" in models:
            flat_ns = max(cells[wl]["flat"].stats.execution_ns, 1e-12)
        row: Dict[str, Dict[str, float]] = {}
        for model in models:
            stats = cells[wl][model].stats
            entry = {
                "execution_ns": stats.execution_ns,
                "mean_flash_read_ns": stats.flash_read_latency.mean,
                "p99_flash_read_ns": stats.flash_read_latency.percentile(99.0),
                "write_amplification": stats.write_amplification,
                "flash_block_erases": float(stats.flash_block_erases),
                "gc_invocations": float(stats.gc_invocations),
                "slowdown_vs_flat": (
                    stats.execution_ns / flat_ns if flat_ns else 1.0
                ),
            }
            if stats.device is not None:
                entry["gc_reads"] = float(stats.device.gc_reads)
                entry["gc_programs"] = float(stats.device.gc_programs)
                entry["gc_erases"] = float(stats.device.gc_erases)
                entry["background_gc_campaigns"] = float(
                    stats.device.background_campaigns
                )
                entry["mean_queue_depth"] = stats.device.mean_queue_depth
                entry["max_queue_depth"] = float(stats.device.max_queue_depth)
            row[model] = entry
        rows[wl] = row
    return {
        "variant": variant,
        "records_per_thread": records,
        "models": models,
        "workloads": workloads,
        "rows": rows,
    }
