"""Host OS models: threads, scheduler, page table, PLB."""
