"""Host page table model.

Tracks, per virtual page, whether it currently maps to CXL device memory
or to a promoted frame in host DRAM (§III-C: "Upon the completion of a
page migration, the corresponding page table entry will be updated to
reflect the new memory address").  Also tracks which cachelines the host
dirtied while the page lived in host DRAM, so a demotion knows what must
be written back to the SSD.

Addresses are 4 KB-page granular; host frames are abstract indices (no
actual frame allocator is needed beyond a free counter, standing in for
the Linux buddy allocator the paper uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple


class Location:
    """Where a virtual page's data currently lives."""

    CXL = "cxl"
    HOST = "host"


@dataclass
class PageTableEntry:
    """One PTE (only the fields the migration mechanism touches)."""

    vpn: int
    location: str = Location.CXL
    host_frame: Optional[int] = None
    #: Bitmap of cachelines written while resident in host DRAM.
    dirty_mask: int = 0
    #: Last access time, for the LRU-like demotion choice ("finding a
    #: relatively cold page tracked by the active/inactive list").
    last_access_ns: float = 0.0


class PageTable:
    """Virtual-page -> location map with promotion bookkeeping."""

    def __init__(self) -> None:
        self._entries: Dict[int, PageTableEntry] = {}
        self._next_frame = 0
        self.promoted_count = 0

    def entry(self, vpn: int) -> PageTableEntry:
        e = self._entries.get(vpn)
        if e is None:
            e = PageTableEntry(vpn=vpn)
            self._entries[vpn] = e
        return e

    def is_promoted(self, vpn: int) -> bool:
        e = self._entries.get(vpn)
        return e is not None and e.location == Location.HOST

    def promote(self, vpn: int, carried_dirty_mask: int = 0) -> PageTableEntry:
        """Point the PTE at a fresh host frame.

        ``carried_dirty_mask`` carries dirty-versus-flash state the SSD
        dropped when it invalidated its DRAM copies, so no dirtiness is
        lost across the move.
        """
        e = self.entry(vpn)
        if e.location == Location.HOST:
            raise ValueError(f"page {vpn} already promoted")
        e.location = Location.HOST
        e.host_frame = self._next_frame
        e.dirty_mask = carried_dirty_mask
        self._next_frame += 1
        self.promoted_count += 1
        return e

    def demote(self, vpn: int) -> Tuple[PageTableEntry, int]:
        """Point the PTE back at CXL memory; returns (entry, dirty_mask)
        so the caller can write dirty lines back to the SSD."""
        e = self._entries.get(vpn)
        if e is None or e.location != Location.HOST:
            raise ValueError(f"page {vpn} is not promoted")
        dirty = e.dirty_mask
        e.location = Location.CXL
        e.host_frame = None
        e.dirty_mask = 0
        self.promoted_count -= 1
        return e, dirty

    def record_host_access(self, vpn: int, line: int, is_write: bool, now: float) -> None:
        e = self._entries[vpn]
        e.last_access_ns = now
        if is_write:
            e.dirty_mask |= 1 << line

    def coldest_promoted(self) -> Optional[int]:
        """The promoted page with the oldest last access (demotion victim)."""
        best_vpn, best_time = None, None
        for vpn, e in self._entries.items():
            if e.location != Location.HOST:
                continue
            if best_time is None or e.last_access_ns < best_time:
                best_vpn, best_time = vpn, e.last_access_ns
        return best_vpn

    def promoted_pages(self) -> Iterator[int]:
        for vpn, e in self._entries.items():
            if e.location == Location.HOST:
                yield vpn
