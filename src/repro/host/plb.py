"""Promotion Look-aside Buffer (PLB).

The PLB sits in the host root complex and tracks in-flight page
promotions so accesses stay consistent mid-migration (§III-C, following
FlatFlash): 64 entries, each recording source/destination page addresses
(8 B each), a 64-bit migrated-cacheline bitmap (8 B) and a valid bit --
24 B per entry.  Reads to a page under promotion are served from the SSD
DRAM; writes go to the host copy iff the line's migrated bit is set.

§IV extends the PLB to 2 MB huge pages with a two-level scheme: a
first-level entry holds a 64 B bitmap marking which 4 KB chunks have
migrated, and a single second-level entry tracks the cachelines of the
chunk currently in flight.  :class:`HugePagePLB` implements that variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import CACHELINES_PER_PAGE

PLB_ENTRIES = 64
PLB_ENTRY_BYTES = 24  # 8 B src + 8 B dst + 8 B bitmap (+ valid bit)

HUGE_PAGE_CHUNKS = 512  # 2 MB / 4 KB
FIRST_LEVEL_BITMAP_BYTES = 64  # 512 bits -> one bit per 4 KB chunk


@dataclass
class PLBEntry:
    """One in-flight 4 KB promotion."""

    src_page: int  # SSD (CXL-space) page address
    dst_frame: int  # host DRAM frame
    migrated_mask: int = 0  # bit i set => cacheline i already copied
    valid: bool = True

    def mark_migrated(self, line: int) -> None:
        self.migrated_mask |= 1 << line

    def is_migrated(self, line: int) -> bool:
        return bool(self.migrated_mask >> line & 1)

    @property
    def complete(self) -> bool:
        return self.migrated_mask == (1 << CACHELINES_PER_PAGE) - 1


class PromotionLookasideBuffer:
    """Fixed-capacity table of in-flight promotions."""

    def __init__(self, entries: int = PLB_ENTRIES) -> None:
        self.capacity = entries
        self._by_src: Dict[int, PLBEntry] = {}

    def __len__(self) -> int:
        return len(self._by_src)

    @property
    def full(self) -> bool:
        return len(self._by_src) >= self.capacity

    def begin(self, src_page: int, dst_frame: int) -> Optional[PLBEntry]:
        """Allocate an entry for a new promotion, or None if the PLB is
        full (the migration must wait -- hardware resource limit)."""
        if self.full or src_page in self._by_src:
            return None
        entry = PLBEntry(src_page=src_page, dst_frame=dst_frame)
        self._by_src[src_page] = entry
        return entry

    def lookup(self, src_page: int) -> Optional[PLBEntry]:
        return self._by_src.get(src_page)

    def is_migrating(self, src_page: int) -> bool:
        return src_page in self._by_src

    def route_write(self, src_page: int, line: int) -> str:
        """Where a write to a page under promotion must go: ``"host"`` if
        the line already migrated, else ``"ssd"``."""
        entry = self._by_src.get(src_page)
        if entry is None:
            raise KeyError(f"page {src_page} is not under promotion")
        return "host" if entry.is_migrated(line) else "ssd"

    def complete(self, src_page: int) -> PLBEntry:
        """Retire the entry once the OS acknowledges the migration."""
        entry = self._by_src.pop(src_page, None)
        if entry is None:
            raise KeyError(f"page {src_page} is not under promotion")
        entry.valid = False
        return entry

    @property
    def memory_bytes(self) -> int:
        return self.capacity * PLB_ENTRY_BYTES


@dataclass
class HugePLBEntry:
    """One in-flight 2 MB promotion (two-level tracking, §IV)."""

    src_page: int  # first 4 KB chunk's page address
    dst_frame: int
    chunk_mask: int = 0  # bit c set => 4 KB chunk c fully migrated
    current_chunk: int = -1  # chunk in flight, -1 when none
    current_lines: int = 0  # cacheline bitmap of the in-flight chunk

    def start_chunk(self, chunk: int) -> None:
        if self.current_chunk >= 0:
            raise ValueError("a chunk is already in flight")
        self.current_chunk = chunk
        self.current_lines = 0

    def mark_line(self, line: int) -> None:
        if self.current_chunk < 0:
            raise ValueError("no chunk in flight")
        self.current_lines |= 1 << line

    def finish_chunk(self) -> None:
        if self.current_lines != (1 << CACHELINES_PER_PAGE) - 1:
            raise ValueError("chunk finished before all lines migrated")
        self.chunk_mask |= 1 << self.current_chunk
        self.current_chunk = -1
        self.current_lines = 0

    def is_line_migrated(self, chunk: int, line: int) -> bool:
        if self.chunk_mask >> chunk & 1:
            return True
        if chunk == self.current_chunk:
            return bool(self.current_lines >> line & 1)
        return False

    @property
    def complete(self) -> bool:
        return self.chunk_mask == (1 << HUGE_PAGE_CHUNKS) - 1


class HugePagePLB:
    """PLB variant migrating 2 MB pages chunk-by-chunk (§IV)."""

    def __init__(self, entries: int = PLB_ENTRIES) -> None:
        self.capacity = entries
        self._by_src: Dict[int, HugePLBEntry] = {}

    def begin(self, src_page: int, dst_frame: int) -> Optional[HugePLBEntry]:
        if len(self._by_src) >= self.capacity or src_page in self._by_src:
            return None
        entry = HugePLBEntry(src_page=src_page, dst_frame=dst_frame)
        self._by_src[src_page] = entry
        return entry

    def lookup(self, src_page: int) -> Optional[HugePLBEntry]:
        return self._by_src.get(src_page)

    def complete(self, src_page: int) -> HugePLBEntry:
        entry = self._by_src.pop(src_page, None)
        if entry is None:
            raise KeyError(f"huge page {src_page} is not under promotion")
        return entry

    @property
    def entry_tracking_bytes(self) -> int:
        """Per-entry tracking state: 64 B chunk bitmap + 8 B line bitmap,
        versus the naive 4 KB bitmap §IV rejects."""
        return FIRST_LEVEL_BITMAP_BYTES + 8
