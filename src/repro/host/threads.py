"""Software thread contexts.

A :class:`ThreadContext` wraps one per-thread instruction trace and the
replay cursor the coordinated context switch needs: when a load triggers
the Long Delay Exception, its address is saved "such that when the thread
is switched back, it will resume from this instruction and re-issue this
memory access" (§III-A, step C4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim import fastpath

#: One trace record: (instructions since previous memory op, is_write, addr).
TraceRecord = Tuple[int, bool, int]


@dataclass(slots=True)
class Window:
    """A ROB-bounded batch of work handed to the core model."""

    instructions: int
    ops: List[TraceRecord] = field(default_factory=list)


class ThreadContext:
    """One software thread replaying a memory trace."""

    def __init__(self, tid: int, trace: Sequence[TraceRecord]) -> None:
        self.tid = tid
        self.trace = trace
        self.pos = 0
        #: Memory op to re-issue first on resume (set on context switch).
        self.replay: Optional[TraceRecord] = None
        #: Records fetched into a window but squashed by a context switch.
        self._pushback: List[TraceRecord] = []
        #: Wall time received on a core (CFS vruntime).
        self.runtime_ns = 0.0
        self.instructions_done = 0
        #: True right after a context switch brought this thread back:
        #: its first window replays the squashed access, and an immediate
        #: re-switch on the same access would ping-pong.
        self.just_resumed = False
        #: Trace-capture tap: called once per record the *first* time it
        #: is fetched from the trace (replays and pushbacks are not
        #: re-reported), so a capture sees exactly the consumed stream in
        #: order.  ``python -m repro trace capture`` installs this.
        self.on_fetch: Optional[callable] = None
        #: Vectorized window plan (lazy): ``_plan[p]`` is the record count
        #: of the ROB/MSHR window starting at trace position ``p`` and
        #: ``_cum[i]`` the total gap instructions of records ``0..i-1``,
        #: both computed for the whole trace in one numpy pass so each
        #: ``next_window`` is two list lookups and a slice.
        self._plan: Optional[List[int]] = None
        self._cum: Optional[List[int]] = None
        self._plan_key: Optional[Tuple[int, int]] = None
        self._vectorized = fastpath.vectorized()

    @property
    def done(self) -> bool:
        return (
            self.pos >= len(self.trace)
            and self.replay is None
            and not self._pushback
        )

    @property
    def remaining_records(self) -> int:
        n = len(self.trace) - self.pos + len(self._pushback)
        return n + (1 if self.replay is not None else 0)

    def _next_record(self) -> Optional[TraceRecord]:
        if self.replay is not None:
            record = self.replay
            self.replay = None
            return record
        if self._pushback:
            return self._pushback.pop(0)
        if self.pos < len(self.trace):
            record = self.trace[self.pos]
            self.pos += 1
            if self.on_fetch is not None:
                self.on_fetch(record)
            return record
        return None

    def next_window(self, max_instructions: int, max_ops: int) -> Optional[Window]:
        """Build the next ROB/MSHR-bounded window of records.

        Returns None when the trace is exhausted.  At least one record is
        always included so a record whose gap exceeds the ROB still makes
        progress.

        The vectorized path slices a whole window out of the trace with
        one searchsorted over the gap prefix sums instead of a
        per-record Python loop; it yields byte-identical windows and is
        skipped whenever per-record state is live (a replay record, a
        pushback from a squash, or a capture tap).
        """
        if (
            self._vectorized
            and self.replay is None
            and not self._pushback
            and self.on_fetch is None
        ):
            return self._next_window_batched(max_instructions, max_ops)
        window = Window(instructions=0)
        while len(window.ops) < max_ops:
            record = self._next_record()
            if record is None:
                break
            gap = record[0]
            if window.ops and window.instructions + gap > max_instructions:
                # Does not fit: push back for the next window.
                self._pushback.insert(0, record)
                break
            window.instructions += gap
            window.ops.append(record)
        if not window.ops and window.instructions == 0:
            return None
        return window

    def _next_window_batched(
        self, max_instructions: int, max_ops: int
    ) -> Optional[Window]:
        """O(1) window fetch from the precomputed vectorized plan.

        The plan fixes, for *every* trace position, how many records the
        scalar loop would take from there, so a window is two list
        lookups and one slice regardless of where a squash left the
        cursor.
        """
        pos = self.pos
        trace = self.trace
        if pos >= len(trace):
            return None
        if self._plan_key != (max_instructions, max_ops):
            self._build_plan(max_instructions, max_ops)
        end = pos + self._plan[pos]
        cum = self._cum
        self.pos = end
        return Window(
            instructions=cum[end] - cum[pos],
            ops=list(trace[pos:end]),
        )

    def _build_plan(self, max_instructions: int, max_ops: int) -> None:
        """One numpy pass over the whole trace.

        With ``G`` the gap prefix sums, record ``j`` fits a window
        starting at ``p`` exactly when ``G[j+1] - G[p] <=
        max_instructions`` (the scalar loop's budget check), so the
        unclamped window length at every position is one vectorized
        ``searchsorted(side="right")``; clamping to ``[1, max_ops]``
        mirrors the at-least-one-record rule and the MSHR bound.  The
        results are kept as plain Python lists: per-window costs stay
        numpy-free and no ``np.int64`` can leak into stats accounting.
        """
        n = len(self.trace)
        gaps = np.fromiter((r[0] for r in self.trace), dtype=np.int64, count=n)
        cum = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(gaps, out=cum[1:])
        fit = (
            np.searchsorted(cum, cum[:n] + max_instructions, side="right")
            - 1
            - np.arange(n, dtype=np.int64)
        )
        self._plan = np.clip(fit, 1, max_ops).tolist()
        self._cum = cum.tolist()
        self._plan_key = (max_instructions, max_ops)

    def squash_after(self, index: int, window: Window) -> TraceRecord:
        """Context switch at the ``index``-th op of ``window``: that op is
        saved for replay (with its compute gap already consumed) and every
        later op is pushed back untouched.  Returns the replay record."""
        triggering = window.ops[index]
        # Its gap instructions were executed before the exception retired.
        self.replay = (0, triggering[1], triggering[2])
        self._pushback = list(window.ops[index + 1 :]) + self._pushback
        return self.replay
