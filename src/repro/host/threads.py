"""Software thread contexts.

A :class:`ThreadContext` wraps one per-thread instruction trace and the
replay cursor the coordinated context switch needs: when a load triggers
the Long Delay Exception, its address is saved "such that when the thread
is switched back, it will resume from this instruction and re-issue this
memory access" (§III-A, step C4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

#: One trace record: (instructions since previous memory op, is_write, addr).
TraceRecord = Tuple[int, bool, int]


@dataclass
class Window:
    """A ROB-bounded batch of work handed to the core model."""

    instructions: int
    ops: List[TraceRecord] = field(default_factory=list)


class ThreadContext:
    """One software thread replaying a memory trace."""

    def __init__(self, tid: int, trace: Sequence[TraceRecord]) -> None:
        self.tid = tid
        self.trace = trace
        self.pos = 0
        #: Memory op to re-issue first on resume (set on context switch).
        self.replay: Optional[TraceRecord] = None
        #: Records fetched into a window but squashed by a context switch.
        self._pushback: List[TraceRecord] = []
        #: Wall time received on a core (CFS vruntime).
        self.runtime_ns = 0.0
        self.instructions_done = 0
        #: True right after a context switch brought this thread back:
        #: its first window replays the squashed access, and an immediate
        #: re-switch on the same access would ping-pong.
        self.just_resumed = False
        #: Trace-capture tap: called once per record the *first* time it
        #: is fetched from the trace (replays and pushbacks are not
        #: re-reported), so a capture sees exactly the consumed stream in
        #: order.  ``python -m repro trace capture`` installs this.
        self.on_fetch: Optional[callable] = None

    @property
    def done(self) -> bool:
        return (
            self.pos >= len(self.trace)
            and self.replay is None
            and not self._pushback
        )

    @property
    def remaining_records(self) -> int:
        n = len(self.trace) - self.pos + len(self._pushback)
        return n + (1 if self.replay is not None else 0)

    def _next_record(self) -> Optional[TraceRecord]:
        if self.replay is not None:
            record = self.replay
            self.replay = None
            return record
        if self._pushback:
            return self._pushback.pop(0)
        if self.pos < len(self.trace):
            record = self.trace[self.pos]
            self.pos += 1
            if self.on_fetch is not None:
                self.on_fetch(record)
            return record
        return None

    def next_window(self, max_instructions: int, max_ops: int) -> Optional[Window]:
        """Build the next ROB/MSHR-bounded window of records.

        Returns None when the trace is exhausted.  At least one record is
        always included so a record whose gap exceeds the ROB still makes
        progress.
        """
        window = Window(instructions=0)
        while len(window.ops) < max_ops:
            record = self._next_record()
            if record is None:
                break
            gap = record[0]
            if window.ops and window.instructions + gap > max_instructions:
                # Does not fit: push back for the next window.
                self._pushback.insert(0, record)
                break
            window.instructions += gap
            window.ops.append(record)
        if not window.ops and window.instructions == 0:
            return None
        return window

    def squash_after(self, index: int, window: Window) -> TraceRecord:
        """Context switch at the ``index``-th op of ``window``: that op is
        saved for replay (with its compute gap already consumed) and every
        later op is pushed back untouched.  Returns the replay record."""
        triggering = window.ops[index]
        # Its gap instructions were executed before the exception retired.
        self.replay = (0, triggering[1], triggering[2])
        self._pushback = list(window.ops[index + 1 :]) + self._pushback
        return self.replay
