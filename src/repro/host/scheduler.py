"""OS thread scheduler model.

Implements the three policies of §III-A for picking the next runnable
thread after a Long Delay Exception yields the core:

* **RR** -- round robin over the run queue;
* **RANDOM** -- uniformly random runnable thread;
* **FAIRNESS** -- CFS-like: the thread with the least received execution
  time (vruntime) runs next, as in Linux's Completely Fair Scheduler.

A yielded thread is immediately re-enqueued ("the yield thread is
re-enqueued back to the run queue in OS, allowing it to be scheduled
again later") -- it is not blocked on I/O, so it may even be picked again
right away if nothing else is runnable, which the paper notes CFS
sometimes does.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.host.threads import ThreadContext

POLICIES = ("RR", "RANDOM", "FAIRNESS")


class Scheduler:
    """Run queue shared by all cores."""

    def __init__(self, policy: str = "FAIRNESS", seed: int = 0) -> None:
        policy = policy.upper()
        if policy == "CFS":
            policy = "FAIRNESS"
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; pick from {POLICIES}")
        self.policy = policy
        self._rng = random.Random(seed)
        self._queue: List[ThreadContext] = []
        self._waiting_cores: List = []  # cores parked for lack of work
        self._tenant_map = None  # set via set_tenant_qos

    def set_tenant_qos(self, tenant_map) -> None:
        """Install tenant-aware FAIRNESS picking (see :mod:`repro.qos`).

        Under "wfq" the pick key becomes weight-scaled virtual runtime
        (``runtime / weight``), so with one tenant of weight 1.0 the
        ordering is bit-identical to plain CFS.  Under "priority" the
        highest tenant priority wins, fair runtime within a level.
        """
        self._tenant_map = tenant_map

    # -- queue operations ---------------------------------------------------

    def enqueue(self, thread: ThreadContext) -> None:
        """Make ``thread`` runnable."""
        if thread.done:
            return
        self._queue.append(thread)

    def runnable(self) -> int:
        return len(self._queue)

    def pick_next(self, prefer_not: Optional[int] = None) -> Optional[ThreadContext]:
        """Dequeue the next thread per policy.

        ``prefer_not`` is the tid that just yielded: it is chosen only if
        no other thread is runnable (all policies try to give another
        thread the core, though CFS may still re-pick the yielder when its
        vruntime is lowest -- the paper's observed CFS quirk -- which we
        retain by *not* applying the preference under FAIRNESS).
        """
        if not self._queue:
            return None
        if self.policy == "RR":
            return self._pick_rr(prefer_not)
        if self.policy == "RANDOM":
            return self._pick_random(prefer_not)
        return self._pick_fair()

    def _pick_rr(self, prefer_not: Optional[int]) -> ThreadContext:
        if prefer_not is not None and len(self._queue) > 1:
            for i, t in enumerate(self._queue):
                if t.tid != prefer_not:
                    return self._queue.pop(i)
        return self._queue.pop(0)

    def _pick_random(self, prefer_not: Optional[int]) -> ThreadContext:
        candidates = self._queue
        if prefer_not is not None and len(candidates) > 1:
            indices = [i for i, t in enumerate(candidates) if t.tid != prefer_not]
        else:
            indices = list(range(len(candidates)))
        idx = self._rng.choice(indices)
        return self._queue.pop(idx)

    def _pick_fair(self) -> ThreadContext:
        if self._tenant_map is not None:
            from repro.qos import weighted_pick_key

            tmap = self._tenant_map
            best_i = min(
                range(len(self._queue)),
                key=lambda i: weighted_pick_key(
                    self._queue[i].runtime_ns, self._queue[i].tid, tmap
                ),
            )
            return self._queue.pop(best_i)
        best_i = min(
            range(len(self._queue)),
            key=lambda i: (self._queue[i].runtime_ns, self._queue[i].tid),
        )
        return self._queue.pop(best_i)

    # -- core parking (idle cores wait for work) -----------------------------

    def park_core(self, core) -> None:
        if core not in self._waiting_cores:
            self._waiting_cores.append(core)

    def wake_one_core(self) -> None:
        """Kick one parked core if there is work for it."""
        while self._waiting_cores and self._queue:
            core = self._waiting_cores.pop(0)
            core.wake()
