"""CXL link timing model.

The paper's device is "CXL over PCIe 5.0 x4 (16 GB/s, 40 ns protocol
latency)" (Table II).  Every transaction pays the protocol latency; the
link itself is a serialising resource so sustained traffic beyond 16 GB/s
queues.  The model keeps a single ``free_at`` horizon per direction, which
is accurate for the FIFO flit scheduling of real links and cheap enough to
call per cacheline.
"""

from __future__ import annotations

from repro.config import CXLConfig
from repro.sim.stats import SimStats


class CXLLink:
    """One CXL port: paired upstream/downstream serialising channels."""

    #: Flit overhead bytes accompanying each message (header + CRC share).
    FLIT_OVERHEAD = 4

    def __init__(self, config: CXLConfig, stats: SimStats) -> None:
        self._config = config
        self._stats = stats
        self._down_free_at = 0.0  # host -> device

    @property
    def protocol_ns(self) -> float:
        return self._config.protocol_ns

    def send_downstream(self, now: float, payload_bytes: int) -> float:
        """Transmit host->device; returns arrival time at the device.

        Downstream sends always happen at the current simulation time, so
        a FIFO ``free_at`` horizon correctly models back-to-back bursts
        from one window of requests.
        """
        self._down_free_at, arrival = self._transfer(
            now, payload_bytes, self._down_free_at
        )
        return arrival

    def send_upstream(self, ready_ns: float, payload_bytes: int) -> float:
        """Transmit device->host; returns arrival time at the host.

        Upstream responses are *scheduled at their data-ready times*, which
        the caller presents out of order (a flash miss's response is ready
        microseconds after a hit's that was requested later).  The link
        serves responses in ready order, so each message pays its own
        serialisation delay; no cross-message horizon is kept (demand at
        these request rates is far below 16 GB/s -- utilisation is still
        metered for the bandwidth figures).
        """
        nbytes = payload_bytes + self.FLIT_OVERHEAD
        self._stats.add_cxl_bytes(nbytes)
        return ready_ns + self._config.transfer_ns(nbytes) + self._config.protocol_ns

    def round_trip_ns(self, now: float, request_bytes: int, response_bytes: int) -> float:
        """Convenience: latency of a request/response pair starting at
        ``now`` (both directions' queuing included)."""
        arrive_dev = self.send_downstream(now, request_bytes)
        arrive_host = self.send_upstream(arrive_dev, response_bytes)
        return arrive_host - now

    def _transfer(self, now: float, payload_bytes: int, free_at: float):
        nbytes = payload_bytes + self.FLIT_OVERHEAD
        start = max(now, free_at)
        serialisation = self._config.transfer_ns(nbytes)
        new_free_at = start + serialisation
        arrival = new_free_at + self._config.protocol_ns
        self._stats.add_cxl_bytes(nbytes)
        return new_free_at, arrival
