"""CXL.mem protocol messages.

Models the slice of the CXL 3.0 protocol the paper uses (§II-A, §III-A and
Fig. 8): master-to-slave read/write requests (``MemRd``/``MemWr``) with
16-bit transaction tags, slave-to-master data responses (``MemData``) and
No-Data Responses (NDR).  SkyByte extends the NDR opcode space with
``SkyByte-Delay`` (encoding ``111b``), the long-access-delay hint that
drives the coordinated context switch.

Only message *metadata* is modelled -- the simulator never moves payload
bytes -- but the opcode encodings match Fig. 8 so that tests can check the
wire-level contract.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class M2SOpcode(enum.Enum):
    """Master-to-slave (host to device) request opcodes."""

    MEM_RD = "MemRd"
    MEM_WR = "MemWr"


class NDROpcode(enum.IntEnum):
    """No Data Response opcodes (Fig. 8).

    ``CMP`` completes writebacks/reads/invalidates; the ``CMP_S``/``CMP_E``/
    ``BI_CONFLICT_ACK`` encodings belong to CXL.cache coherence.  SkyByte
    claims the reserved ``0b111`` encoding for its long-delay hint.
    """

    CMP = 0b000
    CMP_S = 0b001
    CMP_E = 0b010
    BI_CONFLICT_ACK = 0b100
    SKYBYTE_DELAY = 0b111


TAG_BITS = 16
TAG_SPACE = 1 << TAG_BITS

_tag_counter = itertools.count()


def next_tag() -> int:
    """Allocate the next 16-bit transaction tag (wraps at 2**16)."""
    return next(_tag_counter) % TAG_SPACE


@dataclass(slots=True)
class MemRequest:
    """A CXL.mem M2S request for one 64-byte cacheline.

    Attributes:
        opcode: MemRd or MemWr.
        address: byte address of the cacheline (64B aligned by caller).
        tag: 16-bit transaction tag used to match the response.
        core: issuing core id (host-side bookkeeping, mirrors the MSHR
            tracking described in step C1 of Fig. 7).
        thread: issuing software thread id.
        issue_ns: simulation time the request entered the link.
    """

    opcode: M2SOpcode
    address: int
    tag: int = field(default_factory=next_tag)
    core: int = -1
    thread: int = -1
    issue_ns: float = 0.0

    @property
    def is_write(self) -> bool:
        return self.opcode is M2SOpcode.MEM_WR

    @property
    def line_address(self) -> int:
        return self.address >> 6

    @property
    def page(self) -> int:
        return self.address >> 12

    @property
    def line_offset(self) -> int:
        """Cacheline index within the 4 KB page (0..63)."""
        return (self.address >> 6) & 0x3F


@dataclass
class MemResponse:
    """A CXL.mem S2M response.

    ``MemData`` responses carry data (``ndr_opcode`` is None).  NDR
    responses carry no data; an NDR with :attr:`NDROpcode.SKYBYTE_DELAY`
    tells the host the matching request will suffer a long access delay and
    the blocked thread should be context-switched (step C2 of Fig. 7).
    """

    tag: int
    has_data: bool
    ndr_opcode: Optional[NDROpcode] = None
    #: Device-side estimate of when the data will be ready (ns); carried
    #: for bookkeeping, the host only acts on the opcode.
    ready_ns: float = 0.0

    @property
    def is_delay_hint(self) -> bool:
        return self.ndr_opcode is NDROpcode.SKYBYTE_DELAY


def encode_ndr(valid: bool, opcode: NDROpcode, tag: int) -> int:
    """Pack an NDR message header per Fig. 8's field layout.

    Layout (low to high bits): 1-bit valid, 3-bit opcode, 16-bit tag.
    The remaining fields of the 40-bit flit slice are reserved/zero.
    """
    if not 0 <= tag < TAG_SPACE:
        raise ValueError("tag out of range for 16-bit field")
    return (valid & 0x1) | ((opcode & 0b111) << 1) | (tag << 4)


def decode_ndr(header: int) -> tuple:
    """Inverse of :func:`encode_ndr`; returns (valid, opcode, tag)."""
    valid = bool(header & 0x1)
    opcode = NDROpcode((header >> 1) & 0b111)
    tag = (header >> 4) & (TAG_SPACE - 1)
    return valid, opcode, tag
