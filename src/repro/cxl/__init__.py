"""CXL.mem protocol messages and link timing."""
