"""Host DRAM timing model.

DDR5 per Table II: fixed load-to-use latency with an aggregate-bandwidth
serialisation horizon.  At the cacheline sizes and request rates of these
simulations the bandwidth term is tiny, but modelling it keeps the
"saturating a DDR5 channel needs ~35 concurrent requests" arithmetic of
§II-C honest.
"""

from __future__ import annotations

from repro.config import CACHELINE_SIZE, CPUConfig


class HostDRAM:
    """Fixed-latency, bandwidth-limited host memory."""

    def __init__(self, config: CPUConfig) -> None:
        self._latency_ns = config.dram_latency_ns
        self._bytes_per_ns = config.dram_bandwidth_bytes_per_ns
        self._free_at = 0.0
        self.accesses = 0

    @property
    def latency_ns(self) -> float:
        return self._latency_ns

    def access(self, now: float, nbytes: int = CACHELINE_SIZE) -> float:
        """Returns the completion time of a ``nbytes`` access at ``now``."""
        start = max(now, self._free_at)
        self._free_at = start + nbytes / self._bytes_per_ns
        self.accesses += 1
        return start + self._latency_ns
