"""Miss Status Handling Registers.

An MSHR file tracks outstanding misses and coalesces requests to the same
cacheline (§III-A, step C1: "The MSHRs also perform memory access
coalescing, so a memory request may be associated with multiple
instructions from different cores").  SkyByte frees an entry as soon as
its instruction squashes ("we free the MSHR entry as soon as the
corresponding instruction squashes ... we enable it in SkyByte by
default") to avoid MSHR exhaustion across context switches; this file
supports that early release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MSHREntry:
    """One outstanding miss."""

    line_address: int
    issue_ns: float
    #: Waiting (core, tag) pairs coalesced onto this miss.
    waiters: List[tuple] = field(default_factory=list)


class MSHRFile:
    """Fixed-capacity MSHR file with per-line coalescing."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = entries
        self._entries: Dict[int, MSHREntry] = {}
        self.coalesced = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line_address: int) -> Optional[MSHREntry]:
        return self._entries.get(line_address)

    def allocate(
        self, line_address: int, now: float, waiter: Optional[tuple] = None
    ) -> Optional[MSHREntry]:
        """Track a new miss, coalescing onto an existing entry if present.

        Returns the entry, or None if the file is full (caller must stall
        the request until capacity frees up).
        """
        entry = self._entries.get(line_address)
        if entry is not None:
            self.coalesced += 1
            if waiter is not None:
                entry.waiters.append(waiter)
            return entry
        if self.full:
            self.rejected += 1
            return None
        entry = MSHREntry(line_address=line_address, issue_ns=now)
        if waiter is not None:
            entry.waiters.append(waiter)
        self._entries[line_address] = entry
        return entry

    def release(self, line_address: int) -> Optional[MSHREntry]:
        """Free the entry (fill completed, or early release on squash)."""
        return self._entries.pop(line_address, None)

    def release_waiter(self, line_address: int, waiter: tuple) -> bool:
        """Early-release one squashed waiter; frees the entry when the
        last waiter disappears (SkyByte's squash-time MSHR release)."""
        entry = self._entries.get(line_address)
        if entry is None:
            return False
        try:
            entry.waiters.remove(waiter)
        except ValueError:
            return False
        if not entry.waiters:
            self._entries.pop(line_address, None)
        return True
