"""Host CPU models: interval cores, cache hierarchy, MSHRs, host DRAM."""
