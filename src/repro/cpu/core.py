"""Interval-model CPU cores.

Each core executes ROB-bounded *windows* of its current thread's trace:
the window's non-memory instructions run at peak IPC while its memory
operations issue concurrently (memory-level parallelism bounded by the
per-core MSHRs), so the exposed stall of a window is
``max(0, slowest_access - compute_time)``.  This is the classic interval
approximation of an out-of-order core: it preserves the stall accounting
that Fig. 4's memory/compute boundedness and all the paper's end-to-end
results are built on, at a tiny fraction of cycle-accurate cost.

The coordinated context switch (§III-A) is implemented at retire
semantics: when an access returns a ``SkyByte-Delay`` hint, the exception
fires only once every older operation in the window has completed (in-
order retirement), the triggering op is saved for replay, younger ops are
squashed back into the trace, the OS scheduler picks the next thread, and
the core pays the measured 2 us switch overhead.  Squashed accesses are
excluded from AMAT, as in the paper.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SimConfig
from repro.host.scheduler import Scheduler
from repro.host.threads import ThreadContext, Window
from repro.sim import fastpath
from repro.sim.engine import Engine
from repro.ssd.interface import AccessResult


class Core:
    """One CPU core running threads handed out by the OS scheduler."""

    def __init__(
        self,
        core_id: int,
        config: SimConfig,
        engine: Engine,
        scheduler: Scheduler,
        system,
    ) -> None:
        self.core_id = core_id
        self._config = config
        self._engine = engine
        self._scheduler = scheduler
        self._system = system
        cpu = config.cpu
        self._cycle_ns = cpu.cycle_ns
        self._ipc = cpu.peak_ipc
        self._rob_instructions = cpu.rob_entries
        # Per-window MLP: bounded by the L1 MSHRs and by the workload's
        # dependence-limited parallelism (pointer chasing exposes little).
        self._mlp = max(1, min(cpu.l1_mshrs, getattr(system, "workload_mlp", 8)))
        self.thread: Optional[ThreadContext] = None
        #: Vectorized device-latency inner loop: DRAM-only runs have no
        #: delay hints, so a whole window batches into one float loop.
        self._dram_fast = config.dram_only and fastpath.vectorized()
        self._sched_runtime = 0.0  # time on core since last schedule
        self._parked = False
        #: Pending TLB-shootdown cost to absorb at the next window.
        self._pending_shootdown_ns = 0.0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Grab an initial thread and begin executing."""
        self.thread = self._scheduler.pick_next()
        if self.thread is None:
            self._park()
        else:
            self._engine.schedule(0.0, self._run_slice)

    def wake(self) -> None:
        """Called by the scheduler when work appears for a parked core."""
        if not self._parked:
            return
        self._parked = False
        self.thread = self._scheduler.pick_next()
        if self.thread is None:
            self._park()
        else:
            self._engine.schedule(0.0, self._run_slice)

    def add_tlb_shootdown(self, cost_ns: float) -> None:
        """Migration completions interrupt every core briefly (§V: "a TLB
        shootdown for all cores when a page finishes migration")."""
        self._pending_shootdown_ns += cost_ns

    def _park(self) -> None:
        self._parked = True
        self.thread = None
        self._scheduler.park_core(self)

    # -- execution -------------------------------------------------------------

    def _run_slice(self) -> None:
        thread = self.thread
        if thread is None:
            self._park()
            return
        now = self._engine.now
        stats = self._system.stats

        if self._pending_shootdown_ns > 0.0:
            cost = self._pending_shootdown_ns
            self._pending_shootdown_ns = 0.0
            stats.add_memory_stall(cost)
            self._engine.schedule(cost, self._run_slice)
            return

        window = thread.next_window(self._rob_instructions, self._mlp)
        if window is None:
            self._finish_thread(thread)
            return

        just_resumed = thread.just_resumed
        thread.just_resumed = False
        compute_ns = window.instructions * self._cycle_ns / self._ipc

        if self._dram_fast:
            completes = self._system.dram_window_access(
                window.ops, now, thread.tid
            )
            self._retire_values(thread, window, completes, compute_ns, now)
            return

        results: List[AccessResult] = []
        switch_at: Optional[int] = None
        executed_instr = 0
        threshold = self._config.os.cs_threshold_ns
        for i, (gap, is_write, addr) in enumerate(window.ops):
            executed_instr += gap
            result = self._system.memory_access(
                self.core_id, thread.tid, is_write, addr, now
            )
            results.append(result)
            if result.delay_hint and self._scheduler.runnable() > 0:
                if just_resumed and result.est_delay_ns < 4 * threshold:
                    # The replayed access is almost ready; switching again
                    # would ping-pong (the CFS quirk §III-A notes).
                    continue
                switch_at = i
                break

        if switch_at is None:
            self._retire_window(thread, window, results, compute_ns, now)
        else:
            self._context_switch(thread, window, results, switch_at, executed_instr, now)

    def _retire_window(
        self,
        thread: ThreadContext,
        window: Window,
        results: List[AccessResult],
        compute_ns: float,
        now: float,
    ) -> None:
        stats = self._system.stats
        last_completion = max((r.complete_ns for r in results), default=now)
        wall = max(compute_ns, last_completion - now)
        stats.add_instructions(window.instructions)
        stats.add_compute(compute_ns)
        stats.add_memory_stall(max(0.0, wall - compute_ns))
        for r in results:
            stats.record_offchip(max(1.0, r.complete_ns - now))
        self._finish_retire(thread, window.instructions, wall, now)

    def _retire_values(
        self,
        thread: ThreadContext,
        window: Window,
        completes: List[float],
        compute_ns: float,
        now: float,
    ) -> None:
        """:meth:`_retire_window` over bare completion times (the batched
        DRAM-only inner loop); field-for-field the same updates."""
        stats = self._system.stats
        last_completion = now
        for c in completes:
            if c > last_completion:
                last_completion = c
        wall = max(compute_ns, last_completion - now)
        stats.add_instructions(window.instructions)
        stats.add_compute(compute_ns)
        stats.add_memory_stall(max(0.0, wall - compute_ns))
        if stats.enabled:
            record = stats.offchip_latency.record
            for c in completes:
                lat = c - now
                record(lat if lat > 1.0 else 1.0)
        self._finish_retire(thread, window.instructions, wall, now)

    def _finish_retire(
        self, thread: ThreadContext, instructions: int, wall: float, now: float
    ) -> None:
        thread.runtime_ns += wall
        thread.instructions_done += instructions
        self._sched_runtime += wall
        self._system.note_progress(instructions)
        end = now + wall

        # Quantum preemption keeps oversubscribed runs fair even when the
        # device never asks for a switch.
        if (
            self._sched_runtime >= self._config.os.quantum_ns
            and self._scheduler.runnable() > 0
        ):
            self._yield_thread(thread, end, self._config.os.context_switch_ns)
            return
        self._engine.schedule_at(end, self._run_slice)

    def _context_switch(
        self,
        thread: ThreadContext,
        window: Window,
        results: List[AccessResult],
        switch_at: int,
        executed_instr: int,
        now: float,
    ) -> None:
        stats = self._system.stats
        triggering = results[switch_at]
        compute_ns = executed_instr * self._cycle_ns / self._ipc
        # In-order retirement: the exception fires after every older op in
        # the window has completed and the NDR hint has arrived.
        older_done = max(
            (r.complete_ns for r in results[:switch_at]), default=now
        )
        exception_ns = max(now + compute_ns, older_done, triggering.hint_arrival_ns)

        stats.add_instructions(executed_instr)
        stats.add_compute(compute_ns)
        stats.add_memory_stall(max(0.0, exception_ns - now - compute_ns))
        for r in results[:switch_at]:
            stats.record_offchip(max(1.0, r.complete_ns - now))
        # The triggering access is squashed: reverse its AMAT accounting.
        stats.unrecord_access(triggering.request_class, triggering.breakdown)

        thread.squash_after(switch_at, window)
        thread.instructions_done += executed_instr
        thread.runtime_ns += exception_ns - now
        thread.just_resumed = True
        self._system.note_progress(executed_instr)
        switch_cost = self._system.switch_cost_ns
        self._yield_thread(thread, exception_ns, switch_cost)

    def _yield_thread(self, thread: ThreadContext, at_ns: float, switch_cost: float) -> None:
        stats = self._system.stats
        stats.add_context_switch(switch_cost)
        thread.runtime_ns += switch_cost
        self._scheduler.enqueue(thread)
        self.thread = self._scheduler.pick_next(prefer_not=thread.tid)
        self._sched_runtime = 0.0
        if self.thread is None:
            self._park()
            return
        self._engine.schedule_at(at_ns + switch_cost, self._run_slice)

    def _finish_thread(self, thread: ThreadContext) -> None:
        self._system.on_thread_done(thread)
        self.thread = self._scheduler.pick_next()
        self._sched_runtime = 0.0
        if self.thread is None:
            self._park()
        else:
            self._engine.schedule(0.0, self._run_slice)
