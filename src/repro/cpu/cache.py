"""Set-associative CPU cache level.

A classic writeback/write-allocate cache keyed by 64 B line address,
configurable to the L1/L2/L3 shapes of Table II.  Used by the detailed
cache-hierarchy mode and its tests; the fast interval model folds on-chip
hits into its IPC term instead (the traces it replays are LLC-miss
streams).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.config import CACHELINE_SIZE


@dataclass
class LineState:
    """Metadata for one resident cacheline."""

    line_address: int
    dirty: bool = False


class CpuCache:
    """One cache level (LRU, writeback, write-allocate)."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        latency_ns: float,
    ) -> None:
        lines = max(1, size_bytes // CACHELINE_SIZE)
        ways = max(1, min(ways, lines))
        self.name = name
        self.ways = ways
        self.num_sets = max(1, lines // ways)
        self.latency_ns = latency_ns
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_of(self, line_address: int) -> OrderedDict:
        return self._sets[line_address % self.num_sets]

    def __contains__(self, line_address: int) -> bool:
        return line_address in self._set_of(line_address)

    def lookup(self, line_address: int, is_write: bool) -> bool:
        """Access the cache; returns True on hit (LRU updated)."""
        cache_set = self._set_of(line_address)
        line = cache_set.get(line_address)
        if line is None:
            self.misses += 1
            return False
        cache_set.move_to_end(line_address)
        if is_write:
            line.dirty = True
        self.hits += 1
        return True

    def fill(self, line_address: int, dirty: bool = False) -> Optional[LineState]:
        """Install a line; returns the evicted line if one was displaced."""
        cache_set = self._set_of(line_address)
        existing = cache_set.get(line_address)
        if existing is not None:
            cache_set.move_to_end(line_address)
            existing.dirty = existing.dirty or dirty
            return None
        victim = None
        if len(cache_set) >= self.ways:
            _addr, victim = cache_set.popitem(last=False)
            self.evictions += 1
        cache_set[line_address] = LineState(line_address=line_address, dirty=dirty)
        return victim

    def invalidate(self, line_address: int) -> Optional[LineState]:
        return self._set_of(line_address).pop(line_address, None)

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
