"""Detailed-mode trace filtering: raw access streams -> LLC-miss streams.

The paper's methodology captures *all* memory references with PIN and
replays them through simulated L1/L2/L3 caches; the off-chip traffic the
CXL-SSD sees is the LLC-miss residue.  The fast interval model in this
package replays miss-level traces directly (Table I's MPKI is defined at
that level), but when you have a raw reference stream -- from your own
instrumentation, or from the detailed examples -- this module performs
the same reduction: it walks the stream through
:class:`repro.cpu.hierarchy.CacheHierarchy` and emits the records that
miss all three levels, with their gap fields re-aggregated so downstream
MPKI accounting stays consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.config import CACHELINE_SIZE, CPUConfig
from repro.cpu.hierarchy import CacheHierarchy
from repro.workloads.trace import TraceRecord


@dataclass
class FilterResult:
    """Outcome of filtering one reference stream."""

    miss_trace: List[TraceRecord]
    references: int
    hits: dict  # level name -> count
    mshr_stalls: int

    @property
    def miss_rate(self) -> float:
        if self.references == 0:
            return 0.0
        return len(self.miss_trace) / self.references

    @property
    def llc_mpki(self) -> float:
        """LLC misses per kilo-instruction of the filtered stream."""
        instructions = sum(r[0] for r in self.miss_trace) + self.references
        if instructions == 0:
            return 0.0
        return 1000.0 * len(self.miss_trace) / instructions


def filter_trace(
    trace: Sequence[TraceRecord],
    config: CPUConfig = None,
    core: int = 0,
    hierarchy: CacheHierarchy = None,
) -> FilterResult:
    """Reduce a raw per-reference trace to its off-chip miss stream.

    Each record's gap (instructions since the previous reference) is
    preserved by folding the gaps of hit references into the next miss,
    exactly how an interval model accounts for on-chip work.

    Args:
        trace: (gap, is_write, address) records at reference granularity.
        config: CPU configuration (cache shapes/MSHRs); default Table II.
        core: which core's private L1/L2 to use.
        hierarchy: optionally share one hierarchy across calls (e.g. to
            filter several threads against a shared L3).
    """
    if config is None:
        config = CPUConfig()
    if hierarchy is None:
        hierarchy = CacheHierarchy(config)
    misses: List[TraceRecord] = []
    hits = {"L1": 0, "L2": 0, "L3": 0}
    pending_gap = 0
    stalls = 0
    for gap, is_write, address in trace:
        pending_gap += gap
        line = address // CACHELINE_SIZE
        result = hierarchy.access(core, line, is_write)
        if result.hit_level is not None:
            hits[result.hit_level] += 1
            continue
        if result.mshr_stall:
            stalls += 1
        # Off-chip: emit, fill, carry the accumulated gap.
        misses.append((pending_gap, is_write, address))
        pending_gap = 0
        hierarchy.fill_from_memory(core, line, dirty=is_write)
    return FilterResult(
        miss_trace=misses,
        references=len(trace),
        hits=hits,
        mshr_stalls=stalls,
    )


def filter_threads(
    traces: Sequence[Sequence[TraceRecord]],
    config: CPUConfig = None,
) -> Tuple[List[List[TraceRecord]], List[FilterResult]]:
    """Filter one stream per core against a shared hierarchy (shared L3
    captures constructive/destructive interference between threads)."""
    if config is None:
        config = CPUConfig()
    hierarchy = CacheHierarchy(config)
    outputs: List[List[TraceRecord]] = []
    results: List[FilterResult] = []
    for i, trace in enumerate(traces):
        result = filter_trace(
            trace, config=config, core=i % config.cores, hierarchy=hierarchy
        )
        outputs.append(result.miss_trace)
        results.append(result)
    return outputs, results
