"""Three-level CPU cache hierarchy (Table II shapes).

Per-core L1/L2 with a shared L3, each fronted by an MSHR file.  The
hierarchy turns a raw per-line access stream into the off-chip miss
stream the memory system sees, reporting the hit level and accumulated
lookup latency -- this is the detailed companion to the fast interval
model, and the component that demonstrates why the paper frees MSHRs on
squash (long CXL latencies otherwise exhaust them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import CPUConfig
from repro.cpu.cache import CpuCache
from repro.cpu.mshr import MSHRFile

L1_LATENCY_NS = 1.0
L2_LATENCY_NS = 3.5
L3_LATENCY_NS = 10.5


@dataclass
class HierarchyResult:
    """Outcome of one hierarchy access."""

    hit_level: Optional[str]  # "L1" / "L2" / "L3" / None (off-chip)
    latency_ns: float
    #: True when the access must go off-chip but no L3 MSHR was available
    #: (back-pressure: the core must retry).
    mshr_stall: bool = False


class CacheHierarchy:
    """L1/L2 per core + shared L3, with MSHR files at L1 and L3."""

    def __init__(self, config: CPUConfig) -> None:
        self.cores = config.cores
        self.l1 = [
            CpuCache("L1", 32 * 1024, 8, L1_LATENCY_NS) for _ in range(config.cores)
        ]
        self.l2 = [
            CpuCache("L2", 512 * 1024, 32, L2_LATENCY_NS) for _ in range(config.cores)
        ]
        self.l3 = CpuCache("L3", 16 * 1024 * 1024, 16, L3_LATENCY_NS)
        self.l1_mshrs = [MSHRFile(config.l1_mshrs) for _ in range(config.cores)]
        self.l3_mshr = MSHRFile(config.l3_mshrs)

    def access(
        self, core: int, line_address: int, is_write: bool, now: float = 0.0
    ) -> HierarchyResult:
        """Walk the hierarchy; fills on miss are performed immediately
        (timing of the off-chip fetch is the caller's responsibility)."""
        if not 0 <= core < self.cores:
            raise ValueError(f"core {core} out of range")
        latency = L1_LATENCY_NS
        if self.l1[core].lookup(line_address, is_write):
            return HierarchyResult("L1", latency)
        latency += L2_LATENCY_NS
        if self.l2[core].lookup(line_address, is_write):
            self._fill_l1(core, line_address)
            return HierarchyResult("L2", latency)
        latency += L3_LATENCY_NS
        if self.l3.lookup(line_address, is_write):
            self._fill_l2(core, line_address)
            self._fill_l1(core, line_address)
            return HierarchyResult("L3", latency)
        # Off-chip: needs an L1 MSHR (per-core MLP) and an L3 MSHR.
        if self.l1_mshrs[core].allocate(line_address, now) is None:
            return HierarchyResult(None, latency, mshr_stall=True)
        if self.l3_mshr.allocate(line_address, now) is None:
            self.l1_mshrs[core].release(line_address)
            return HierarchyResult(None, latency, mshr_stall=True)
        return HierarchyResult(None, latency)

    def fill_from_memory(self, core: int, line_address: int, dirty: bool = False) -> None:
        """Install a returned off-chip line at every level and free MSHRs."""
        self.l3.fill(line_address, dirty=False)
        self._fill_l2(core, line_address)
        self._fill_l1(core, line_address, dirty=dirty)
        self.l1_mshrs[core].release(line_address)
        self.l3_mshr.release(line_address)

    def squash(self, core: int, line_address: int) -> None:
        """SkyByte's early MSHR release for a squashed instruction."""
        self.l1_mshrs[core].release(line_address)
        self.l3_mshr.release(line_address)

    def outstanding_misses(self, core: int) -> int:
        return len(self.l1_mshrs[core])

    def _fill_l1(self, core: int, line_address: int, dirty: bool = False) -> None:
        victim = self.l1[core].fill(line_address, dirty=dirty)
        if victim is not None and victim.dirty:
            self.l2[core].fill(victim.line_address, dirty=True)

    def _fill_l2(self, core: int, line_address: int) -> None:
        victim = self.l2[core].fill(line_address)
        if victim is not None and victim.dirty:
            self.l3.fill(victim.line_address, dirty=True)
