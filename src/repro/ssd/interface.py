"""Common interface between the host-facing simulator and SSD controllers.

Every device personality (Base-CSSD, SkyByte, the AstriFlash host-cache
organisation) implements :class:`SSDController`: the host submits one
cacheline request and receives an :class:`AccessResult` describing when the
data is ready, how the latency decomposes for AMAT accounting (Fig. 17),
which request class it belongs to (Fig. 16), and whether the device would
answer with a ``SkyByte-Delay`` NDR (the context-switch hint of Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Protocol

from repro.cxl.protocol import MemRequest


@dataclass(slots=True)
class AccessResult:
    """Outcome of one cacheline access at the SSD.

    Attributes:
        complete_ns: absolute simulation time at which the host has the
            data (reads) or the device has accepted the write.
        request_class: one of the Fig. 16 classes (S-R-H, S-R-M, S-W; the
            host-DRAM class is produced host-side for promoted pages).
        delay_hint: True if the device responds with a ``SkyByte-Delay``
            NDR instead of data -- i.e. Algorithm 1 estimated a latency
            above the context-switch threshold (or a GC blocks the
            channel).  The host may context switch and replay the access.
        est_delay_ns: the device-side latency estimate that produced the
            hint (useful for tests and for the threshold sweep of Fig. 9).
        breakdown: AMAT component -> exposed ns (Fig. 17 stack).
    """

    complete_ns: float
    request_class: str
    delay_hint: bool = False
    est_delay_ns: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: Absolute time the SkyByte-Delay NDR reaches the host CPU (set by
    #: the system's link wrapper when ``delay_hint`` is True); the Long
    #: Delay Exception cannot retire before this.
    hint_arrival_ns: float = 0.0


class SSDController(Protocol):
    """Protocol implemented by every device personality."""

    def access(self, request: MemRequest, now: float) -> AccessResult:
        """Serve one 64-byte request arriving at the device at ``now``."""
        ...

    def drain(self, now: float) -> float:
        """Flush device-buffered dirty state; returns completion time.

        Used at end of simulation so flash-traffic accounting includes
        buffered-but-unflushed writes on an equal footing across designs.
        """
        ...
