"""NAND flash array timing model.

The flash array is organised as *channels* of chips/dies/planes
(Table II: 16 channels x 8 chips x 8 dies for the paper's device).  Two
resources matter for timing:

* **dies** execute array operations (tR / tProg / tBERS) and overlap with
  each other -- a channel with 64 dies can have 64 programs in flight;
* the **channel bus** serialises page data transfers (a read's page must
  cross the bus after tR; a program's page before tProg).

Commands are dispatched to the earliest-free die of the target channel.
:class:`FlashChannel` also keeps the queued-command counters Algorithm 1
reads, and provides two latency estimators: the paper's literal FIFO
queue-sum (``estimate_read_fifo_ns``, Algorithm 1 lines 5-6) and a
die-aware variant (``estimate_read_ns``) that divides queued work across
the channel's dies -- the natural reading of Algorithm 1 on a die-parallel
channel, and the one the trigger policy uses.

Physical page addresses (PPAs) are dense integers laid out channel-major::

    ppa = channel * pages_per_channel + block_in_channel * pages_per_block
          + page_in_block

so ``channel_of`` and ``block_of`` are pure arithmetic.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import DeviceModelConfig, FlashGeometry, FlashTiming
from repro.sim.engine import Engine
from repro.sim.stats import SimStats
from repro.ssd.geometry import GeometryModel

#: Channel bus time to move one 4 KB page (ONFI-class bus, ~5 GB/s).
PAGE_TRANSFER_NS = 800.0

#: Program suspend latency: modern ULL NAND (Z-NAND, XL-Flash) suspends an
#: in-flight program so a read can proceed, costing roughly this much
#: extra before the read's tR starts.  Erases are not suspendable here,
#: so GC keeps its multi-millisecond read-blocking behaviour (§II-C).
PROGRAM_SUSPEND_NS = 2_000.0


class FlashChannel:
    """One flash channel: parallel dies behind a serialising bus.

    Reads have priority: an in-flight *program* on the target die is
    suspended (costing :data:`PROGRAM_SUSPEND_NS`), while reads and
    erases occupy the die exclusively.  Two per-die horizons implement
    this: ``_die_free`` is the full horizon every program/erase waits
    for; ``_die_read_free`` excludes suspendable program time.

    The channel bus is modelled as a fixed per-page transfer latency
    (no cross-command blocking): commands are submitted out of order in
    simulated time (background compaction paces work into the future),
    and a blocking horizon would make earlier-completing reads queue
    behind later reservations.  Bus utilisation stays in single-digit
    percents at this simulator's request rates, so contention is
    negligible; the *die* horizons carry all the real queueing.
    """

    def __init__(
        self,
        index: int,
        dies: int,
        timing: FlashTiming,
        engine: Engine,
        transfer_ns: float = PAGE_TRANSFER_NS,
    ) -> None:
        self.index = index
        self.dies = max(1, dies)
        self._timing = timing
        self._engine = engine
        self._transfer_ns = transfer_ns
        self._die_free = [0.0] * self.dies
        self._die_read_free = [0.0] * self.dies
        self.queued_reads = 0
        self.queued_programs = 0
        self.queued_erases = 0

    @property
    def free_at(self) -> float:
        """Earliest time a new command could start on some die."""
        return min(self._die_free)

    @property
    def drained_at(self) -> float:
        """Time at which every queued command will have completed."""
        return max(self._die_free)

    def busy_ns(self, now: float) -> float:
        """Remaining time until a new command could start a die op."""
        return max(0.0, self.free_at - now)

    # -- latency estimators ---------------------------------------------------

    def estimate_read_fifo_ns(self) -> float:
        """Algorithm 1 lines 5-6 verbatim (FIFO queue-sum):
        ``read*(nread+1) + program*nwrite + erase*nerase``."""
        t = self._timing
        return (
            t.read_ns * (self.queued_reads + 1)
            + t.program_ns * self.queued_programs
            + t.erase_ns * self.queued_erases
        )

    def estimate_read_ns(self, now: Optional[float] = None) -> float:
        """Die-aware estimate for a *new* read submitted now: queued reads
        and erases spread over the dies ahead of it, one suspend penalty
        if programs are in flight, then the read's own tR and transfer.
        This is Algorithm 1's queue-occupancy estimate adapted to a
        die-parallel, read-priority channel."""
        t = self._timing
        queued = t.read_ns * self.queued_reads + t.erase_ns * self.queued_erases
        suspend = PROGRAM_SUSPEND_NS if self.queued_programs else 0.0
        return queued / self.dies + suspend + t.read_ns + self._transfer_ns

    # -- command submission ------------------------------------------------------

    def _plan_read(self, now: float) -> tuple:
        """Plan (without mutating) the read :meth:`submit_read` would
        issue at ``now``: ``(die, suspended, array_done)``.

        :meth:`submit_read` and :meth:`preview_read_ns` both consume this
        plan, so the previewed latency is consistent with the charged one
        by construction.
        """
        die = self._earliest_die(self._die_read_free)
        start = max(now, self._die_read_free[die])
        suspended = self._die_free[die] > start
        if suspended:
            start += PROGRAM_SUSPEND_NS
        return die, suspended, start + self._timing.read_ns

    def preview_read_ns(self, now: float) -> float:
        """Exact latency :meth:`submit_read` would charge for a read
        submitted at ``now``, without mutating any channel state.

        Unlike the heuristic :meth:`estimate_read_ns` (whose formula is
        pinned by Algorithm 1 and the golden digests), this is the true
        queueing answer -- schedulers that plan against it can never see
        a stale horizon.
        """
        _, _, array_done = self._plan_read(now)
        return array_done + self._transfer_ns - now

    def submit_read(self, now: float, on_done: Optional[Callable[[], None]] = None) -> float:
        """Page read: die op (tR) then page transfer over the bus.

        The read targets the die that is earliest-available *for reads*;
        a program in flight there is suspended.
        """
        die, suspended, array_done = self._plan_read(now)
        if suspended:
            # A suspendable program occupies the die: pay the suspend
            # latency, and push the program's completion out by tR.
            self._die_free[die] += self._timing.read_ns + PROGRAM_SUSPEND_NS
        self._die_read_free[die] = array_done
        self._die_free[die] = max(self._die_free[die], array_done)
        completion = array_done + self._transfer_ns
        self._track(completion, "read", on_done)
        return completion

    def submit_program(self, now: float, on_done: Optional[Callable[[], None]] = None) -> float:
        """Page program: page transfer in over the bus, then die op."""
        bus_done = now + self._transfer_ns
        die = self._earliest_die(self._die_free)
        start = max(bus_done, self._die_free[die])
        completion = start + self._timing.program_ns
        self._die_free[die] = completion
        # Reads need not wait for this program (suspendable).
        self._track(completion, "program", on_done)
        return completion

    def submit_erase(self, now: float, on_done: Optional[Callable[[], None]] = None) -> float:
        """Block erase: die-only, no data transfer, not suspendable."""
        die = self._earliest_die(self._die_free)
        start = max(now, self._die_free[die])
        completion = start + self._timing.erase_ns
        self._die_free[die] = completion
        self._die_read_free[die] = max(self._die_read_free[die], completion)
        self._track(completion, "erase", on_done)
        return completion

    def _earliest_die(self, horizon: List[float]) -> int:
        best, best_t = 0, horizon[0]
        for i in range(1, self.dies):
            if horizon[i] < best_t:
                best, best_t = i, horizon[i]
        return best

    def _track(self, completion: float, kind: str, on_done) -> None:
        if kind == "read":
            self.queued_reads += 1
        elif kind == "program":
            self.queued_programs += 1
        else:
            self.queued_erases += 1

        def _complete() -> None:
            if kind == "read":
                self.queued_reads -= 1
            elif kind == "program":
                self.queued_programs -= 1
            else:
                self.queued_erases -= 1
            if on_done is not None:
                on_done()

        self._engine.schedule_at(completion, _complete)


class FlashArray:
    """The full multi-channel flash array."""

    def __init__(
        self,
        geometry: FlashGeometry,
        timing: FlashTiming,
        engine: Engine,
        stats: SimStats,
        transfer_ns: float = PAGE_TRANSFER_NS,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self._stats = stats
        dies = geometry.chips_per_channel * geometry.dies_per_chip
        self.channels: List[FlashChannel] = [
            FlashChannel(i, dies, timing, engine, transfer_ns)
            for i in range(geometry.channels)
        ]
        #: Optional tenant-QoS admission arbiter (see :mod:`repro.qos`).
        #: ``None`` keeps the unarbitrated fast path untouched.
        self.arbiter = None
        #: Optional sim-time timeline tracer (see :mod:`repro.obs.timeline`).
        self.tracer = None

    # -- address arithmetic ----------------------------------------------------

    def channel_of(self, ppa: int) -> int:
        return ppa // self.geometry.pages_per_channel

    def block_of(self, ppa: int) -> int:
        """Global block index of a physical page."""
        return ppa // self.geometry.pages_per_block

    def page_in_block(self, ppa: int) -> int:
        return ppa % self.geometry.pages_per_block

    def first_ppa_of_block(self, block: int) -> int:
        return block * self.geometry.pages_per_block

    def channel_of_block(self, block: int) -> int:
        return block // self.geometry.blocks_per_channel

    # -- timed operations --------------------------------------------------------

    def read_page(
        self,
        ppa: int,
        now: float,
        on_done: Optional[Callable[[], None]] = None,
        tenant: Optional[int] = None,
    ) -> float:
        """Submit a page read; returns its completion time.

        With an installed :attr:`arbiter` and a known ``tenant``, the
        submit instant is gated by the tenant's admission pacing; the
        recorded flash latency still runs from the request's ``now`` so
        queueing delay imposed by QoS shows up in the tenant's tail.
        """
        self._check_ppa(ppa)
        if self._stats.enabled:
            self._stats.flash_page_reads += 1
        index = self.channel_of(ppa)
        if self.arbiter is not None and tenant is not None:
            issue = self.arbiter.admit(index, tenant, now)
            done = self._submit_read(index, ppa, issue, on_done)
            self.arbiter.note_completion(index, tenant, done)
        else:
            issue = now
            done = self._submit_read(index, ppa, now, on_done)
        self._stats.record_flash_read(done - now)
        if self.tracer is not None:
            self._trace_op("flash.read", index, now, done, tenant=tenant,
                           pacing_ns=issue - now)
        return done

    def program_page(
        self, ppa: int, now: float, on_done: Optional[Callable[[], None]] = None
    ) -> float:
        """Submit a page program; returns its completion time."""
        self._check_ppa(ppa)
        if self._stats.enabled:
            self._stats.flash_page_writes += 1
        index = self.channel_of(ppa)
        done = self._submit_program(index, ppa, now, on_done)
        if self.tracer is not None:
            self._trace_op("flash.program", index, now, done)
        return done

    def erase_block(
        self, block: int, now: float, on_done: Optional[Callable[[], None]] = None
    ) -> float:
        """Submit a block erase; returns its completion time."""
        if not 0 <= block < self.geometry.total_blocks:
            raise ValueError(f"block {block} out of range")
        if self._stats.enabled:
            self._stats.flash_block_erases += 1
        index = self.channel_of_block(block)
        done = self._submit_erase(index, block, now, on_done)
        if self.tracer is not None:
            self._trace_op("flash.erase", index, now, done)
        return done

    # -- routing hooks (overridden by :class:`DeepFlashArray`) -------------------

    def _submit_read(self, index: int, ppa: int, now: float, on_done) -> float:
        return self.channels[index].submit_read(now, on_done)

    def _submit_program(self, index: int, ppa: int, now: float, on_done) -> float:
        return self.channels[index].submit_program(now, on_done)

    def _submit_erase(self, index: int, block: int, now: float, on_done) -> float:
        return self.channels[index].submit_erase(now, on_done)

    def estimate_read_ns(self, ppa: int) -> float:
        """Algorithm 1's latency estimate for a new read of ``ppa``."""
        return self.channels[self.channel_of(ppa)].estimate_read_ns()

    def least_loaded_channel(self, now: float) -> int:
        """Channel where a new command would start earliest (used to
        stripe compaction writes, §III-B)."""
        best = min(self.channels, key=lambda c: c.free_at)
        return best.index

    def _check_ppa(self, ppa: int) -> None:
        if not 0 <= ppa < self.geometry.total_pages:
            raise ValueError(f"ppa {ppa} out of range")

    def _trace_op(
        self,
        name: str,
        index: int,
        start_ns: float,
        end_ns: float,
        tenant: Optional[int] = None,
        pacing_ns: float = 0.0,
    ) -> None:
        """Span for one flash op, on its channel lane (and the tenant's)."""
        args: dict = {"channel": index}
        if pacing_ns > 0:
            args["pacing_ns"] = round(pacing_ns, 1)
        if tenant is not None:
            args["tenant"] = tenant
        self.tracer.complete(
            name, "flash", f"channel {index}", int(start_ns), int(end_ns),
            args=args,
        )
        if tenant is not None:
            self.tracer.complete(
                name, "tenant", f"tenant {tenant}", int(start_ns),
                int(end_ns), args=args,
            )


# ---------------------------------------------------------------------------
# Deep device model (config.device_model.kind == "deep")
# ---------------------------------------------------------------------------


class _PlaneUnit:
    """Scheduling state of one independently-executing array unit
    (a plane, or a whole die when plane parallelism is off)."""

    __slots__ = ("free", "read_free", "suspends")

    def __init__(self) -> None:
        #: Horizon every program/erase (and non-priority read) waits for.
        self.free = 0.0
        #: Horizon excluding suspendable program time (read-priority path).
        self.read_free = 0.0
        #: Reads that have suspended the in-flight program so far
        #: (bounded by ``max_read_bypass``; reset on each new program).
        self.suspends = 0


class DeepFlashChannel:
    """One flash channel of the deep model: explicit (die, plane) units.

    Where :class:`FlashChannel` dispatches each command to the earliest
    *interchangeable* die, the deep channel routes it to the unit the
    page physically lives on -- hot blocks queue on their own die while
    the rest of the channel idles, which is the contention the flat model
    cannot express.  Three policies (``docs/DEVICE_MODEL.md``):

    * ``read_priority`` -- a read may suspend the unit's in-flight
      program (cost :data:`PROGRAM_SUSPEND_NS`); off, reads queue FIFO
      behind programs.
    * ``max_read_bypass`` -- consecutive suspensions one program absorbs
      before becoming non-preemptible (0 = unbounded, the flat model's
      semantics); bounds read-priority starvation of programs.
    * ``plane_parallelism`` -- planes of one die execute independently;
      off, a die is a single serial unit.

    An optional ``schedule_log`` records every array-op interval as
    ``(kind, die, plane, start, end)`` so the invariant suite can assert
    non-overlap properties without reaching into the horizon state.
    """

    def __init__(
        self,
        index: int,
        dies: int,
        planes: int,
        timing: FlashTiming,
        engine: Engine,
        transfer_ns: float = PAGE_TRANSFER_NS,
        *,
        read_priority: bool = True,
        max_read_bypass: int = 0,
        plane_parallelism: bool = True,
        schedule_log: Optional[list] = None,
    ) -> None:
        self.index = index
        self.dies = max(1, dies)
        self.plane_parallelism = plane_parallelism
        self.planes = max(1, planes) if plane_parallelism else 1
        self.units = self.dies * self.planes
        self._timing = timing
        self._engine = engine
        self._transfer_ns = transfer_ns
        self._read_priority = read_priority
        self._max_bypass = max(0, max_read_bypass)
        self._units = [_PlaneUnit() for _ in range(self.units)]
        self.schedule_log = schedule_log
        self.queued_reads = 0
        self.queued_programs = 0
        self.queued_erases = 0

    def _unit(self, die: int, plane: int) -> _PlaneUnit:
        if self.plane_parallelism:
            return self._units[die * self.planes + plane]
        return self._units[die]

    @property
    def free_at(self) -> float:
        """Earliest time a new command could start on some unit."""
        return min(u.free for u in self._units)

    @property
    def drained_at(self) -> float:
        """Time at which every queued command will have completed."""
        return max(u.free for u in self._units)

    def busy_ns(self, now: float) -> float:
        return max(0.0, self.free_at - now)

    @property
    def queue_depth(self) -> int:
        """Commands currently in flight on this channel."""
        return self.queued_reads + self.queued_programs + self.queued_erases

    # -- latency estimators ---------------------------------------------------

    def estimate_read_fifo_ns(self) -> float:
        """Algorithm 1 lines 5-6 verbatim (FIFO queue-sum)."""
        t = self._timing
        return (
            t.read_ns * (self.queued_reads + 1)
            + t.program_ns * self.queued_programs
            + t.erase_ns * self.queued_erases
        )

    def estimate_read_ns(self, now: Optional[float] = None) -> float:
        """Unit-aware heuristic mirroring :meth:`FlashChannel.estimate_read_ns`
        with queued work spread over the channel's independent units."""
        t = self._timing
        queued = t.read_ns * self.queued_reads + t.erase_ns * self.queued_erases
        suspend = PROGRAM_SUSPEND_NS if self.queued_programs else 0.0
        return queued / self.units + suspend + t.read_ns + self._transfer_ns

    # -- command submission ------------------------------------------------------

    def _plan_read(self, u: _PlaneUnit, now: float) -> tuple:
        """``(start, suspended)`` for a read on ``u`` at ``now``, without
        mutating -- shared by :meth:`submit_read` and
        :meth:`preview_read_ns` so preview equals charge by construction.
        """
        start = max(now, u.read_free)
        if u.free <= start:
            return start, False
        if self._read_priority and (
            self._max_bypass == 0 or u.suspends < self._max_bypass
        ):
            return start + PROGRAM_SUSPEND_NS, True
        # Bypass budget exhausted (or no read priority): queue behind the
        # unit's full horizon like any other command.
        return u.free, False

    def preview_read_ns(self, die: int, plane: int, now: float) -> float:
        """Exact latency :meth:`submit_read` would charge at ``now``."""
        start, _ = self._plan_read(self._unit(die, plane), now)
        return start + self._timing.read_ns + self._transfer_ns - now

    def submit_read(
        self, die: int, plane: int, now: float,
        on_done: Optional[Callable[[], None]] = None,
    ) -> float:
        """Page read on its physical unit: tR then bus transfer out."""
        u = self._unit(die, plane)
        start, suspended = self._plan_read(u, now)
        if suspended:
            u.free += self._timing.read_ns + PROGRAM_SUSPEND_NS
            u.suspends += 1
        elif u.free <= start:
            # Unit idle at issue: any old program finished; the next one
            # gets a fresh bypass budget.
            u.suspends = 0
        array_done = start + self._timing.read_ns
        u.read_free = array_done
        u.free = max(u.free, array_done)
        if self.schedule_log is not None:
            self.schedule_log.append(("read", die, plane, start, array_done))
        completion = array_done + self._transfer_ns
        self._track(completion, "read", on_done)
        return completion

    def submit_program(
        self, die: int, plane: int, now: float,
        on_done: Optional[Callable[[], None]] = None,
    ) -> float:
        """Page program: bus transfer in, then tProg on its unit."""
        u = self._unit(die, plane)
        bus_done = now + self._transfer_ns
        start = max(bus_done, u.free)
        completion = start + self._timing.program_ns
        u.free = completion
        u.suspends = 0
        if self.schedule_log is not None:
            self.schedule_log.append(("program", die, plane, start, completion))
        self._track(completion, "program", on_done)
        return completion

    def submit_erase(
        self, die: int, plane: int, now: float,
        on_done: Optional[Callable[[], None]] = None,
    ) -> float:
        """Block erase: unit-exclusive, no transfer, not suspendable."""
        u = self._unit(die, plane)
        start = max(now, u.free)
        completion = start + self._timing.erase_ns
        u.free = completion
        u.read_free = max(u.read_free, completion)
        u.suspends = 0
        if self.schedule_log is not None:
            self.schedule_log.append(("erase", die, plane, start, completion))
        self._track(completion, "erase", on_done)
        return completion

    def _track(self, completion: float, kind: str, on_done) -> None:
        if kind == "read":
            self.queued_reads += 1
        elif kind == "program":
            self.queued_programs += 1
        else:
            self.queued_erases += 1

        def _complete() -> None:
            if kind == "read":
                self.queued_reads -= 1
            elif kind == "program":
                self.queued_programs -= 1
            else:
                self.queued_erases -= 1
            if on_done is not None:
                on_done()

        self._engine.schedule_at(completion, _complete)


class DeepFlashArray(FlashArray):
    """Multi-channel array routing by explicit physical geometry.

    Public API (``read_page`` / ``program_page`` / ``erase_block`` /
    ``channel_of`` / estimators / ``arbiter``) is identical to
    :class:`FlashArray`; only the routing hooks differ, so every
    consumer -- controllers, compaction, DRAM manager, the QoS
    admission arbiter -- works unmodified.
    """

    def __init__(
        self,
        geometry: FlashGeometry,
        timing: FlashTiming,
        engine: Engine,
        stats: SimStats,
        transfer_ns: float = PAGE_TRANSFER_NS,
        device: Optional[DeviceModelConfig] = None,
        schedule_log: Optional[list] = None,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self._stats = stats
        self.device = device if device is not None else DeviceModelConfig(kind="deep")
        self.model = GeometryModel(geometry, timing)
        self.channels: List[DeepFlashChannel] = [
            DeepFlashChannel(
                i,
                self.model.dies_per_channel,
                self.model.planes_per_die,
                timing,
                engine,
                transfer_ns,
                read_priority=self.device.read_priority,
                max_read_bypass=self.device.max_read_bypass,
                plane_parallelism=self.device.plane_parallelism,
                schedule_log=schedule_log,
            )
            for i in range(geometry.channels)
        ]
        self.arbiter = None
        self.tracer = None

    @property
    def units_per_channel(self) -> int:
        """Independent array units behind one channel (arbiter slots)."""
        return self.channels[0].units

    def preview_read_ns(self, ppa: int, now: float) -> float:
        """Exact latency a read of ``ppa`` submitted at ``now`` would be
        charged (cf. the heuristic :meth:`estimate_read_ns`)."""
        channel, die, plane, _, _ = self.model.decompose(ppa)
        return self.channels[channel].preview_read_ns(die, plane, now)

    def _sample_depth(self, index: int) -> None:
        device = self._stats.device
        if device is not None and self._stats.enabled:
            device.note_queue_depth(index, self.channels[index].queue_depth)

    def _submit_read(self, index: int, ppa: int, now: float, on_done) -> float:
        _, die, plane, _, _ = self.model.decompose(ppa)
        done = self.channels[index].submit_read(die, plane, now, on_done)
        self._sample_depth(index)
        return done

    def _submit_program(self, index: int, ppa: int, now: float, on_done) -> float:
        _, die, plane, _, _ = self.model.decompose(ppa)
        done = self.channels[index].submit_program(die, plane, now, on_done)
        self._sample_depth(index)
        return done

    def _submit_erase(self, index: int, block: int, now: float, on_done) -> float:
        _, die, plane, _ = self.model.decompose_block(block)
        done = self.channels[index].submit_erase(die, plane, now, on_done)
        self._sample_depth(index)
        return done
