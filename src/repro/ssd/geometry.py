"""Explicit flash-geometry arithmetic for the deep device model.

The flat model (:class:`repro.ssd.flash.FlashChannel`) treats a channel
as a pool of interchangeable dies and dispatches every command to the
earliest-free one.  The deep model instead routes each command to the
die and plane the page *physically* lives on, which requires decomposing
a dense physical page address (PPA) into its full coordinate tuple::

    (channel, die, plane, block_in_plane, page_in_block)

The dense layout is the one the rest of the simulator (FTL, compaction,
trace capture) already uses, channel-major::

    ppa = channel * pages_per_channel
        + block_in_channel * pages_per_block
        + page_in_block

with blocks of one channel laid out die-major then plane-major::

    block_in_channel = (die * planes_per_die + plane) * blocks_per_plane
                     + block_in_plane

so :meth:`GeometryModel.decompose` / :meth:`GeometryModel.compose` are a
strict refinement of :class:`~repro.ssd.flash.FlashArray`'s arithmetic:
``compose(decompose(ppa)) == ppa`` for every valid address, and the
channel/global-block of a PPA agree with the flat model's answers.

Derived counts are computed once and cached on the instance via the
``calc_and_cache`` idiom of wiscsee's flash config (compute every
derived quantity eagerly from the primitive fields, then treat the
object as read-only), so hot-path decomposition is plain integer
arithmetic on precomputed strides.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config import FlashGeometry, FlashTiming


class GeometryModel:
    """Cached derived geometry plus PPA coordinate arithmetic.

    Args:
        geometry: the primitive geometry (channels, chips, dies, planes,
            blocks, pages).
        timing: per-op flash latencies (tR / tProg / tErase); cached here
            so scheduler code has one object to consult.
    """

    def __init__(self, geometry: FlashGeometry, timing: FlashTiming) -> None:
        self.geometry = geometry
        self.timing = timing
        self._calc_and_cache()

    # -- derived values (wiscsee calc_and_cache idiom) -----------------------

    def _calc_and_cache(self) -> None:
        """Compute every derived count once from the primitive fields."""
        g = self.geometry
        self.channels = g.channels
        self.dies_per_channel = g.chips_per_channel * g.dies_per_chip
        self.planes_per_die = g.planes_per_die
        self.planes_per_channel = self.dies_per_channel * g.planes_per_die
        self.blocks_per_plane = g.blocks_per_plane
        self.blocks_per_die = g.planes_per_die * g.blocks_per_plane
        self.blocks_per_channel = self.dies_per_channel * self.blocks_per_die
        self.pages_per_block = g.pages_per_block
        self.pages_per_plane = g.blocks_per_plane * g.pages_per_block
        self.pages_per_die = self.blocks_per_die * g.pages_per_block
        self.pages_per_channel = self.blocks_per_channel * g.pages_per_block
        self.total_blocks = g.channels * self.blocks_per_channel
        self.total_pages = g.channels * self.pages_per_channel
        self.total_bytes = self.total_pages * g.page_size
        self.read_ns = self.timing.read_ns
        self.program_ns = self.timing.program_ns
        self.erase_ns = self.timing.erase_ns

    # -- coordinate arithmetic ------------------------------------------------

    def decompose(self, ppa: int) -> Tuple[int, int, int, int, int]:
        """``ppa`` -> ``(channel, die, plane, block_in_plane, page)``."""
        if not 0 <= ppa < self.total_pages:
            raise ValueError(f"ppa {ppa} out of range")
        channel, in_channel = divmod(ppa, self.pages_per_channel)
        die, in_die = divmod(in_channel, self.pages_per_die)
        plane, in_plane = divmod(in_die, self.pages_per_plane)
        block_in_plane, page = divmod(in_plane, self.pages_per_block)
        return channel, die, plane, block_in_plane, page

    def compose(
        self, channel: int, die: int, plane: int, block_in_plane: int, page: int
    ) -> int:
        """``(channel, die, plane, block_in_plane, page)`` -> ``ppa``."""
        if not 0 <= channel < self.channels:
            raise ValueError(f"channel {channel} out of range")
        if not 0 <= die < self.dies_per_channel:
            raise ValueError(f"die {die} out of range")
        if not 0 <= plane < self.planes_per_die:
            raise ValueError(f"plane {plane} out of range")
        if not 0 <= block_in_plane < self.blocks_per_plane:
            raise ValueError(f"block {block_in_plane} out of range")
        if not 0 <= page < self.pages_per_block:
            raise ValueError(f"page {page} out of range")
        return (
            channel * self.pages_per_channel
            + die * self.pages_per_die
            + plane * self.pages_per_plane
            + block_in_plane * self.pages_per_block
            + page
        )

    def unit_of(self, ppa: int) -> Tuple[int, int, int]:
        """``ppa`` -> ``(channel, die, plane)`` without the block split."""
        channel, die, plane, _, _ = self.decompose(ppa)
        return channel, die, plane

    def decompose_block(self, block: int) -> Tuple[int, int, int, int]:
        """Global block index -> ``(channel, die, plane, block_in_plane)``."""
        if not 0 <= block < self.total_blocks:
            raise ValueError(f"block {block} out of range")
        channel, in_channel = divmod(block, self.blocks_per_channel)
        die, in_die = divmod(in_channel, self.blocks_per_die)
        plane, block_in_plane = divmod(in_die, self.blocks_per_plane)
        return channel, die, plane, block_in_plane

    def to_dict(self) -> Dict[str, int]:
        """Derived counts as a plain dict (diagnostics / docs)."""
        return {
            "channels": self.channels,
            "dies_per_channel": self.dies_per_channel,
            "planes_per_die": self.planes_per_die,
            "blocks_per_plane": self.blocks_per_plane,
            "pages_per_block": self.pages_per_block,
            "pages_per_plane": self.pages_per_plane,
            "pages_per_die": self.pages_per_die,
            "pages_per_channel": self.pages_per_channel,
            "total_blocks": self.total_blocks,
            "total_pages": self.total_pages,
            "total_bytes": self.total_bytes,
        }
