"""Garbage collection.

Greedy, channel-local GC as in SimpleSSD-style firmware models: when a
channel's free-block pool drops to a reserve, pick the FULL blocks with the
fewest valid pages, relocate their live pages (a flash read plus a program
each), then erase.  All operations are submitted to the channel's FIFO
queue, so in-flight and subsequent host requests on that channel queue up
behind the GC -- exactly the multi-millisecond blocking behaviour the paper
identifies as a main source of tail latency (§II-C) and that Algorithm 1's
queue-sum estimator accounts for.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SSDConfig
from repro.sim.engine import Engine
from repro.sim.stats import SimStats
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import PageFTL


class GarbageCollector:
    """Channel-local greedy garbage collector."""

    def __init__(
        self,
        config: SSDConfig,
        ftl: PageFTL,
        flash: FlashArray,
        engine: Engine,
        stats: SimStats,
    ) -> None:
        self._config = config
        self._ftl = ftl
        self._flash = flash
        self._engine = engine
        self._stats = stats
        blocks_per_channel = config.geometry.blocks_per_channel
        #: Free-block floor that triggers a GC campaign: a small fraction
        #: of the 20% slack the 80% utilisation threshold (Table II)
        #: leaves.  Preconditioning fills the device to just above this.
        self.reserve_blocks = max(
            2, int(blocks_per_channel * (1.0 - config.gc_threshold) * 0.15)
        )
        #: Blocks to free per campaign.  Campaigns are deliberately small
        #: so each lasts the "few milliseconds" the paper attributes to a
        #: GC (§II-C): one block's worth of moves plus its erase.
        self.blocks_per_campaign = max(
            1, int(blocks_per_channel * config.gc_free_fraction)
        )
        self._active = [False] * config.geometry.channels
        self._in_emergency = False
        # Emergency reclamation when an allocation finds the channel dry:
        # run a campaign immediately, regardless of any in-flight one
        # (block metadata is released at submission, so the retry works).
        ftl.on_out_of_space = self._emergency_collect

    def needs_collection(self, channel: int) -> bool:
        return (
            self._ftl.free_blocks_in_channel(channel) <= self.reserve_blocks
            and not self._active[channel]
        )

    def is_active(self, channel: int) -> bool:
        """Whether a GC campaign currently occupies ``channel``."""
        return self._active[channel]

    def _emergency_collect(self, channel: int) -> None:
        """Reentrancy-guarded campaign for allocation-time starvation
        (GC relocations themselves allocate, so guard against recursion)."""
        if self._in_emergency:
            return
        self._in_emergency = True
        try:
            self.collect(channel, self._engine.now)
        finally:
            self._in_emergency = False

    def maybe_collect(self, channel: int, now: float) -> Optional[float]:
        """Run a campaign if the channel is below reserve.

        Returns the campaign completion time, or None if no GC was needed.
        The FTL metadata is updated immediately (the moved pages' new
        locations are visible to subsequent translations); the *time* cost
        is paid through the channel queue.
        """
        if not self.needs_collection(channel):
            return None
        return self.collect(channel, now)

    def collect(self, channel: int, now: float) -> float:
        """Unconditionally run one campaign on ``channel``."""
        self._active[channel] = True
        if self._stats.enabled:
            self._stats.gc_invocations += 1
        completion = now
        freed = 0
        while freed < self.blocks_per_campaign:
            victim = self._ftl.select_victim(channel)
            if victim is None:
                break
            # Relocate live pages within the channel: read + program each.
            for lpa in list(victim.live.values()):
                old_ppa = self._ftl.translate(lpa)
                completion = self._flash.read_page(old_ppa, now)
                new_ppa = self._ftl.relocate(lpa, channel)
                completion = self._flash.program_page(new_ppa, now)
                if self._stats.enabled:
                    self._stats.gc_page_moves += 1
            completion = self._flash.erase_block(victim.index, now)
            self._ftl.release_block(victim)
            freed += 1
        self._trace_campaign(channel, now, completion, freed, "sync")

        def _finish() -> None:
            self._active[channel] = False

        self._engine.schedule_at(completion, _finish)
        return completion

    def _trace_campaign(
        self, channel: int, start_ns: float, end_ns: float, freed: int,
        mode: str,
    ) -> None:
        """Span for a whole campaign on the GC lane of its channel."""
        tracer = getattr(self._flash, "tracer", None)
        if tracer is None or end_ns <= start_ns:
            return
        tracer.complete(
            "gc.campaign", "gc", f"channel {channel}",
            int(start_ns), int(end_ns),
            args={"channel": channel, "blocks_freed": freed, "mode": mode},
        )


class BackgroundGarbageCollector(GarbageCollector):
    """Deferred, paced GC for the deep device model.

    Three differences from the synchronous collector (``docs/DEVICE_MODEL.md``):

    * **Earlier watermark** -- campaigns trigger one campaign's worth of
      blocks above the emergency reserve, buying slack to run off the
      host critical path.
    * **Deferred campaigns** -- :meth:`maybe_collect` marks the channel
      active and schedules the campaign as an engine event instead of
      running it inline in the host request path.
    * **Paced migration** -- each valid page's program is submitted at
      its read's completion and the erase after the last program, so GC
      occupies the command queues for the campaign's real duration
      instead of dumping every op at one instant.

    Campaigns chain: while the channel stays below the watermark and the
    last campaign freed something, the next one is scheduled
    ``gc_idle_ns`` after completion.  Both conditions are required, so
    the event chain always terminates and the engine cannot hang on a
    self-rescheduling GC.  The allocation-time emergency path is
    inherited unchanged: FTL metadata updates stay synchronous, so the
    failed allocation's retry still succeeds immediately.
    """

    def __init__(
        self,
        config: SSDConfig,
        ftl: PageFTL,
        flash: FlashArray,
        engine: Engine,
        stats: SimStats,
        idle_ns: float = 50_000.0,
    ) -> None:
        super().__init__(config, ftl, flash, engine, stats)
        self.idle_ns = max(0.0, idle_ns)
        #: Background campaigns start this many blocks before the
        #: synchronous collector's reserve floor.
        self.watermark = self.reserve_blocks + self.blocks_per_campaign

    def needs_collection(self, channel: int) -> bool:
        return (
            self._ftl.free_blocks_in_channel(channel) <= self.watermark
            and not self._active[channel]
        )

    def maybe_collect(self, channel: int, now: float) -> Optional[float]:
        """Defer a campaign to an engine event instead of running inline."""
        if not self.needs_collection(channel):
            return None
        self._active[channel] = True
        self._engine.schedule_at(now, lambda: self._campaign(channel))
        return None

    def _campaign(self, channel: int) -> None:
        device = self._stats.device
        if device is not None and self._stats.enabled:
            device.background_campaigns += 1
        self.collect(channel, self._engine.now)

    def collect(self, channel: int, now: float) -> float:
        """One paced campaign; returns the erase-complete time."""
        self._active[channel] = True
        if self._stats.enabled:
            self._stats.gc_invocations += 1
        device = self._stats.device
        completion = now
        freed = 0
        while freed < self.blocks_per_campaign:
            victim = self._ftl.select_victim(channel)
            if victim is None:
                break
            erase_at = now
            for lpa in list(victim.live.values()):
                old_ppa = self._ftl.translate(lpa)
                read_done = self._flash.read_page(old_ppa, now)
                new_ppa = self._ftl.relocate(lpa, channel)
                program_done = self._flash.program_page(new_ppa, read_done)
                erase_at = max(erase_at, program_done)
                if self._stats.enabled:
                    self._stats.gc_page_moves += 1
                    if device is not None:
                        device.gc_reads += 1
                        device.gc_programs += 1
            completion = self._flash.erase_block(victim.index, erase_at)
            if device is not None and self._stats.enabled:
                device.gc_erases += 1
            self._ftl.release_block(victim)
            freed += 1
        made_progress = freed > 0
        self._trace_campaign(channel, now, completion, freed, "background")

        def _finish() -> None:
            self._active[channel] = False
            if (
                made_progress
                and self._ftl.free_blocks_in_channel(channel) <= self.watermark
            ):
                self._active[channel] = True
                self._engine.schedule_at(
                    self._engine.now + self.idle_ns,
                    lambda: self._campaign(channel),
                )

        self._engine.schedule_at(completion, _finish)
        return completion
