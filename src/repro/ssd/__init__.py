"""SSD substrate: flash timing/geometry, channel queues, FTL, GC, and the
baseline (Base-CSSD) controller."""
