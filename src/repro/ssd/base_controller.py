"""Base-CSSD: the state-of-the-art baseline CXL-SSD controller.

Models the device the paper compares against (§VI-A): a page-granular SSD
DRAM cache with LRU replacement, write-allocate fills, sequential
next-page prefetching, and controller-side MSHRs that coalesce concurrent
accesses to an in-flight page fetch.  The access-granularity mismatch is
inherent here: a single dirty cacheline forces a whole-page writeback, and
a cacheline write to a non-resident page must first fetch the page from
flash (read-modify-write), which is precisely the amplification SkyByte's
write log removes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import SimConfig
from repro.cxl.protocol import MemRequest
from repro.core.trigger import ContextSwitchTrigger
from repro.qos import FlashPacingArbiter, build_tenant_map
from repro.sim import fastpath
from repro.sim.engine import Engine
from repro.sim.stats import SimStats, SSD_READ_HIT, SSD_READ_MISS, SSD_WRITE
from repro.ssd.base_cache import SetAssociativePageCache
from repro.ssd.factory import arbiter_slots, build_flash_subsystem
from repro.ssd.interface import AccessResult


class BaseCSSDController:
    """Baseline CXL-SSD controller (Base-CSSD in the paper's figures)."""

    def __init__(
        self,
        config: SimConfig,
        engine: Engine,
        stats: SimStats,
        ctx_switch_enabled: bool = False,
    ) -> None:
        self._config = config
        self._ssd = config.ssd
        self._engine = engine
        self._stats = stats
        self.ftl, self.flash, self.gc = build_flash_subsystem(config, engine, stats)
        # Tenant QoS: the baseline supports the flash admission arbiter
        # ("wfq"/"priority"), so a QoS trace replays with isolation active
        # under any device personality (docs/QOS.md).
        self.tenant_map = build_tenant_map(config.qos)
        self._flash_qos = (
            self.tenant_map is not None and self.tenant_map.flash_scheduling
        )
        if self._flash_qos:
            self.flash.arbiter = FlashPacingArbiter(
                self.tenant_map,
                self._ssd.geometry.channels,
                arbiter_slots(config),
                self._ssd.timing.read_ns,
            )
        # The whole SSD DRAM is one page cache in the baseline.
        cache_pages = max(1, self._ssd.dram_bytes // self._ssd.geometry.page_size)
        self.cache = SetAssociativePageCache(cache_pages, self._ssd.cache_ways)
        self.trigger = ContextSwitchTrigger(
            config.os.cs_threshold_ns, self.flash, self.gc, enabled=ctx_switch_enabled
        )
        # Hoisted per-access constants (config is settled by now).
        self._index_ns = self._ssd.cache_index_ns
        self._dram_ns = self._ssd.dram_access_ns
        # Controller MSHRs: lpa -> time its in-flight fetch completes.
        self._inflight: Dict[int, float] = {}
        # Lazy MSHR retirement (vectorized path): stale entries are
        # detected by value (``ready > now``) at every lookup instead of
        # being removed by a scheduled cleanup event -- same coalescing
        # decisions, roughly half the engine events on miss-heavy runs.
        self._lazy_inflight = fastpath.vectorized()
        #: Hook the migration engine installs to observe page accesses.
        self.on_page_access = None
        self._last_flush_scan = 0.0

    # -- public API -------------------------------------------------------------

    def access(self, request: MemRequest, now: float) -> AccessResult:
        return self.access_line(
            request.page, request.line_offset, request.is_write, now
        )

    def access_line(
        self, lpa: int, line: int, is_write: bool, now: float
    ) -> AccessResult:
        """Direct entry taking the decoded address: the vectorized host
        path calls this without materialising a :class:`MemRequest`."""
        if self.on_page_access is not None:
            self.on_page_access(lpa, is_write, now)
        self._periodic_persistence(now)
        if is_write:
            return self._write(lpa, line, now)
        return self._read(lpa, line, now)

    def _periodic_persistence(self, now: float) -> None:
        """Write back dirty pages older than the persistence interval.

        Conventional CXL-SSD caches keep block-device durability
        semantics, so dirtiness cannot sit in volatile DRAM indefinitely;
        SkyByte's battery-backed write log removes exactly this flush
        traffic (§IV), which is where its "larger coalescing window"
        (§III-B) comes from.
        """
        interval = self._ssd.dirty_flush_interval_ns
        if interval <= 0:
            return
        if now - self._last_flush_scan < interval / 4:
            return
        self._last_flush_scan = now
        for entry in list(self.cache.dirty_entries()):
            if entry.dirty_since_ns >= 0 and now - entry.dirty_since_ns >= interval:
                self._writeback(entry, now)
                entry.dirty_mask = 0
                entry.dirty_since_ns = -1.0

    def drain(self, now: float) -> float:
        """Flush every dirty cached page to flash."""
        completion = now
        for entry in list(self.cache.dirty_entries()):
            completion = max(completion, self._writeback(entry, now))
            entry.dirty_mask = 0
        return completion

    def warm_access(self, page: int, line: int, is_write: bool) -> None:
        """Metadata-only warmup replay of one access (§VI-A): pages enter
        the cache as zero-cost fills so LRU state reaches steady state."""
        entry = self.cache.lookup(page, touch_line=line)
        if entry is None:
            self.cache.insert(page, touch_line=line)
            entry = self.cache.peek(page)
        if is_write:
            entry.dirty_mask |= 1 << line
            if entry.dirty_since_ns < 0:
                entry.dirty_since_ns = 0.0

    def invalidate_page(self, lpa: int) -> int:
        """Drop a page from the DRAM cache (after promotion to host).

        Returns the dirty-line bitmap that was dropped, so the migration
        engine can carry the dirty-versus-flash state to the host copy.
        """
        entry = self.cache.evict(lpa)
        self._inflight.pop(lpa, None)
        return entry.dirty_mask if entry is not None else 0

    def demote_page(self, lpa: int, dirty_mask: int, now: float) -> None:
        """Accept a page evicted from host DRAM back into the SSD.

        The clean lines still exist on flash (the mapping was never
        trimmed), so only dirtiness must be recorded: the page re-enters
        the DRAM cache with its host-side dirty lines marked, and the
        normal eviction path eventually writes it back.
        """
        victim = self.cache.insert(lpa)
        entry = self.cache.peek(lpa)
        entry.dirty_mask |= dirty_mask
        entry.touch_mask |= dirty_mask
        if dirty_mask and entry.dirty_since_ns < 0:
            entry.dirty_since_ns = now
        if victim is not None:
            if self._stats.enabled:
                self._stats.cache_evictions += 1
                self._stats.read_locality.record(victim.lines_touched)
            if victim.dirty:
                self._writeback(victim, now)

    def contains_page(self, lpa: int) -> bool:
        return lpa in self.cache

    # -- read path ---------------------------------------------------------------

    def _read(self, lpa: int, line: int, now: float) -> AccessResult:
        index_ns = self._index_ns
        entry = self.cache.lookup(lpa, touch_line=line)
        if entry is not None:
            ready = self._inflight.get(lpa, 0.0)
            if ready > now + index_ns:
                # Page is resident-in-name but the fetch is still on the
                # wire: coalesce onto the controller MSHR (no new flash op).
                self._stats.count_request(SSD_READ_MISS)
                flash_wait = ready - now - index_ns
                self._stats.record_amat(indexing=index_ns, flash=flash_wait,
                                        ssd_dram=self._ssd.dram_access_ns)
                complete = ready + self._ssd.dram_access_ns
                decision = self._decide_switch(lpa, default_est=flash_wait)
                return AccessResult(
                    complete_ns=complete,
                    request_class=SSD_READ_MISS,
                    delay_hint=decision.trigger,
                    est_delay_ns=decision.estimated_ns,
                    breakdown={
                        "indexing": index_ns,
                        "flash": flash_wait,
                        "ssd_dram": self._ssd.dram_access_ns,
                    },
                )
            # Hit: the common case, with the stats mutators inlined
            # (skipping the ``+= 0.0`` component adds is exact).
            stats = self._stats
            dram_ns = self._dram_ns
            if stats.enabled:
                stats.cache_hits += 1
                stats.request_counts[SSD_READ_HIT] += 1
                stats.amat_indexing_ns += index_ns
                stats.amat_ssd_dram_ns += dram_ns
                stats.amat_accesses += 1
            return AccessResult(
                complete_ns=now + index_ns + dram_ns,
                request_class=SSD_READ_HIT,
                breakdown={"indexing": index_ns, "ssd_dram": dram_ns},
            )
        # Miss: fetch the whole page from flash.
        if self._stats.enabled:
            self._stats.cache_misses += 1
        self._stats.count_request(SSD_READ_MISS)
        decision = self._decide_switch_before_fetch(lpa)
        ready = self._fetch_page(lpa, now + index_ns, touch_line=line)
        flash_ns = max(0.0, ready - now - index_ns)
        self._stats.record_amat(
            indexing=index_ns, flash=flash_ns, ssd_dram=self._ssd.dram_access_ns
        )
        self._maybe_prefetch(lpa, now + index_ns)
        return AccessResult(
            complete_ns=ready + self._ssd.dram_access_ns,
            request_class=SSD_READ_MISS,
            delay_hint=decision.trigger,
            est_delay_ns=decision.estimated_ns,
            breakdown={
                "indexing": index_ns,
                "flash": flash_ns,
                "ssd_dram": self._ssd.dram_access_ns,
            },
        )

    # -- write path -----------------------------------------------------------------

    def _write(self, lpa: int, line: int, now: float) -> AccessResult:
        if self._stats.enabled:
            self._stats.host_lines_written += 1
        self._stats.count_request(SSD_WRITE)
        index_ns = self._ssd.cache_index_ns
        entry = self.cache.lookup(lpa, touch_line=line)
        if entry is not None:
            entry.dirty_mask |= 1 << line
            if entry.dirty_since_ns < 0:
                entry.dirty_since_ns = now
            ready = self._inflight.get(lpa, 0.0)
            base = max(now + index_ns, ready)
            self._stats.record_amat(
                indexing=index_ns,
                ssd_dram=self._ssd.dram_access_ns,
                flash=max(0.0, ready - now - index_ns),
            )
            return AccessResult(
                complete_ns=base + self._ssd.dram_access_ns,
                request_class=SSD_WRITE,
                breakdown={
                    "indexing": index_ns,
                    "ssd_dram": self._ssd.dram_access_ns,
                    "flash": max(0.0, ready - now - index_ns),
                },
            )
        # Write-allocate: the page must be fetched before the line can be
        # merged -- the granularity-mismatch penalty of §II-C.
        ready = self._fetch_page(lpa, now + index_ns, touch_line=line)
        entry = self.cache.peek(lpa)
        if entry is not None:
            entry.dirty_mask |= 1 << line
            if entry.dirty_since_ns < 0:
                entry.dirty_since_ns = now
        flash_ns = max(0.0, ready - now - index_ns)
        self._stats.record_amat(
            indexing=index_ns, flash=flash_ns, ssd_dram=self._ssd.dram_access_ns
        )
        return AccessResult(
            complete_ns=ready + self._ssd.dram_access_ns,
            request_class=SSD_WRITE,
            breakdown={
                "indexing": index_ns,
                "flash": flash_ns,
                "ssd_dram": self._ssd.dram_access_ns,
            },
        )

    # -- internals -----------------------------------------------------------------

    def _fetch_page(self, lpa: int, now: float, touch_line: Optional[int]) -> float:
        """Bring ``lpa`` into the cache; returns data-ready time."""
        inflight = self._inflight.get(lpa)
        if inflight is not None and inflight > now:
            entry = self.cache.lookup(lpa, touch_line=touch_line)
            if entry is not None:
                return inflight
        ppa = self.ftl.translate(lpa)
        if ppa is None:
            # First-touch of a never-written page: materialise a mapping
            # (zero-fill); costs an allocation but no flash read.
            ppa = self.ftl.write(lpa)
            self._run_gc_check(ppa, now)
            ready = now
        else:
            tenant = (
                self.tenant_map.tenant_of_page(lpa) if self._flash_qos else None
            )
            ready = self.flash.read_page(ppa, now, tenant=tenant)
        victim = self.cache.insert(lpa, touch_line=touch_line)
        if victim is not None:
            if self._stats.enabled:
                self._stats.cache_evictions += 1
                self._stats.read_locality.record(victim.lines_touched)
            if victim.dirty:
                self._writeback(victim, now)
        self._inflight[lpa] = ready
        if not self._lazy_inflight:
            self._schedule_inflight_cleanup(lpa, ready)
        return ready

    def _writeback(self, entry, now: float) -> float:
        """Write a whole dirty page back to flash (page-granular!)."""
        if self._stats.enabled:
            self._stats.cache_dirty_evictions += 1
            self._stats.write_locality.record(entry.lines_dirty)
        ppa = self.ftl.write(entry.lpa)
        done = self.flash.program_page(ppa, now)
        self._run_gc_check(ppa, now)
        return done

    def _maybe_prefetch(self, lpa: int, now: float) -> None:
        """Sequential next-page prefetch (one of the baseline's published
        optimisations)."""
        for offset in range(1, self._ssd.prefetch_depth + 1):
            nxt = lpa + offset
            if nxt in self.cache:
                continue
            inflight = self._inflight.get(nxt)
            if inflight is not None and (not self._lazy_inflight or inflight > now):
                continue
            ppa = self.ftl.translate(nxt)
            if ppa is None:
                continue
            tenant = (
                self.tenant_map.tenant_of_page(nxt) if self._flash_qos else None
            )
            ready = self.flash.read_page(ppa, now, tenant=tenant)
            victim = self.cache.insert(nxt)
            if self._stats.enabled:
                self._stats.prefetch_issued += 1
            if victim is not None:
                if self._stats.enabled:
                    self._stats.cache_evictions += 1
                    self._stats.read_locality.record(victim.lines_touched)
                if victim.dirty:
                    self._writeback(victim, now)
            self._inflight[nxt] = ready
            if not self._lazy_inflight:
                self._schedule_inflight_cleanup(nxt, ready)

    def _run_gc_check(self, ppa: int, now: float) -> None:
        channel = self.flash.channel_of(ppa)
        self.gc.maybe_collect(channel, now)

    def _decide_switch_before_fetch(self, lpa: int):
        ppa = self.ftl.translate(lpa)
        if ppa is None:
            from repro.core.trigger import TriggerDecision

            return TriggerDecision(False, 0.0)
        return self.trigger.should_context_switch(ppa)

    def _decide_switch(self, lpa: int, default_est: float):
        """Decision for MSHR-coalesced requests: base it on the remaining
        wait rather than the channel queue."""
        from repro.core.trigger import TriggerDecision

        if not self.trigger.enabled:
            return TriggerDecision(False, default_est)
        return TriggerDecision(default_est > self.trigger.threshold_ns, default_est)

    def _schedule_inflight_cleanup(self, lpa: int, ready: float) -> None:
        def _done() -> None:
            if self._inflight.get(lpa, 0.0) <= ready:
                self._inflight.pop(lpa, None)

        self._engine.schedule_at(ready, _done)
