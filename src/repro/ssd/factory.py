"""Flash-subsystem construction for both device models.

Both controller personalities (SkyByte, Base-CSSD) build their FTL,
flash array, and garbage collector here so the flat/deep selection in
``config.device_model`` (see :class:`repro.config.DeviceModelConfig`
and ``docs/DEVICE_MODEL.md``) lives in exactly one place.
"""

from __future__ import annotations

from typing import Tuple

from repro.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.stats import DeviceStats, SimStats
from repro.ssd.flash import DeepFlashArray, FlashArray
from repro.ssd.ftl import PageFTL
from repro.ssd.gc import BackgroundGarbageCollector, GarbageCollector


def build_flash_subsystem(
    config: SimConfig, engine: Engine, stats: SimStats
) -> Tuple[PageFTL, FlashArray, GarbageCollector]:
    """Return ``(ftl, flash, gc)`` for ``config.device_model``.

    ``kind="flat"`` builds the horizon-estimate model every golden
    digest is pinned against; ``kind="deep"`` builds the explicit
    geometry-routed queueing model, attaches :class:`DeviceStats` to
    ``stats`` (per-op GC and queue-depth accounting), and -- unless
    ``background_gc`` is off -- the deferred paced garbage collector.
    """
    ssd = config.ssd
    device = config.device_model
    ftl = PageFTL(ssd.geometry, seed=config.seed)
    if device.kind == "deep":
        if stats.device is None:
            stats.device = DeviceStats()
        flash: FlashArray = DeepFlashArray(
            ssd.geometry, ssd.timing, engine, stats, device=device
        )
        if device.background_gc:
            gc: GarbageCollector = BackgroundGarbageCollector(
                ssd, ftl, flash, engine, stats, idle_ns=device.gc_idle_ns
            )
        else:
            gc = GarbageCollector(ssd, ftl, flash, engine, stats)
    elif device.kind == "flat":
        flash = FlashArray(ssd.geometry, ssd.timing, engine, stats)
        gc = GarbageCollector(ssd, ftl, flash, engine, stats)
    else:
        raise ValueError(
            f"unknown device_model.kind {device.kind!r} (expected 'flat' or 'deep')"
        )
    return ftl, flash, gc


def arbiter_slots(config: SimConfig) -> int:
    """Per-channel parallel units the QoS admission arbiter assumes.

    The flat model overlaps one command per die; the deep model with
    plane parallelism overlaps one per plane, so pacing gets the extra
    slots instead of over-throttling tenants.
    """
    geo = config.ssd.geometry
    dies = geo.chips_per_channel * geo.dies_per_chip
    if config.device_model.kind == "deep" and config.device_model.plane_parallelism:
        return dies * geo.planes_per_die
    return dies
