"""Page-level Flash Translation Layer.

Implements the FTL functions the paper's SSD firmware model needs (§V):
logical-to-physical address translation, out-of-place page allocation with
per-channel write points, invalidation bookkeeping, and the per-block
liveness metadata garbage collection consumes.

Logical page addresses (LPAs) are the SSD-visible page indices of the
host-managed device memory; physical page addresses (PPAs) follow the
channel-major layout of :mod:`repro.ssd.flash`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.config import FlashGeometry
from repro.sim import fastpath

#: Memoized post-precondition FTL state per
#: ``(geometry, seed, logical_pages, target_free_blocks)``.  Aging a
#: fresh FTL is deterministic in that key and touches nothing outside
#: the FTL's own bookkeeping (verified: the emergency-GC hook never
#: fired), so sweep cells sharing a device configuration restore the
#: snapshot instead of replaying the whole RNG-driven fill.
_PRECONDITION_MEMO: Dict[tuple, tuple] = {}
_PRECONDITION_MEMO_MAX = 4


class BlockState:
    """Lifecycle states of a flash block."""

    FREE = "free"
    OPEN = "open"
    FULL = "full"


class Block:
    """Metadata for one flash block."""

    __slots__ = ("index", "state", "next_page", "live")

    def __init__(self, index: int) -> None:
        self.index = index
        self.state = BlockState.FREE
        self.next_page = 0
        #: page_in_block -> lpa for every still-valid page in this block.
        self.live: Dict[int, int] = {}

    @property
    def valid_count(self) -> int:
        return len(self.live)

    def invalid_count(self, pages_per_block: int) -> int:
        """Written-but-stale pages (only meaningful once pages were written)."""
        return self.next_page - len(self.live)


class OutOfSpaceError(RuntimeError):
    """Raised when a channel has no free block to allocate from."""


class PageFTL:
    """Page-mapping FTL with per-channel write points."""

    def __init__(self, geometry: FlashGeometry, seed: int = 0) -> None:
        self.geometry = geometry
        self._mapping: Dict[int, int] = {}  # lpa -> ppa
        self.blocks: List[Block] = [Block(i) for i in range(geometry.total_blocks)]
        #: Emergency hook: called with the starved channel when allocation
        #: finds no free block, giving GC a chance to reclaim one before
        #: the allocation is retried.
        self.on_out_of_space = None
        #: Blocks per channel reserved for GC relocation -- host writes
        #: can never claim them, so a campaign always has somewhere to
        #: move a victim's live pages (every real FTL keeps this floor).
        self.gc_reserved_blocks = 2
        self._free_blocks: List[List[int]] = []
        self._open_block: List[Optional[int]] = []
        self._rng = random.Random(seed)
        self._seed = seed
        self._next_channel = 0
        #: True once the emergency-GC hook has ever run (disqualifies the
        #: preconditioning snapshot: the hook mutates GC/flash state the
        #: snapshot cannot carry).
        self._oos_hook_fired = False
        for ch in range(geometry.channels):
            lo = ch * geometry.blocks_per_channel
            hi = lo + geometry.blocks_per_channel
            self._free_blocks.append(list(range(lo, hi)))
            self._open_block.append(None)

    # -- translation ---------------------------------------------------------

    def translate(self, lpa: int) -> Optional[int]:
        """LPA -> PPA, or None if the page was never written."""
        return self._mapping.get(lpa)

    def is_mapped(self, lpa: int) -> bool:
        return lpa in self._mapping

    @property
    def mapped_pages(self) -> int:
        return len(self._mapping)

    def free_blocks_in_channel(self, channel: int) -> int:
        return len(self._free_blocks[channel])

    def channel_of_lpa(self, lpa: int) -> Optional[int]:
        ppa = self.translate(lpa)
        if ppa is None:
            return None
        return ppa // self.geometry.pages_per_channel

    # -- allocation / write path ----------------------------------------------

    def pick_write_channel(self) -> int:
        """Round-robin channel selection for striping host writes."""
        ch = self._next_channel
        self._next_channel = (self._next_channel + 1) % self.geometry.channels
        return ch

    def allocate(self, channel: int, for_gc: bool = False) -> int:
        """Claim the next free physical page on ``channel``.

        Host writes (``for_gc=False``) cannot dip below the GC-reserved
        block floor; when they hit it, the emergency-GC hook runs and the
        allocation retries.  GC relocations (``for_gc=True``) may use the
        reserved blocks.  Raises :class:`OutOfSpaceError` only when the
        channel is truly unrecoverable.
        """
        block_idx = self._open_block[channel]
        if block_idx is not None:
            block = self.blocks[block_idx]
            if block.next_page >= self.geometry.pages_per_block:
                block.state = BlockState.FULL
                self._open_block[channel] = None
                block_idx = None
        if block_idx is None:
            floor = 0 if for_gc else self.gc_reserved_blocks
            if len(self._free_blocks[channel]) <= floor:
                if not for_gc and self.on_out_of_space is not None:
                    # Emergency GC: reclaim synchronously, then retry once.
                    self._oos_hook_fired = True
                    self.on_out_of_space(channel)
                if len(self._free_blocks[channel]) <= floor:
                    raise OutOfSpaceError(f"channel {channel} has no free blocks")
            block_idx = self._free_blocks[channel].pop(0)
            block = self.blocks[block_idx]
            block.state = BlockState.OPEN
            block.next_page = 0
            block.live.clear()
            self._open_block[channel] = block_idx
        block = self.blocks[block_idx]
        page_in_block = block.next_page
        block.next_page += 1
        if block.next_page >= self.geometry.pages_per_block:
            block.state = BlockState.FULL
            self._open_block[channel] = None
        return block_idx * self.geometry.pages_per_block + page_in_block

    def write(self, lpa: int, channel: Optional[int] = None, for_gc: bool = False) -> int:
        """Out-of-place update: map ``lpa`` to a freshly allocated page.

        Returns the new PPA.  The previous physical page (if any) becomes
        invalid.
        """
        if channel is None:
            channel = self.pick_write_channel()
        old = self._mapping.get(lpa)
        if old is not None:
            self._drop_live(old)
        ppa = self.allocate(channel, for_gc=for_gc)
        self._mapping[lpa] = ppa
        block = self.blocks[ppa // self.geometry.pages_per_block]
        block.live[ppa % self.geometry.pages_per_block] = lpa
        return ppa

    def relocate(self, lpa: int, channel: int) -> int:
        """GC relocation: channel-local and allowed to use the reserve."""
        return self.write(lpa, channel, for_gc=True)

    def trim(self, lpa: int) -> None:
        """Drop the mapping for ``lpa`` (page deleted / migrated away)."""
        old = self._mapping.pop(lpa, None)
        if old is not None:
            self._drop_live(old)

    def _drop_live(self, ppa: int) -> None:
        block = self.blocks[ppa // self.geometry.pages_per_block]
        block.live.pop(ppa % self.geometry.pages_per_block, None)

    # -- GC support -----------------------------------------------------------

    def victim_candidates(self, channel: int) -> List[Block]:
        """FULL blocks on ``channel``, i.e. eligible GC victims."""
        lo = channel * self.geometry.blocks_per_channel
        hi = lo + self.geometry.blocks_per_channel
        return [b for b in self.blocks[lo:hi] if b.state == BlockState.FULL]

    def select_victim(self, channel: int) -> Optional[Block]:
        """Greedy victim: the FULL block with the fewest valid pages."""
        candidates = self.victim_candidates(channel)
        if not candidates:
            return None
        return min(candidates, key=lambda b: (b.valid_count, b.index))

    def release_block(self, block: Block) -> None:
        """Return an erased block to its channel's free pool."""
        if block.live:
            raise ValueError("cannot release a block with live pages")
        block.state = BlockState.FREE
        block.next_page = 0
        channel = block.index // self.geometry.blocks_per_channel
        self._free_blocks[channel].append(block.index)

    # -- preconditioning --------------------------------------------------------

    #: Fraction of preconditioned blocks that are "cold" (low validity, the
    #: cheap GC victims an aged device accumulates) vs "hot" (nearly full).
    COLD_BLOCK_FRACTION = 0.25

    def precondition(
        self,
        logical_pages: int,
        target_free_blocks_per_channel: Optional[int] = None,
    ) -> None:
        """Age the device so GC triggers during the run (§VI-A).

        Maps ``logical_pages`` LPAs striped across channels into blocks
        with a *bimodal* validity distribution -- a quarter of the blocks
        are mostly dead (validity 0.3-0.7), the rest nearly full (0.9-1.0)
        -- which is what steady-state greedy GC leaves behind on a real
        drive.  Each channel is filled until only
        ``target_free_blocks_per_channel`` blocks (default ~5% of the
        channel) remain free, so moderate write activity pushes it over
        the GC threshold.
        """
        geo = self.geometry
        if target_free_blocks_per_channel is None:
            target_free_blocks_per_channel = max(3, geo.blocks_per_channel // 20)
        memo_key: Optional[tuple] = None
        if fastpath.vectorized() and self._is_pristine():
            memo_key = (
                geo,
                self._seed,
                logical_pages,
                target_free_blocks_per_channel,
            )
            cached = _PRECONDITION_MEMO.get(memo_key)
            if cached is not None:
                self._restore_state(cached)
                return
        per_channel = [
            logical_pages // geo.channels
            + (1 if ch < logical_pages % geo.channels else 0)
            for ch in range(geo.channels)
        ]
        for ch in range(geo.channels):
            next_lpa = ch  # stripe: channel ch owns lpas ch, ch+C, ch+2C...
            remaining = per_channel[ch]
            while remaining > 0:
                free = len(self._free_blocks[ch])
                fill_room = max(0, free - target_free_blocks_per_channel)
                if fill_room == 0 or remaining >= int(
                    0.8 * fill_room * geo.pages_per_block
                ):
                    # Out of fill room: cram the rest as fully-valid pages.
                    validity = 1.0
                elif self._rng.random() < self.COLD_BLOCK_FRACTION:
                    validity = self._rng.uniform(0.3, 0.7)
                else:
                    validity = self._rng.uniform(0.9, 1.0)
                for _ in range(geo.pages_per_block):
                    if remaining > 0 and self._rng.random() < validity:
                        self.write(next_lpa, ch)
                        next_lpa += geo.channels
                        remaining -= 1
                    else:
                        try:
                            self.allocate(ch)  # dead page
                        except OutOfSpaceError:
                            break
        if memo_key is not None and not self._oos_hook_fired:
            while len(_PRECONDITION_MEMO) >= _PRECONDITION_MEMO_MAX:
                _PRECONDITION_MEMO.pop(next(iter(_PRECONDITION_MEMO)))
            _PRECONDITION_MEMO[memo_key] = self._snapshot_state()

    # -- preconditioning snapshots ------------------------------------------------

    def _is_pristine(self) -> bool:
        """True for a freshly-constructed FTL (nothing written/allocated),
        the only state a preconditioning snapshot may be taken from or
        restored into."""
        return (
            not self._mapping
            and self._next_channel == 0
            and all(b.state == BlockState.FREE for b in self.blocks)
        )

    def _snapshot_state(self) -> tuple:
        return (
            dict(self._mapping),
            [(b.state, b.next_page, dict(b.live)) for b in self.blocks],
            [list(f) for f in self._free_blocks],
            list(self._open_block),
            self._next_channel,
        )

    def _restore_state(self, state: tuple) -> None:
        mapping, blocks, free_blocks, open_block, next_channel = state
        self._mapping = dict(mapping)
        for block, (bstate, next_page, live) in zip(self.blocks, blocks):
            block.state = bstate
            block.next_page = next_page
            block.live = dict(live)
        self._free_blocks = [list(f) for f in free_blocks]
        self._open_block = list(open_block)
        self._next_channel = next_channel

    # -- integrity (used by tests) -----------------------------------------------

    def check_invariants(self) -> None:
        """Verify mapping/liveness bookkeeping is mutually consistent."""
        seen = {}
        for block in self.blocks:
            for page_in_block, lpa in block.live.items():
                ppa = block.index * self.geometry.pages_per_block + page_in_block
                if self._mapping.get(lpa) != ppa:
                    raise AssertionError(
                        f"live page {ppa} claims lpa {lpa} but mapping says "
                        f"{self._mapping.get(lpa)}"
                    )
                if lpa in seen:
                    raise AssertionError(f"lpa {lpa} live in two blocks")
                seen[lpa] = ppa
            if block.next_page > self.geometry.pages_per_block:
                raise AssertionError("block over-programmed")
        if len(seen) != len(self._mapping):
            raise AssertionError("mapping has entries without live pages")
