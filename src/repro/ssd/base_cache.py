"""Set-associative, page-granular SSD DRAM cache.

This is the conventional SSD-internal DRAM cache organisation the paper's
Base-CSSD uses (§II-B): pages cached whole, LRU replacement within a set,
write-allocate with whole-page writeback.  SkyByte's read-write data cache
(:mod:`repro.core.data_cache`) reuses this structure with different fill
and writeback policies.

Each resident page tracks two 64-bit masks: which cachelines the host
touched while the page was resident (feeding the read-locality CDF of
Fig. 5) and which are dirty (feeding Fig. 6 and deciding writebacks).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.config import CACHELINES_PER_PAGE

FULL_MASK = (1 << CACHELINES_PER_PAGE) - 1


@dataclass
class CacheEntry:
    """Metadata for one resident page."""

    lpa: int
    touch_mask: int = 0
    dirty_mask: int = 0
    #: When the page first became dirty (for periodic persistence flushes).
    dirty_since_ns: float = -1.0

    @property
    def dirty(self) -> bool:
        return self.dirty_mask != 0

    @property
    def lines_touched(self) -> int:
        return bin(self.touch_mask).count("1")

    @property
    def lines_dirty(self) -> int:
        return bin(self.dirty_mask).count("1")


class SetAssociativePageCache:
    """LRU set-associative cache of 4 KB pages, keyed by LPA."""

    def __init__(self, capacity_pages: int, ways: int) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        ways = max(1, min(ways, capacity_pages))
        self.ways = ways
        self.num_sets = max(1, capacity_pages // ways)
        self.capacity_pages = self.num_sets * ways
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self._size = 0

    def _set_of(self, lpa: int) -> OrderedDict:
        return self._sets[lpa % self.num_sets]

    def __contains__(self, lpa: int) -> bool:
        return lpa in self._set_of(lpa)

    def __len__(self) -> int:
        return self._size

    def lookup(self, lpa: int, touch_line: Optional[int] = None) -> Optional[CacheEntry]:
        """Return the entry for ``lpa`` (refreshing LRU) or None.

        If ``touch_line`` is given, that cacheline is marked accessed.
        """
        cache_set = self._set_of(lpa)
        entry = cache_set.get(lpa)
        if entry is None:
            return None
        cache_set.move_to_end(lpa)
        if touch_line is not None:
            entry.touch_mask |= 1 << touch_line
        return entry

    def peek(self, lpa: int) -> Optional[CacheEntry]:
        """Lookup without LRU refresh or touch update."""
        return self._set_of(lpa).get(lpa)

    def insert(self, lpa: int, touch_line: Optional[int] = None) -> Optional[CacheEntry]:
        """Insert ``lpa`` as most-recently-used.

        Returns the evicted :class:`CacheEntry` if the set was full, else
        None.  Inserting an already-resident page refreshes it in place.
        """
        cache_set = self._set_of(lpa)
        existing = cache_set.get(lpa)
        if existing is not None:
            cache_set.move_to_end(lpa)
            if touch_line is not None:
                existing.touch_mask |= 1 << touch_line
            return None
        victim = None
        if len(cache_set) >= self.ways:
            _lpa, victim = cache_set.popitem(last=False)
            self._size -= 1
        entry = CacheEntry(lpa=lpa)
        if touch_line is not None:
            entry.touch_mask |= 1 << touch_line
        cache_set[lpa] = entry
        self._size += 1
        return victim

    def mark_dirty(self, lpa: int, line: int) -> bool:
        """Mark one cacheline dirty; returns False if ``lpa`` not resident."""
        entry = self.lookup(lpa, touch_line=line)
        if entry is None:
            return False
        entry.dirty_mask |= 1 << line
        return True

    def evict(self, lpa: int) -> Optional[CacheEntry]:
        """Remove ``lpa`` from the cache, returning its entry."""
        cache_set = self._set_of(lpa)
        entry = cache_set.pop(lpa, None)
        if entry is not None:
            self._size -= 1
        return entry

    def entries(self) -> Iterator[CacheEntry]:
        """Iterate over all resident entries (LRU to MRU within a set)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def dirty_entries(self) -> List[CacheEntry]:
        return [e for e in self.entries() if e.dirty]

    def lru_victim_candidate(self, lpa: int) -> Optional[CacheEntry]:
        """The entry that would be evicted if ``lpa`` were inserted now."""
        cache_set = self._set_of(lpa)
        if lpa in cache_set or len(cache_set) < self.ways:
            return None
        return next(iter(cache_set.values()))
