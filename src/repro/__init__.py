"""SkyByte reproduction: a memory-semantic CXL-SSD simulator.

This package reproduces *SkyByte: Architecting an Efficient
Memory-Semantic CXL-based SSD with OS and Hardware Co-design* (HPCA
2025): the CXL-SSD device model (flash, FTL, GC, DRAM cache), SkyByte's
three mechanisms (coordinated context switch, cacheline write log with
two-level hash indexing, adaptive page migration), the host model
(interval cores, OS scheduler, page table, PLB), the SS VI-H baselines
(TPP, AstriFlash-CXL), the Table I workload models and the experiment
harness regenerating every evaluation figure and table.

Quickstart::

    from repro import run_workload

    base = run_workload("bc", "Base-CSSD", records_per_thread=2000)
    full = run_workload("bc", "SkyByte-Full", records_per_thread=2000)
    print(f"speedup: {full.speedup_over(base):.2f}x")
"""

from repro.config import (
    CACHELINE_SIZE,
    CACHELINES_PER_PAGE,
    FLASH_TIMINGS,
    PAGE_SIZE,
    CPUConfig,
    CXLConfig,
    FlashGeometry,
    FlashTiming,
    OSConfig,
    SimConfig,
    SkyByteConfig,
    SSDConfig,
    paper_config,
    scaled_config,
)
from repro.experiments.backends import CellPolicy
from repro.experiments.orchestrator import (
    CellUpdate,
    ResultCache,
    SweepJob,
    run_pairs,
    run_sweep,
    stream_sweep,
    sweep_product,
)
from repro.experiments.runner import RunResult, build_config, run_workload
from repro.sim.stats import SimStats
from repro.sim.system import System, run_system
from repro.variants import (
    MAIN_VARIANTS,
    MIGRATION_VARIANTS,
    VARIANTS,
    DesignVariant,
    get_variant,
)
from repro.workloads.suites import (
    TABLE_I,
    WORKLOAD_NAMES,
    get_model,
    get_spec,
    representative_four,
)

__version__ = "1.0.0"

__all__ = [
    "CACHELINE_SIZE",
    "CACHELINES_PER_PAGE",
    "PAGE_SIZE",
    "FLASH_TIMINGS",
    "CPUConfig",
    "CXLConfig",
    "FlashGeometry",
    "FlashTiming",
    "OSConfig",
    "SSDConfig",
    "SimConfig",
    "SkyByteConfig",
    "paper_config",
    "scaled_config",
    "CellPolicy",
    "CellUpdate",
    "ResultCache",
    "RunResult",
    "SweepJob",
    "build_config",
    "run_pairs",
    "run_sweep",
    "run_workload",
    "stream_sweep",
    "sweep_product",
    "SimStats",
    "System",
    "run_system",
    "DesignVariant",
    "VARIANTS",
    "MAIN_VARIANTS",
    "MIGRATION_VARIANTS",
    "get_variant",
    "TABLE_I",
    "WORKLOAD_NAMES",
    "get_model",
    "get_spec",
    "representative_four",
    "__version__",
]
