"""Unified command line interface: ``python -m repro <subcommand>``.

Subcommands
===========

``run``
    Simulate one (workload, variant) cell and print its headline stats.
``sweep``
    Run a workload x variant grid through the parallel orchestrator
    (``--jobs N`` worker processes, on-disk result cache) and write the
    per-run stats as JSON.  ``--backend`` picks the execution backend
    (``local`` process pool, ``thread`` pool, or ``distributed`` TCP
    workers named by ``--workers HOST:PORT,...``).  ``--scenario NAME``
    adds phase-DSL scenarios (see ``docs/SCENARIOS.md``) to the grid
    alongside (or instead of) Table I workloads.
``trace``
    Portable trace files (``.sbt``): ``gen`` synthesizes a scenario or
    workload trace (several names build a multi-tenant colocation
    trace), ``capture`` records the stream a live simulation consumes,
    ``inspect`` prints a file's metadata and shape, and ``replay``
    re-simulates a file bit-exactly -- on any execution backend,
    through the same orchestrator/cache pipeline as ``sweep``.
``figures``
    Regenerate the paper's evaluation figures/tables through the shared
    orchestrator, one JSON file per figure.  The registered figure ids
    are the keys of :data:`FIGURES` (run ``repro figures --help`` for
    the list; ``docs/FIGURES.md`` documents each one).
``report``
    Run figure drivers and render their results: per-figure SVG charts
    (dependency-free renderer, no matplotlib) assembled with a
    reproduced-vs-paper fidelity table into ``REPORT.md`` and
    ``REPORT.html``.  The report is rewritten atomically after every
    finished simulation cell, so a long sweep can be watched by
    refreshing the file; a cache-warm re-run rebuilds it without
    re-simulating.
``worker``
    Serve sweep cells to a distributed coordinator over TCP: either
    ``--listen [HOST:]PORT`` (coordinator dials with ``--workers``),
    ``--listen ... --register REGHOST:REGPORT`` (announce to a worker
    registry so coordinators discover this worker with ``--registry``),
    or ``--connect HOST:PORT`` (dial a coordinator started with
    ``--listen``).
``registry``
    Run the worker registry (``--listen [HOST:]PORT``): workers
    announce and heartbeat, coordinators discover the live fleet --
    workers can join and leave mid-sweep (see ``docs/DISTRIBUTED.md``).
``cache``
    Inspect (``stats``), bound (``prune``), locate (``path``) or empty
    (``clear``) the result cache.
``serve``
    Run the always-on sweep coordinator: an HTTP/JSON job API backed by
    a persistent sqlite queue and a sqlite-indexed result cache.
    Submitted sweep/scenario/report jobs survive coordinator restarts
    and are scheduled priority-first with fair share across submitters
    (see ``docs/DISTRIBUTED.md``).
``job``
    Client verbs for a running ``serve`` coordinator: ``submit``,
    ``list``, ``show``, ``events`` (``--follow`` streams NDJSON),
    ``result``, ``wait``, ``cancel``.  The server address comes from
    ``--server`` or ``REPRO_SERVICE``.

Trace length per thread follows ``REPRO_RECORDS`` unless ``--records``
is given; ``REPRO_JOBS`` sets the default worker count;
``REPRO_BENCH_BACKEND``/``REPRO_BENCH_WORKERS``/``REPRO_REGISTRY`` the
default backend; ``REPRO_CELL_TIMEOUT``/``REPRO_RETRY_BUDGET`` (or
``--cell-timeout``/``--retry-budget``) the distributed per-cell
reliability policy; the cache lives in ``.repro_cache/``
(``REPRO_CACHE_DIR`` or ``--cache-dir`` override) and is size-capped by
``REPRO_CACHE_MAX_BYTES`` / ``--cache-max-bytes`` (0 = unbounded).
The CLI enables the result cache by default -- ``--no-cache`` opts out.
``sweep --stream`` emits one JSON line per completed cell (NDJSON) as
long sweeps progress instead of waiting for the final table.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import traceback
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro import bench as bench_mod
from repro.experiments import ablation, colocation, cost, design, migration_study
from repro.experiments import flash_sensitivity, motivation, occupancy, overall
from repro.experiments import qos, sensitivity
from repro.experiments.backends import (
    CellPolicy,
    DistributedBackend,
    resolve_backend,
)
from repro.experiments.orchestrator import (
    ResultCache,
    SweepJob,
    default_jobs,
    run_sweep,
    stream_sweep,
    sweep_product,
)
from repro.experiments.registry import run_registry
from repro.experiments.runner import (
    DEFAULT_SCALE,
    build_config,
    capture_workload,
    default_records,
    run_workload,
)
from repro.experiments.worker import run_worker
from repro.figures.report import ReportBuilder
from repro.figures.trends import append_trend, load_trends
from repro.obs import REGISTRY
from repro.scenarios import (
    build_colocation,
    canonical_scenario,
    get_scenario,
    inspect_tracefile,
    read_meta,
    scenario_names,
    tenants_from_names,
    write_tracefile,
)
from repro.variants import MAIN_VARIANTS, VARIANTS, canonical_variant
from repro.workloads.suites import WORKLOAD_NAMES, canonical_workload

#: Figure/table drivers reachable from ``python -m repro figures``.
FIGURES: Dict[str, Callable] = {
    "fig2": motivation.fig2_dram_vs_cssd,
    "fig3": motivation.fig3_latency_distribution,
    "fig4": motivation.fig4_boundedness,
    "fig5": motivation.fig5_read_locality,
    "fig6": motivation.fig6_write_locality,
    "fig9": design.fig9_threshold_sweep,
    "fig10": design.fig10_scheduling_policies,
    "fig14": overall.fig14_overall,
    "fig15": overall.fig15_thread_scaling,
    "fig16": overall.fig16_request_breakdown,
    "fig17": overall.fig17_amat,
    "fig18": overall.fig18_write_traffic,
    "fig19": sensitivity.fig19_log_size_performance,
    "fig20": sensitivity.fig20_log_size_traffic,
    "fig21": sensitivity.fig21_dram_size,
    "fig22": sensitivity.fig22_flash_latency,
    "fig23": migration_study.fig23_migration_mechanisms,
    "table3": overall.table3_flash_read_latency,
    "colocation": colocation.colocation_study,
    "qos": qos.qos_slo_study,
    "flash-sensitivity": flash_sensitivity.flash_sensitivity_study,
    "cost": cost.cost_effectiveness,
    "prefetch-ablation": ablation.prefetch_ablation,
    "promotion-threshold": ablation.promotion_threshold_sweep,
    "persistence-interval": ablation.persistence_interval_sweep,
    "channel-occupancy": occupancy.channel_occupancy_study,
}


def _split_names(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    """Flatten repeated/comma-separated name options to one list."""
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part for part in value.split(",") if part)
    return out or None


def _cache_from_args(args: argparse.Namespace) -> object:
    """The cache argument for run_sweep: CLI caches by default."""
    if getattr(args, "no_cache", False):
        return False
    max_bytes = getattr(args, "cache_max_bytes", None)
    return ResultCache(getattr(args, "cache_dir", None), max_bytes=max_bytes)


def _policy_from_args(args: argparse.Namespace) -> Optional[CellPolicy]:
    """The per-cell reliability policy, or None for the env default.

    ``--cell-timeout`` / ``--retry-budget`` override the corresponding
    ``REPRO_CELL_TIMEOUT`` / ``REPRO_RETRY_BUDGET`` values; unset
    options keep the environment's (or built-in) defaults.
    """
    timeout = getattr(args, "cell_timeout", None)
    budget = getattr(args, "retry_budget", None)
    if timeout is None and budget is None:
        return None
    base = CellPolicy.from_env()
    return CellPolicy(
        cell_timeout=timeout if timeout is not None else base.cell_timeout,
        retry_budget=budget if budget is not None else base.retry_budget,
    )


def _backend_from_args(args: argparse.Namespace) -> object:
    """The backend for run_sweep, or None for the environment default.

    ``--listen`` builds a coordinator workers dial in to
    (``repro worker --connect``); ``--workers`` dials listening workers;
    ``--registry`` discovers workers through a registry (elastic
    join/leave); ``--backend`` names the backend explicitly
    (``--workers`` or ``--registry`` alone imply ``distributed``).
    """
    listen = getattr(args, "listen", None)
    workers = _split_names(getattr(args, "workers", None))
    registry = getattr(args, "registry", None)
    spec = getattr(args, "backend", None)
    policy = _policy_from_args(args)
    if listen or registry:
        if spec not in (None, "distributed", "registry"):
            raise ValueError(
                f"--listen/--registry are distributed-backend options, "
                f"incompatible with --backend {spec}"
            )
        # Mixed topology: dial the named workers, accept dial-ins, and
        # discover registered workers -- any combination.
        return DistributedBackend(listen=listen, workers=workers or [],
                                  registry=registry, policy=policy)
    if spec is None and not workers:
        return None  # let run_sweep apply REPRO_BENCH_BACKEND / local
    return resolve_backend(spec, jobs=getattr(args, "jobs", None),
                           workers=workers, policy=policy)


def _print_kv(rows: Dict[str, object], indent: str = "  ") -> None:
    width = max(len(k) for k in rows) + 2
    for key, value in rows.items():
        if isinstance(value, float):
            print(f"{indent}{key:<{width}}{value:.6g}")
        else:
            print(f"{indent}{key:<{width}}{value}")


def _print_cache_summary(store: object, backend: object) -> None:
    """The shared tail output of sweep/report: cache and worker hits."""
    if isinstance(store, ResultCache):
        total = store.hits + store.misses
        pct = 100.0 * store.hits / total if total else 0.0
        print(f"cache: {store.hits} hit(s), {store.misses} miss(es) "
              f"({pct:.0f}% hits) in {store.root}")
    else:
        print("cache: disabled")
    if isinstance(backend, DistributedBackend) and backend.remote_cache_hits:
        print(f"workers answered {backend.remote_cache_hits} cell(s) "
              f"from their own cache")


def _progress_printer(verbose: bool) -> Optional[Callable[[SweepJob, str], None]]:
    if not verbose:
        return None

    def report(job: SweepJob, source: str) -> None:
        print(f"  [{source:>5}] {job.label()}", flush=True)

    return report


def _add_device_model_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--device-model", dest="device_model", default=None,
                        choices=["flat", "deep"],
                        help="flash device model: flat horizon estimates or "
                             "the deep geometry/scheduler/GC model (default "
                             "flat; see docs/DEVICE_MODEL.md)")


def _add_common_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--records", type=int, default=None,
                        help="trace records per thread (default REPRO_RECORDS)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default REPRO_JOBS or 1)")
    parser.add_argument("--backend", default=None,
                        choices=["local", "thread", "serial", "distributed",
                                 "registry"],
                        help="execution backend (default REPRO_BENCH_BACKEND "
                             "or local)")
    parser.add_argument("--workers", action="append", default=None,
                        metavar="HOST:PORT,...",
                        help="distributed worker addresses to dial "
                             "(started with: repro worker --listen PORT)")
    parser.add_argument("--listen", default=None, metavar="[HOST:]PORT",
                        help="coordinate distributed workers that dial in "
                             "(started with: repro worker --connect HOST:PORT)")
    parser.add_argument("--registry", default=None, metavar="HOST:PORT",
                        help="discover distributed workers through a registry "
                             "(started with: repro registry --listen PORT); "
                             "workers may join/leave mid-sweep")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-attempt cell timeout on distributed workers "
                             "(default REPRO_CELL_TIMEOUT; 0 = unlimited)")
    parser.add_argument("--retry-budget", type=int, default=None, metavar="N",
                        help="attempts per cell before the sweep fails "
                             "(default REPRO_RETRY_BUDGET or 3)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default .repro_cache)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        help="evict LRU cache entries beyond this size "
                             "(default REPRO_CACHE_MAX_BYTES; 0 = unbounded)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")


def _bad_name(exc: KeyError) -> int:
    """Report an unknown workload/variant name and return exit code 2.

    Only name lookups are caught this way -- a KeyError escaping from
    deeper in a driver is a bug and must traceback, not masquerade as
    bad user input.
    """
    print(f"error: {exc.args[0]}", file=sys.stderr)
    return 2


def _bad_backend(exc: ValueError) -> int:
    print(f"error: {exc}", file=sys.stderr)
    return 2


def cmd_run(args: argparse.Namespace) -> int:
    try:
        job = SweepJob.make(
            args.workload,
            args.variant,
            records_per_thread=args.records,
            threads=args.threads,
            scale=args.scale,
            timing=args.timing,
            seed=args.seed,
            device_model=args.device_model,
        )
    except KeyError as exc:
        return _bad_name(exc)
    try:
        backend = _backend_from_args(args)
    except ValueError as exc:
        return _bad_backend(exc)
    if args.timeline:
        # Timeline tracing forces the scalar engine path and records
        # per-request spans, so the cell runs in-process and uncached to
        # keep cache contents timing-model-pure.
        result = run_workload(job.workload, job.variant,
                              timeline=args.timeline, **dict(job.params))
        print(f"{result.workload} / {result.variant} "
              f"({result.threads} threads, "
              f"{result.config.ssd.timing.name} flash)")
        _print_kv(result.stats.summary())
        print(f"wrote timeline {args.timeline} "
              f"(load in https://ui.perfetto.dev or chrome://tracing)")
        if args.json:
            Path(args.json).write_text(json.dumps(result.to_dict(), indent=2))
            print(f"wrote {args.json}")
        return 0
    result = run_sweep([job], jobs=args.jobs or 1, cache=_cache_from_args(args),
                       backend=backend, policy=_policy_from_args(args))[0]
    print(f"{result.workload} / {result.variant} "
          f"({result.threads} threads, {result.config.ssd.timing.name} flash)")
    _print_kv(result.stats.summary())
    if args.json:
        Path(args.json).write_text(json.dumps(result.to_dict(), indent=2))
        print(f"wrote {args.json}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    try:
        scenarios = [canonical_scenario(s)
                     for s in (_split_names(args.scenario) or [])]
        named = _split_names(args.workloads)
        workloads = [canonical_workload(w) for w in (named or [])]
        if not workloads and not scenarios:
            workloads = list(WORKLOAD_NAMES)
        workloads += scenarios
        variants = [canonical_variant(v)
                    for v in (_split_names(args.variants) or MAIN_VARIANTS)]
    except KeyError as exc:
        return _bad_name(exc)
    try:
        backend = _backend_from_args(args)
    except ValueError as exc:
        return _bad_backend(exc)
    records = args.records or default_records()
    jobs = args.jobs if args.jobs is not None else default_jobs()
    store = _cache_from_args(args)
    specs = sweep_product(
        workloads,
        variants,
        records_per_thread=records,
        threads=args.threads,
        scale=args.scale,
        timing=args.timing,
        seed=args.seed,
        device_model=args.device_model,
    )
    backend_label = backend.describe() if backend is not None else "default"
    print(f"sweep: {len(workloads)} workload(s) x {len(variants)} variant(s) "
          f"= {len(specs)} cell(s), {records} records/thread, jobs={jobs}, "
          f"backend={backend_label}")
    policy = _policy_from_args(args)
    if args.stream:
        # Streaming mode: one JSON line per completed cell (NDJSON), in
        # completion order, so long sweeps can be tailed/piped live.
        results = [None] * len(specs)
        for update in stream_sweep(specs, jobs=jobs, cache=store,
                                   backend=backend, policy=policy):
            for i in update.positions:
                results[i] = update.result
            r = update.result
            print(json.dumps({
                "event": "cell",
                "workload": r.workload,
                "variant": r.variant,
                "source": update.source,
                "completed": update.completed,
                "total": update.total,
                "exec_ms": r.stats.execution_ns / 1e6,
                "ipns": r.stats.throughput_ipns,
            }, sort_keys=True), flush=True)
    else:
        results = run_sweep(specs, jobs=jobs, cache=store, backend=backend,
                            progress=_progress_printer(not args.quiet),
                            policy=policy)

    header = f"{'workload':<12}{'variant':<16}{'threads':>8}" \
             f"{'exec_ms':>12}{'ipns':>10}{'ctx_sw':>8}"
    print(header)
    for r in results:
        print(f"{r.workload:<12}{r.variant:<16}{r.threads:>8}"
              f"{r.stats.execution_ns / 1e6:>12.3f}"
              f"{r.stats.throughput_ipns:>10.4f}"
              f"{r.stats.context_switches:>8}")

    _print_cache_summary(store, backend)

    if args.output:
        payload = {
            "workloads": workloads,
            "variants": variants,
            "records_per_thread": records,
            "jobs": jobs,
            "backend": backend_label,
            "results": [r.to_dict() for r in results],
        }
        if isinstance(store, ResultCache):
            payload["cache"] = {"hits": store.hits, "misses": store.misses,
                                "dir": str(store.root)}
        Path(args.output).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.output}")
    return 0


def _figure_kwargs(
    fn: Callable,
    args: argparse.Namespace,
    backend: object,
    cache: object = None,
    progress: Optional[Callable[[SweepJob, str], None]] = None,
) -> Dict[str, object]:
    """The subset of CLI options this figure driver understands.

    ``cache`` lets a multi-figure command share one store (so its
    hit/miss counters cover the whole run); ``progress`` reaches every
    driver that sweeps through the orchestrator (the replay-based
    figures 5/6 have no cells to report).
    """
    accepted = inspect.signature(fn).parameters
    candidates: Dict[str, object] = {
        "workloads": _split_names(args.workloads),
        "records": args.records,
        "jobs": args.jobs,
        # False (from --no-cache) must reach the driver explicitly,
        # otherwise resolve_cache would fall back to REPRO_CACHE.
        "cache": cache if cache is not None else _cache_from_args(args),
        "backend": backend,
        "progress": progress,
        "policy": _policy_from_args(args),
    }
    return {
        name: value
        for name, value in candidates.items()
        if name in accepted and value is not None
    }


def cmd_figures(args: argparse.Namespace) -> int:
    try:
        if args.workloads:
            args.workloads = [canonical_workload(w)
                              for w in _split_names(args.workloads)]
    except KeyError as exc:
        return _bad_name(exc)
    names = _split_names(args.names) or sorted(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"available: {', '.join(sorted(FIGURES))}", file=sys.stderr)
        return 2
    # One backend for all figures: a --listen coordinator binds its port
    # exactly once, and bad backend arguments fail before any simulation.
    try:
        backend = _backend_from_args(args)
    except ValueError as exc:
        return _bad_backend(exc)
    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    progress = _progress_printer(not args.quiet)
    try:
        for name in names:
            fn = FIGURES[name]
            print(f"== {name}: {fn.__module__.rsplit('.', 1)[-1]}.{fn.__name__}")
            data = fn(**_figure_kwargs(fn, args, backend, progress=progress))
            path = out_dir / f"{name}.json"
            path.write_text(json.dumps(data, indent=2, default=str))
            print(f"   wrote {path}")
    finally:
        if backend is not None:
            backend.close()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render figures to SVG and assemble the paper-fidelity report."""
    try:
        if args.workloads:
            args.workloads = [canonical_workload(w)
                              for w in _split_names(args.workloads)]
    except KeyError as exc:
        return _bad_name(exc)
    names = (_split_names(args.names) or []) + (_split_names(args.figures) or [])
    names = list(dict.fromkeys(names)) or sorted(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"available: {', '.join(sorted(FIGURES))}", file=sys.stderr)
        return 2
    try:
        backend = _backend_from_args(args)
    except ValueError as exc:
        return _bad_backend(exc)
    out_dir = Path(args.output)
    builder = ReportBuilder(out_dir, names)
    printer = _progress_printer(not args.quiet)

    def progress(job: SweepJob, source: str) -> None:
        if printer is not None:
            printer(job, source)
        builder.cell_completed(job, source)

    store = _cache_from_args(args)
    failures: List[str] = []
    try:
        for name in names:
            fn = FIGURES[name]
            print(f"== {name}: {fn.__module__.rsplit('.', 1)[-1]}.{fn.__name__}")
            builder.figure_started(name)
            kwargs = _figure_kwargs(fn, args, backend, cache=store,
                                    progress=progress)
            # One umbrella per figure: a failure anywhere -- driver,
            # JSON write, shaping, SVG render, fidelity scoring -- is
            # recorded as that figure's FAILED section and the report
            # moves on to the next figure.
            try:
                data = fn(**kwargs)
                (out_dir / f"{name}.json").write_text(
                    json.dumps(data, indent=2, default=str)
                )
                builder.figure_finished(name, data)
            except Exception:  # noqa: BLE001 - recorded, reported, non-zero exit
                builder.figure_failed(name, traceback.format_exc())
                failures.append(name)
                print(f"   FAILED (see {out_dir / 'REPORT.md'})",
                      file=sys.stderr)
                continue
            rendered = ", ".join(f for f, _svg in builder.svg_files[name])
            print(f"   rendered {rendered or 'report section'}")
    finally:
        if backend is not None:
            backend.close()
        builder.render()
    if not args.no_trends:
        trends_path = Path(args.trends or os.environ.get("REPRO_TRENDS")
                           or "benchmarks/trends.ndjson")
        speed_path = out_dir / "BENCH_speed.json"
        if not speed_path.exists():
            speed_path = Path("BENCH_speed.json")
        row = append_trend(trends_path,
                           fidelity_path=out_dir / "BENCH_fidelity.json",
                           speed_path=speed_path)
        if row is not None:
            builder.trend_rows = load_trends(trends_path)
            builder.render()
            print(f"trends: appended commit {row.get('commit') or '?'} to "
                  f"{trends_path} ({len(builder.trend_rows)} row(s))")
    _print_cache_summary(store, backend)
    print(f"report: {out_dir / 'REPORT.md'} + {out_dir / 'REPORT.html'}")
    if failures:
        print(f"error: {len(failures)} figure(s) failed: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    # Workers share the coordinator's content-addressed cache when
    # pointed at the same directory (e.g. a shared filesystem).
    cache = (
        None
        if args.no_cache
        else ResultCache(args.cache_dir, max_bytes=args.cache_max_bytes)
    )
    try:
        return run_worker(
            connect=args.connect,
            listen=args.listen,
            cache=cache,
            retries=args.retry,
            retry_delay=args.retry_delay,
            once=args.once,
            register=args.register,
            announce=args.announce,
            heartbeat=args.heartbeat,
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_registry(args: argparse.Namespace) -> int:
    try:
        return run_registry(args.listen, stale_after=args.stale_after)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_cache(args: argparse.Namespace) -> int:
    store = ResultCache(args.cache_dir, max_bytes=args.max_bytes)
    if args.action == "path":
        print(store.root)
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
        return 0
    if args.action == "prune":
        if store.max_bytes <= 0:
            print("error: prune needs a size cap "
                  "(--max-bytes or REPRO_CACHE_MAX_BYTES)", file=sys.stderr)
            return 2
        removed = store.prune()
        stats = store.stats()
        print(f"evicted {removed} entr{'y' if removed == 1 else 'ies'} from "
              f"{store.root} ({stats['size_bytes']} bytes kept, "
              f"cap {store.max_bytes})")
        return 0
    stats = store.stats()
    if getattr(args, "json", False):
        payload = dict(stats)
        payload["cache_dir"] = str(store.root)
        remote_hits = REGISTRY.value("repro_remote_cache_hits_total")
        payload["remote_cache_hits"] = int(remote_hits or 0)
        payload["metrics"] = REGISTRY.snapshot()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"cache dir: {store.root}")
    print(f"entries:   {stats['entries']}")
    print(f"size:      {stats['size_bytes'] / 1024:.1f} KiB")
    cap = f"{stats['max_bytes']} bytes" if stats["max_bytes"] else "unbounded"
    print(f"cap:       {cap}")
    print(f"lifetime:  {stats['hits']} hit(s), {stats['misses']} miss(es), "
          f"{stats['puts']} put(s), {stats['evictions']} eviction(s)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Speed benchmarking: emit BENCH_speed.json, optionally gate on the
    committed baseline (see :mod:`repro.bench`)."""
    return bench_mod.run_from_args(args)


def _trace_gen_meta(names: Sequence[str], args: argparse.Namespace,
                    threads_per_tenant: int):
    """Build (traces, meta) for ``trace gen``: one name is a solo trace,
    several names become colocated tenants in disjoint partitions."""
    records = args.records or default_records()
    scale = args.scale or DEFAULT_SCALE
    seed = args.seed if args.seed is not None else 42
    qos_mode = getattr(args, "qos", None)
    if qos_mode and len(names) == 1:
        raise ValueError("--qos needs a multi-tenant (colocation) trace; "
                         "pass several scenario names")
    device_model = getattr(args, "device_model", None)
    if len(names) == 1:
        scenario = get_scenario(names[0])
        threads = threads_per_tenant
        traces = scenario.generate(threads, records, scale=scale, seed=seed)
        config = build_config(scale=scale, seed=seed, threads=threads,
                              device_model=device_model)
        meta = {
            "kind": "scenario",
            "workload": scenario.name,
            "scenario": scenario.to_dict(),
            "seed": seed,
            "scale": scale,
            "threads": threads,
            "records_per_thread": records,
            "mlp": scenario.mlp,
            "config": config.to_dict(),
        }
        return traces, meta
    tenants = tenants_from_names(names, threads=threads_per_tenant, seed=seed)
    plan = build_colocation(tenants, scale=scale, records_per_thread=records)
    config = build_config(scale=scale, seed=seed, threads=len(plan.traces),
                          device_model=device_model)
    if qos_mode:
        # Bake the QoS knobs into the embedded config: replay then
        # reconstructs the exact same isolation behaviour on any backend
        # (the qos-smoke CI job byte-compares local vs distributed).
        config = config.replace(qos=plan.qos_config(qos_mode))
    meta = {"kind": "colocation",
            "workload": "+".join(t.name for t in tenants),
            "seed": seed,
            "config": config.to_dict()}
    meta.update(plan.meta())
    return plan.traces, meta


def cmd_trace(args: argparse.Namespace) -> int:
    try:
        if args.trace_cmd == "gen":
            names = _split_names(args.names)
            traces, meta = _trace_gen_meta(names, args, args.threads)
            write_tracefile(args.output, traces, meta)
            records = sum(len(t) for t in traces)
            print(f"wrote {args.output}: {meta['workload']} "
                  f"({len(traces)} thread(s), {records} record(s), "
                  f"seed {meta['seed']})")
            return 0
        if args.trace_cmd == "inspect":
            info = inspect_tracefile(args.file)
            if args.json:
                print(json.dumps(info, indent=2, sort_keys=True))
                return 0
            meta = info["meta"]
            _print_kv({
                "file": info["path"],
                "bytes": info["file_bytes"],
                "kind": meta.get("kind", "?"),
                "workload": meta.get("workload", "?"),
                "threads": info["threads"],
                "records": info["records"],
                "seed": meta.get("seed", "?"),
                "scale": meta.get("scale", "?"),
            }, indent="")
            header = f"{'thread':>6}{'records':>10}{'writes':>9}{'pages':>8}"
            print(header)
            for tid, row in enumerate(info["per_thread"]):
                print(f"{tid:>6}{row['records']:>10}"
                      f"{row['write_ratio']:>9.3f}{row['pages']:>8}")
            return 0
        if args.trace_cmd == "capture":
            options = {
                "records_per_thread": args.records,
                "threads": args.threads,
                "scale": args.scale,
                "seed": args.seed,
                "device_model": getattr(args, "device_model", None),
            }
            result = capture_workload(
                args.workload, args.variant, args.output,
                **{k: v for k, v in options.items() if v is not None},
            )
            print(f"captured {args.output} from live run "
                  f"{result.workload}/{result.variant} "
                  f"({result.threads} thread(s))")
            _print_kv(result.stats.summary())
            return 0
        # replay: one SweepJob keyed on the file content, so any backend
        # (and the result cache) can serve it like a normal sweep cell.
        meta = read_meta(args.file)
        variant = args.variant or meta.get("variant") or "Base-CSSD"
        job = SweepJob.make(str(meta.get("workload") or "trace"), variant,
                            trace=args.file)
        backend = _backend_from_args(args)
        result = run_sweep(
            [job], jobs=args.jobs or 1, cache=_cache_from_args(args),
            backend=backend, policy=_policy_from_args(args),
        )[0]
        print(f"replayed {args.file}: {result.workload} / {result.variant} "
              f"({result.threads} thread(s))")
        _print_kv(result.stats.summary())
        if args.json:
            Path(args.json).write_text(
                json.dumps(result.to_dict(), indent=2, sort_keys=True)
            )
            print(f"wrote {args.json}")
        return 0
    except KeyError as exc:
        return _bad_name(exc)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


#: Default ``repro serve`` bind / ``repro job`` dial address.
DEFAULT_SERVICE_ADDR = "127.0.0.1:8642"


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on coordinator until interrupted."""
    from repro.service.api import ServiceAPI
    from repro.service.coordinator import SweepService

    host, _, port = (args.http or DEFAULT_SERVICE_ADDR).rpartition(":")
    host = host or "127.0.0.1"
    service = SweepService(
        state_dir=args.state_dir,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        workers=_split_names(args.workers),
        listen=args.listen,
        registry=args.registry,
        jobs=args.jobs,
        policy=_policy_from_args(args),
        max_active=args.max_active,
        log=sys.stdout,
    )
    service.start()
    api = ServiceAPI(service, host=host, port=int(port))
    print(f"serve: listening on http://{api.address[0]}:{api.address[1]} "
          f"(backend: {service.backend_label}, state: {service.state_dir})",
          flush=True)
    try:
        api.serve_forever()
    except KeyboardInterrupt:
        print("serve: interrupted, shutting down", flush=True)
    finally:
        api.close()
        service.close()
    return 0


def cmd_job(args: argparse.Namespace) -> int:
    """Talk to a running ``repro serve`` coordinator."""
    from repro.service.client import ServiceClient, ServiceError

    server = args.server or os.environ.get("REPRO_SERVICE",
                                           DEFAULT_SERVICE_ADDR)
    client = ServiceClient(server)
    try:
        return _run_job_verb(client, args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_job_verb(client: object, args: argparse.Namespace) -> int:
    verb = args.job_cmd
    if verb == "submit":
        spec: Dict[str, object] = {}
        if args.kind == "report":
            if args.figures:
                spec["figures"] = _split_names(args.figures)
        elif args.kind == "scenario":
            spec["names"] = _split_names(args.names) or []
        if args.workloads:
            spec["workloads"] = _split_names(args.workloads)
        if args.kind == "sweep" and args.scenario:
            spec["scenarios"] = _split_names(args.scenario)
        if args.variants:
            spec["variants"] = _split_names(args.variants)
        for knob in ("records", "threads", "scale", "timing", "seed", "jobs"):
            value = getattr(args, knob, None)
            if value is not None:
                spec[knob] = value
        submitter = (args.submitter or os.environ.get("USER")
                     or "anonymous")
        job = client.submit(args.kind, spec, submitter=submitter,
                            priority=args.priority)
        print(f"job {job['id']} ({job['kind']}) {job['state']}")
        if not args.follow:
            return 0
        for event in client.stream(job["id"]):
            print(json.dumps(event), flush=True)
        final = client.job(job["id"])
        return 0 if final["state"] == "done" else 1
    if verb == "list":
        jobs = client.jobs(state=args.state, submitter=args.submitter)
        for job in jobs:
            print(f"{job['id']:>5}  {job['state']:<9} {job['kind']:<8} "
                  f"prio={job['priority']:<3} {job['submitter']}")
        if not jobs:
            print("no jobs")
        return 0
    if verb == "show":
        print(json.dumps(client.job(args.id), indent=2))
        return 0
    if verb == "events":
        if args.follow:
            for event in client.stream(args.id, after=args.after):
                print(json.dumps(event), flush=True)
        else:
            for event in client.events(args.id, after=args.after):
                print(json.dumps(event))
        return 0
    if verb == "result":
        payload = client.result(args.id)
        if args.output:
            Path(args.output).write_text(json.dumps(payload, indent=2))
            print(f"wrote {args.output}")
        else:
            print(json.dumps(payload, indent=2))
        return 0
    if verb == "wait":
        job = client.wait(args.id, timeout=args.timeout)
        print(f"job {job['id']} {job['state']}")
        if job["state"] == "failed" and job.get("error"):
            print(job["error"], file=sys.stderr)
        return 0 if job["state"] == "done" else 1
    if verb == "cancel":
        outcome = client.cancel(args.id)
        print(f"job {outcome['id']} {outcome['state']}")
        return 0
    raise AssertionError(f"unhandled job verb {verb!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SkyByte reproduction: parallel experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one (workload, variant) cell")
    p_run.add_argument("workload", help=f"one of {', '.join(WORKLOAD_NAMES)}")
    p_run.add_argument("variant", help=f"one of {', '.join(VARIANTS)}")
    p_run.add_argument("--threads", type=int, default=None)
    p_run.add_argument("--scale", type=int, default=None)
    p_run.add_argument("--timing", default=None,
                       choices=["ULL", "ULL2", "SLC", "MLC"])
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--json", default=None, help="write RunResult JSON here")
    p_run.add_argument("--timeline", default=None, metavar="OUT.json",
                       help="write a sim-time Chrome-trace-event/Perfetto "
                            "timeline of the run here (forces the scalar "
                            "engine path and bypasses the result cache; "
                            "see docs/OBSERVABILITY.md)")
    _add_device_model_option(p_run)
    _add_common_run_options(p_run)
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="run a workload x variant grid in parallel"
    )
    p_sweep.add_argument("--workloads", action="append", default=None,
                         help="comma-separated or repeated (default: all)")
    p_sweep.add_argument("--scenario", action="append", default=None,
                         metavar="NAME,...",
                         help="phase-DSL scenarios to sweep alongside (or "
                              "instead of) Table I workloads; see "
                              "docs/SCENARIOS.md for the registry")
    p_sweep.add_argument("--variants", action="append", default=None,
                         help="comma-separated or repeated (default: Fig.14 set)")
    p_sweep.add_argument("--threads", type=int, default=None)
    p_sweep.add_argument("--scale", type=int, default=None)
    p_sweep.add_argument("--timing", default=None,
                         choices=["ULL", "ULL2", "SLC", "MLC"])
    p_sweep.add_argument("--seed", type=int, default=None)
    p_sweep.add_argument("--output", "-o", default=None,
                         help="write results JSON here")
    p_sweep.add_argument("--stream", action="store_true",
                         help="emit one JSON line per completed cell "
                              "(NDJSON), in completion order")
    _add_device_model_option(p_sweep)
    _add_common_run_options(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_fig = sub.add_parser(
        "figures", help="regenerate evaluation figures through the pool"
    )
    p_fig.add_argument("names", nargs="*", default=None,
                       help=f"figures to run (default all): "
                            f"{', '.join(sorted(FIGURES))}")
    p_fig.add_argument("--workloads", action="append", default=None)
    p_fig.add_argument("--output", "-o", default="figures_out",
                       help="directory for per-figure JSON (default figures_out)")
    _add_common_run_options(p_fig)
    p_fig.set_defaults(func=cmd_figures)

    p_rep = sub.add_parser(
        "report",
        help="render figures to SVG and build REPORT.md/REPORT.html "
             "with a reproduced-vs-paper fidelity table",
    )
    p_rep.add_argument("names", nargs="*", default=None,
                       help=f"figures to include (default all): "
                            f"{', '.join(sorted(FIGURES))}")
    p_rep.add_argument("--figures", action="append", default=None,
                       metavar="NAME,...",
                       help="comma-separated figure ids (alternative to "
                            "the positional list)")
    p_rep.add_argument("--workloads", action="append", default=None,
                       help="restrict sweeps to these workloads "
                            "(comma-separated or repeated)")
    p_rep.add_argument("--output", "-o", default="report_out",
                       help="directory for REPORT.md/REPORT.html, SVGs and "
                            "per-figure JSON (default report_out)")
    p_rep.add_argument("--trends", default=None, metavar="NDJSON",
                       help="trend history file appended after the report "
                            "(default $REPRO_TRENDS or "
                            "benchmarks/trends.ndjson)")
    p_rep.add_argument("--no-trends", action="store_true",
                       help="skip appending to the trend history")
    _add_common_run_options(p_rep)
    p_rep.set_defaults(func=cmd_report)

    p_worker = sub.add_parser(
        "worker", help="serve sweep cells to a distributed coordinator"
    )
    mode = p_worker.add_mutually_exclusive_group(required=True)
    mode.add_argument("--connect", default=None, metavar="HOST:PORT",
                      help="dial a coordinator started with --listen")
    mode.add_argument("--listen", default=None, metavar="[HOST:]PORT",
                      help="bind and wait for coordinators (--workers side); "
                           "port 0 picks a free port, printed on stdout")
    p_worker.add_argument("--cache-dir", default=None,
                          help="share this result cache directory")
    p_worker.add_argument("--cache-max-bytes", type=int, default=None)
    p_worker.add_argument("--no-cache", action="store_true",
                          help="run every cell, even if cached")
    p_worker.add_argument("--once", action="store_true",
                          help="exit after serving one coordinator connection")
    p_worker.add_argument("--retry", type=int, default=40,
                          help="--connect attempts before giving up")
    p_worker.add_argument("--retry-delay", type=float, default=0.25)
    p_worker.add_argument("--register", default=None, metavar="HOST:PORT",
                          help="announce this worker to a registry "
                               "(requires --listen; coordinators then use "
                               "--registry instead of --workers)")
    p_worker.add_argument("--announce", default=None, metavar="HOST:PORT",
                          help="address to announce to the registry when the "
                               "bound one is not dialable (0.0.0.0, NAT)")
    p_worker.add_argument("--heartbeat", type=float, default=2.0,
                          metavar="SECONDS",
                          help="registry heartbeat interval (default 2s)")
    p_worker.set_defaults(func=cmd_worker)

    p_registry = sub.add_parser(
        "registry",
        help="run the worker registry (discovery + liveness for "
             "elastic distributed sweeps)",
    )
    p_registry.add_argument("--listen", required=True, metavar="[HOST:]PORT",
                            help="bind address; port 0 picks a free port, "
                                 "printed on stdout")
    p_registry.add_argument("--stale-after", type=float, default=6.0,
                            metavar="SECONDS",
                            help="drop a worker after this long without a "
                                 "heartbeat (default 6s)")
    p_registry.set_defaults(func=cmd_registry)

    p_trace = sub.add_parser(
        "trace",
        help="generate, capture, inspect and replay portable .sbt traces",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_cmd", required=True)

    p_gen = trace_sub.add_parser(
        "gen",
        help="synthesize a scenario/workload trace (several names build "
             "a multi-tenant colocation trace)",
    )
    p_gen.add_argument("names", nargs="+",
                       help=f"scenario or workload name(s); scenarios: "
                            f"{', '.join(scenario_names())}")
    p_gen.add_argument("--output", "-o", required=True, metavar="FILE.sbt")
    p_gen.add_argument("--threads", type=int, default=2,
                       help="threads (per tenant when colocating; default 2)")
    p_gen.add_argument("--records", type=int, default=None,
                       help="records per thread (default REPRO_RECORDS)")
    p_gen.add_argument("--scale", type=int, default=None)
    p_gen.add_argument("--seed", type=int, default=None)
    p_gen.add_argument("--qos", default=None, metavar="MODE",
                       choices=("wfq", "priority", "log-partition",
                                "cache-quota"),
                       help="embed a tenant-QoS config in the colocation "
                            "trace (wfq, priority, log-partition, "
                            "cache-quota; see docs/QOS.md)")
    _add_device_model_option(p_gen)
    p_gen.set_defaults(func=cmd_trace)

    p_inspect = trace_sub.add_parser(
        "inspect", help="print a tracefile's metadata and per-thread shape"
    )
    p_inspect.add_argument("file")
    p_inspect.add_argument("--json", action="store_true",
                           help="emit the full inspection as JSON")
    p_inspect.set_defaults(func=cmd_trace)

    p_capture = trace_sub.add_parser(
        "capture",
        help="run one simulation cell and capture the stream it consumes",
    )
    p_capture.add_argument("workload", help="workload or scenario name")
    p_capture.add_argument("variant", help=f"one of {', '.join(VARIANTS)}")
    p_capture.add_argument("--output", "-o", required=True, metavar="FILE.sbt")
    p_capture.add_argument("--records", type=int, default=None)
    p_capture.add_argument("--threads", type=int, default=None)
    p_capture.add_argument("--scale", type=int, default=None)
    p_capture.add_argument("--seed", type=int, default=None)
    _add_device_model_option(p_capture)
    p_capture.set_defaults(func=cmd_trace)

    p_replay = trace_sub.add_parser(
        "replay",
        help="re-simulate a tracefile bit-exactly (any backend, cached)",
    )
    p_replay.add_argument("file")
    p_replay.add_argument("--variant", default=None,
                          help="design variant (default: the file's, "
                               "else Base-CSSD)")
    p_replay.add_argument("--json", default=None,
                          help="write the RunResult JSON here")
    _add_common_run_options(p_replay)
    p_replay.set_defaults(func=cmd_trace)

    p_cache = sub.add_parser(
        "cache", help="inspect, bound, or clear the result cache"
    )
    p_cache.add_argument("action", nargs="?", default="stats",
                         choices=["stats", "prune", "clear", "path"])
    p_cache.add_argument("--cache-dir", default=None)
    p_cache.add_argument("--json", action="store_true",
                         help="machine-readable stats (store counters plus "
                              "the in-process metrics registry, including "
                              "remote cache hits)")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="size cap for stats display and prune "
                              "(default REPRO_CACHE_MAX_BYTES)")
    p_cache.set_defaults(func=cmd_cache)

    p_bench = sub.add_parser(
        "bench",
        help="measure figure-driver throughput and emit BENCH_speed.json",
    )
    bench_mod.add_arguments(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run the always-on sweep coordinator (HTTP job API + "
             "persistent sqlite queue)",
    )
    p_serve.add_argument("--http", default=None, metavar="[HOST:]PORT",
                         help=f"HTTP API bind address (default "
                              f"{DEFAULT_SERVICE_ADDR}; port 0 picks a free "
                              f"port, printed on stdout)")
    p_serve.add_argument("--state-dir", default=".repro_service",
                         help="job queue + artifacts directory "
                              "(default .repro_service)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="result cache directory (sqlite-indexed)")
    p_serve.add_argument("--cache-max-bytes", type=int, default=None)
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="local worker processes per sweep "
                              "(default REPRO_JOBS or 1)")
    p_serve.add_argument("--workers", action="append", default=None,
                         metavar="HOST:PORT,...",
                         help="distributed worker addresses to dial")
    p_serve.add_argument("--listen", default=None, metavar="[HOST:]PORT",
                         help="accept dial-in workers "
                              "(repro worker --connect)")
    p_serve.add_argument("--registry", default=None, metavar="HOST:PORT",
                         help="discover workers through a registry")
    p_serve.add_argument("--max-active", type=int, default=1,
                         help="jobs run concurrently (default 1)")
    p_serve.add_argument("--cell-timeout", type=float, default=None)
    p_serve.add_argument("--retry-budget", type=int, default=None)
    p_serve.set_defaults(func=cmd_serve)

    p_job = sub.add_parser(
        "job", help="submit to / inspect a running serve coordinator"
    )
    p_job.add_argument("--server", default=None, metavar="URL",
                       help=f"coordinator address (default REPRO_SERVICE "
                            f"or {DEFAULT_SERVICE_ADDR})")
    job_sub = p_job.add_subparsers(dest="job_cmd", required=True)

    p_submit = job_sub.add_parser("submit", help="queue a job")
    p_submit.add_argument("kind", nargs="?", default="sweep",
                          choices=["sweep", "scenario", "report"])
    p_submit.add_argument("names", nargs="*", default=None,
                          help="scenario names (kind=scenario)")
    p_submit.add_argument("--workloads", action="append", default=None)
    p_submit.add_argument("--scenario", action="append", default=None,
                          help="scenarios to sweep alongside workloads "
                               "(kind=sweep)")
    p_submit.add_argument("--variants", action="append", default=None)
    p_submit.add_argument("--figures", action="append", default=None,
                          help="figure ids (kind=report; default all)")
    p_submit.add_argument("--records", type=int, default=None)
    p_submit.add_argument("--threads", type=int, default=None)
    p_submit.add_argument("--scale", type=int, default=None)
    p_submit.add_argument("--timing", default=None,
                          choices=["ULL", "ULL2", "SLC", "MLC"])
    p_submit.add_argument("--seed", type=int, default=None)
    p_submit.add_argument("--jobs", type=int, default=None)
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs first (default 0)")
    p_submit.add_argument("--submitter", default=None,
                          help="fair-share identity (default $USER)")
    p_submit.add_argument("--follow", action="store_true",
                          help="stream events until the job finishes")
    p_submit.set_defaults(func=cmd_job)

    p_jlist = job_sub.add_parser("list", help="list jobs")
    p_jlist.add_argument("--state", default=None,
                         choices=["queued", "running", "done", "failed",
                                  "cancelled"])
    p_jlist.add_argument("--submitter", default=None)
    p_jlist.set_defaults(func=cmd_job)

    p_jshow = job_sub.add_parser("show", help="print one job as JSON")
    p_jshow.add_argument("id", type=int)
    p_jshow.set_defaults(func=cmd_job)

    p_jev = job_sub.add_parser("events", help="print a job's event log")
    p_jev.add_argument("id", type=int)
    p_jev.add_argument("--after", type=int, default=0,
                       help="only events with seq > N")
    p_jev.add_argument("--follow", action="store_true",
                       help="stream NDJSON until the job finishes")
    p_jev.set_defaults(func=cmd_job)

    p_jres = job_sub.add_parser("result", help="fetch a done job's payload")
    p_jres.add_argument("id", type=int)
    p_jres.add_argument("--output", "-o", default=None)
    p_jres.set_defaults(func=cmd_job)

    p_jwait = job_sub.add_parser("wait", help="block until a job finishes")
    p_jwait.add_argument("id", type=int)
    p_jwait.add_argument("--timeout", type=float, default=3600.0)
    p_jwait.set_defaults(func=cmd_job)

    p_jcancel = job_sub.add_parser("cancel", help="cancel a job")
    p_jcancel.add_argument("id", type=int)
    p_jcancel.set_defaults(func=cmd_job)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
