"""AstriFlash-CXL baseline (§VI-H).

AstriFlash (HPCA'23) treats host DRAM as a *hardware-managed,
set-associative* cache of the SSD at 4 KB page granularity and hides SSD
I/O latency with cheap user-level thread switches triggered by host DRAM
misses.  The paper applies it on top of Base-CSSD ("AstriFlash-CXL") and
contrasts it with SkyByte's approach: AstriFlash "still treats the SSD as
a black box and manages it at page granularity", relies on on-demand
paging for every miss, and its set-associative host cache suffers
conflict misses where SkyByte's promotion-based scheme uses host DRAM as
a fully associative pool of only-hot pages.

The controller below wraps an inner :class:`BaseCSSDController`: host
cache hits cost a host-DRAM access and never touch the link; misses fetch
the whole 4 KB page over CXL from the inner SSD and always carry a
``delay_hint`` so the core performs a *user-level* switch (the host knows
a host-DRAM miss means microsecond-scale latency).
"""

from __future__ import annotations

from repro.config import PAGE_SIZE, SimConfig
from repro.cxl.link import CXLLink
from repro.cxl.protocol import M2SOpcode, MemRequest
from repro.sim.engine import Engine
from repro.sim.stats import HOST_DRAM, SimStats
from repro.ssd.base_cache import FULL_MASK, SetAssociativePageCache
from repro.ssd.base_controller import BaseCSSDController
from repro.ssd.interface import AccessResult


class AstriFlashController:
    """Host-DRAM-as-cache organisation in front of a Base-CSSD device."""

    #: Set-associativity of the hardware-managed host cache.
    HOST_CACHE_WAYS = 8

    #: Tells the system model that CXL link costs are handled here.
    handles_link = True

    def __init__(
        self,
        config: SimConfig,
        engine: Engine,
        stats: SimStats,
        link: CXLLink,
    ) -> None:
        self._config = config
        self._stats = stats
        self._link = link
        self.inner = BaseCSSDController(config, engine, stats, ctx_switch_enabled=False)
        host_pages = max(1, config.cpu.host_promote_budget_bytes // PAGE_SIZE)
        self.host_cache = SetAssociativePageCache(host_pages, self.HOST_CACHE_WAYS)
        self.user_level_switch_ns = config.os.user_level_switch_ns

    # expose the FTL and flash for preconditioning/inspection
    @property
    def ftl(self):
        return self.inner.ftl

    @property
    def flash(self):
        return self.inner.flash

    def access(self, request: MemRequest, now: float) -> AccessResult:
        lpa, line = request.page, request.line_offset
        dram_ns = self._config.cpu.dram_latency_ns
        entry = self.host_cache.lookup(lpa, touch_line=line)
        if entry is not None:
            if request.is_write:
                entry.dirty_mask |= 1 << line
                if self._stats.enabled:
                    self._stats.host_lines_written += 1
            self._stats.count_request(HOST_DRAM)
            self._stats.record_amat(host_dram=dram_ns)
            return AccessResult(
                complete_ns=now + dram_ns,
                request_class=HOST_DRAM,
                breakdown={"host_dram": dram_ns},
            )

        # Host DRAM miss: on-demand page fetch from the SSD over CXL.
        # AstriFlash switches threads (user-level) on every such miss.
        arrive_dev = self._link.send_downstream(now, 8)
        inner_req = MemRequest(
            opcode=M2SOpcode.MEM_RD,
            address=request.address,
            core=request.core,
            thread=request.thread,
        )
        inner_result = self.inner.access(inner_req, arrive_dev)
        # The whole 4 KB page crosses the link into the host cache.
        arrive_host = self._link.send_upstream(inner_result.complete_ns, PAGE_SIZE)
        self._stats.add_amat_extra(
            protocol=(arrive_dev - now) + (arrive_host - inner_result.complete_ns)
        )
        victim = self.host_cache.insert(lpa, touch_line=line)
        if victim is not None and victim.dirty:
            self._writeback_victim(victim, arrive_host)
        entry = self.host_cache.peek(lpa)
        if request.is_write:
            entry.dirty_mask |= 1 << line
            if self._stats.enabled:
                self._stats.host_lines_written += 1
        complete = arrive_host + dram_ns
        return AccessResult(
            complete_ns=complete,
            request_class=inner_result.request_class,
            delay_hint=True,  # always a user-level switch on host miss
            est_delay_ns=complete - now,
            breakdown={"host_dram": dram_ns, "inner": complete - now - dram_ns},
        )

    def _writeback_victim(self, victim, now: float) -> None:
        """Page-granular writeback: the whole page travels back and is
        marked fully dirty at the SSD (the black-box, page-granular
        behaviour the paper contrasts with the write log)."""
        self._link.send_downstream(now, PAGE_SIZE)
        self.inner.demote_page(victim.lpa, FULL_MASK, now)

    def drain(self, now: float) -> float:
        completion = now
        for entry in list(self.host_cache.dirty_entries()):
            self._writeback_victim(entry, now)
            entry.dirty_mask = 0
        return self.inner.drain(completion)

    def warm_access(self, page: int, line: int, is_write: bool) -> None:
        """Metadata-only warmup: fill the host cache (and the inner SSD
        cache for the pages that spill past it)."""
        entry = self.host_cache.lookup(page, touch_line=line)
        if entry is None:
            self.host_cache.insert(page, touch_line=line)
            entry = self.host_cache.peek(page)
            self.inner.warm_access(page, line, False)
        if is_write:
            entry.dirty_mask |= 1 << line

    # Migration API stubs: AstriFlash has no promotion mechanism.
    def contains_page(self, lpa: int) -> bool:
        return self.inner.contains_page(lpa)

    def invalidate_page(self, lpa: int) -> int:
        return self.inner.invalidate_page(lpa)

    def demote_page(self, lpa: int, dirty_mask: int, now: float) -> None:
        self.inner.demote_page(lpa, dirty_mask, now)
