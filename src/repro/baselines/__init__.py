"""Alternative designs of the paper's SS VI-H study: TPP-style sampled
migration and the AstriFlash-CXL host-cache organisation."""
