"""TPP-style page hotness tracking (§VI-H, SkyByte-CT / SkyByte-WCT).

TPP (Transparent Page Placement, ASPLOS'23) extends Linux NUMA balancing:
it *samples* accesses periodically and promotes pages that appear on the
active LRU list, instead of counting every access.  The paper uses it as
the software alternative to SkyByte's per-page counters and finds it
"slightly worse ... because TPP uses periodic sampling to estimate page
hotness, which is less accurate than the per-page tracking in SkyByte".

This implementation keeps that character: each access is observed only
with probability ``sample_rate``; a first sampled touch within an epoch
puts the page on the inactive list, a second moves it to the active list;
active pages are promoted at the epoch boundary.  Sampling both misses
truly hot pages and promotes merely lukewarm ones.
"""

from __future__ import annotations

import random
from typing import List, Set


class TPPHotnessPolicy:
    """Sampling + two-list (inactive/active) hotness estimation."""

    def __init__(
        self,
        sample_rate: float = 0.1,
        epoch_ns: float = 1_000_000.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.sample_rate = sample_rate
        self.epoch_ns = epoch_ns
        self._rng = random.Random(seed)
        self._inactive: Set[int] = set()
        self._active: Set[int] = set()
        self._promoted_out: Set[int] = set()
        self._epoch_start = 0.0
        self._pending: List[int] = []

    def record_access(self, page: int, is_write: bool, now: float) -> None:
        self._roll_epoch(now)
        if page in self._promoted_out:
            return
        if self._rng.random() >= self.sample_rate:
            return  # unsampled: invisible to TPP
        if page in self._active:
            return
        if page in self._inactive:
            self._inactive.discard(page)
            self._active.add(page)
        else:
            self._inactive.add(page)

    def take_candidates(self, now: float) -> List[int]:
        self._roll_epoch(now)
        pending, self._pending = self._pending, []
        return pending

    def forget(self, page: int) -> None:
        self._inactive.discard(page)
        self._active.discard(page)
        self._promoted_out.discard(page)

    def _roll_epoch(self, now: float) -> None:
        if now - self._epoch_start < self.epoch_ns:
            return
        # Epoch boundary: active pages get promoted; inactive list decays.
        self._epoch_start = now
        for page in self._active:
            self._pending.append(page)
            self._promoted_out.add(page)
        self._active.clear()
        self._inactive.clear()
