"""The paper's benchmark suite (Table I).

Seven data-intensive applications spanning graph processing (bfs-dense
from Rodinia, bc from GAP), HPC (radix from Splash-3), image processing
(srad from Rodinia), databases (ycsb workload B and tpcc from WHISPER /
N-Store) and machine learning (Meta's DLRM).  Footprints, write ratios
and LLC MPKI come straight from Table I; the locality/skew parameters are
chosen to match the behavioural descriptions in the paper's evaluation
(which workloads have good page locality, sparse writes, streaming
phases, and how they rank in Figs. 5/6, 14-16).
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import GB
from repro.workloads.models import WorkloadModel, WorkloadSpec

#: Table I, one spec per row.
TABLE_I: Dict[str, WorkloadSpec] = {
    # Graph processing: pointer chasing over big graphs -- high MPKI,
    # poor spatial density, mild skew (power-law vertex degrees).
    "bfs-dense": WorkloadSpec(
        name="bfs-dense",
        suite="Rodinia",
        footprint_bytes=int(9.13 * GB),
        write_ratio=0.25,
        mpki=122.9,
        zipf_alpha=1.15,
        seq_fraction=0.2,
        burst_mean=6.0,
        in_page_sequential=False,
        hot_write_fraction=0.7,
        hot_write_lines=64,
        mlp=4,
    ),
    "bc": WorkloadSpec(
        name="bc",
        suite="GAP",
        footprint_bytes=int(8.18 * GB),
        write_ratio=0.11,
        mpki=39.4,
        zipf_alpha=1.35,
        seq_fraction=0.15,
        burst_mean=4.0,
        in_page_sequential=False,
        hot_write_fraction=0.7,
        hot_write_lines=64,
        mlp=2,
    ),
    # HPC: radix sort streams partitioned key ranges with scattered
    # bucket writes.
    "radix": WorkloadSpec(
        name="radix",
        suite="Splashv3",
        footprint_bytes=int(9.60 * GB),
        write_ratio=0.29,
        mpki=7.1,
        zipf_alpha=0.9,
        seq_fraction=0.6,
        burst_mean=24.0,
        in_page_sequential=True,
        sparse_writes=True,
        partitioned=True,
        write_stream_fraction=0.6,
        hot_write_fraction=0.5,
        hot_write_lines=64,
        mlp=8,
    ),
    # Image processing: stencil sweeps, dense reads, sparse writes.
    "srad": WorkloadSpec(
        name="srad",
        suite="Rodinia",
        footprint_bytes=int(8.16 * GB),
        write_ratio=0.24,
        mpki=7.5,
        zipf_alpha=0.9,
        seq_fraction=0.7,
        burst_mean=32.0,
        in_page_sequential=True,
        sparse_writes=True,
        write_stream_fraction=0.7,
        hot_write_fraction=0.5,
        hot_write_lines=64,
        mlp=8,
    ),
    # Databases: ycsb workload B (95% reads) with classic Zipf skew;
    # tpcc with strong locality, row-dense accesses and many writes.
    "ycsb": WorkloadSpec(
        name="ycsb",
        suite="WHISPER",
        footprint_bytes=int(9.61 * GB),
        write_ratio=0.05,
        mpki=92.2,
        zipf_alpha=1.3,
        seq_fraction=0.05,
        burst_mean=4.0,
        in_page_sequential=False,
        hot_write_fraction=0.7,
        hot_write_lines=64,
        mlp=2,
    ),
    "tpcc": WorkloadSpec(
        name="tpcc",
        suite="WHISPER",
        footprint_bytes=int(15.77 * GB),
        write_ratio=0.36,
        mpki=1.0,
        zipf_alpha=1.35,
        seq_fraction=0.1,
        burst_mean=20.0,
        in_page_sequential=True,
        hot_write_fraction=0.85,
        hot_write_lines=64,
        mlp=4,
    ),
    # ML: DLRM embedding gathers -- random sparse reads, dense updates.
    "dlrm": WorkloadSpec(
        name="dlrm",
        suite="DLRM",
        footprint_bytes=int(12.35 * GB),
        write_ratio=0.32,
        mpki=5.1,
        zipf_alpha=1.25,
        seq_fraction=0.2,
        burst_mean=3.0,
        in_page_sequential=False,
        write_stream_fraction=0.3,
        hot_write_fraction=0.75,
        hot_write_lines=64,
        mlp=4,
    ),
}

#: Canonical plotting order used throughout the paper's figures.
WORKLOAD_NAMES: List[str] = [
    "bc",
    "bfs-dense",
    "dlrm",
    "radix",
    "srad",
    "tpcc",
    "ycsb",
]


#: Accepted spellings for Table I workloads (the paper and its artifact
#: use a few: "ycsb-b" is YCSB workload B, "bfs" the dense Rodinia BFS).
WORKLOAD_ALIASES: Dict[str, str] = {
    "ycsb-b": "ycsb",
    "ycsbb": "ycsb",
    "bfs": "bfs-dense",
}


def canonical_workload(name: str) -> str:
    """Map a workload name or alias (case-insensitive) to its Table I key."""
    key = name.lower()
    key = WORKLOAD_ALIASES.get(key, key)
    if key not in TABLE_I:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(TABLE_I)}"
        )
    return key


def get_spec(name: str) -> WorkloadSpec:
    """Look up a Table I workload spec by name (aliases accepted)."""
    return TABLE_I[canonical_workload(name)]


def get_model(name: str, scale: int = 512, seed: int = 42) -> WorkloadModel:
    """Build the trace generator for a workload at a capacity scale."""
    return WorkloadModel(get_spec(name), scale=scale, seed=seed)


def representative_four() -> List[str]:
    """The four workloads the paper uses for its space-limited figures
    (Figs. 3, 9): bc, bfs-dense, srad, tpcc."""
    return ["bc", "bfs-dense", "srad", "tpcc"]
