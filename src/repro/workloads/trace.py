"""Trace record format and helpers.

A trace is a sequence of ``(gap, is_write, address)`` records: the thread
executes ``gap`` non-memory instructions, then issues one 64 B memory
access at ``address``.  This is the LLC-miss-stream level of detail the
fast interval model replays (on-chip cache hits are folded into the gap /
IPC term), the same level at which the paper's Table I characterises its
workloads via LLC MPKI.

Traces can be saved/loaded as compact ``.npz`` files so experiments are
reproducible without regeneration.
"""

from __future__ import annotations

import zipfile
from typing import List, Sequence, Tuple

import numpy as np

from repro.config import CACHELINE_SIZE, PAGE_SIZE

TraceRecord = Tuple[int, bool, int]


class TraceFormatError(ValueError):
    """A persisted trace is malformed, truncated, or mis-ordered.

    Raised instead of silently replaying a prefix: a short read on a
    trace file must fail loudly, or every downstream stat is quietly
    computed over the wrong workload.
    """


def make_trace(
    gaps: np.ndarray, writes: np.ndarray, addresses: np.ndarray
) -> List[TraceRecord]:
    """Zip parallel arrays into the list-of-tuples form the cores replay."""
    if not (len(gaps) == len(writes) == len(addresses)):
        raise ValueError("trace arrays must have equal length")
    return list(zip(gaps.tolist(), [bool(w) for w in writes], addresses.tolist()))


def trace_instructions(trace: Sequence[TraceRecord]) -> int:
    """Total instruction count a trace represents (gaps + 1 memory op each)."""
    return sum(r[0] for r in trace) + len(trace)


def trace_footprint_pages(trace: Sequence[TraceRecord]) -> int:
    """Number of distinct 4 KB pages the trace touches."""
    return len({r[2] // PAGE_SIZE for r in trace})


def trace_write_ratio(trace: Sequence[TraceRecord]) -> float:
    if not trace:
        return 0.0
    return sum(1 for r in trace if r[1]) / len(trace)


def trace_mpki(trace: Sequence[TraceRecord]) -> float:
    """Memory accesses per kilo-instruction (the trace-level analogue of
    Table I's LLC MPKI)."""
    instructions = trace_instructions(trace)
    if instructions == 0:
        return 0.0
    return 1000.0 * len(trace) / instructions


def save_traces(path: str, traces: Sequence[Sequence[TraceRecord]]) -> None:
    """Persist per-thread traces to one compressed .npz file."""
    arrays = {}
    for i, trace in enumerate(traces):
        arr = np.array(trace, dtype=np.int64)
        arrays[f"thread_{i}"] = arr
    np.savez_compressed(path, **arrays)


def load_traces(path: str) -> List[List[TraceRecord]]:
    """Inverse of :func:`save_traces`, with validation.

    Rejects (with :class:`TraceFormatError`) truncated/corrupt archives,
    non-contiguous thread numbering (``thread_0 .. thread_{n-1}`` must
    all be present, so a missing thread cannot silently shift the
    others), malformed record arrays, and negative gaps -- instead of
    ending the trace early at whatever loaded.
    """
    try:
        data = np.load(path)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise TraceFormatError(
            f"unreadable trace archive {path!r}: {exc}"
        ) from exc
    with data:
        indices = []
        for key in data.files:
            prefix, _, suffix = key.partition("_")
            if prefix != "thread" or not suffix.isdigit():
                raise TraceFormatError(
                    f"unexpected array {key!r} in trace archive {path!r}"
                )
            indices.append(int(suffix))
        if sorted(indices) != list(range(len(indices))):
            raise TraceFormatError(
                f"trace archive {path!r} has non-contiguous thread ids "
                f"{sorted(indices)}; expected thread_0..thread_{{n-1}}"
            )
        traces: List[List[TraceRecord]] = []
        for i in range(len(indices)):
            try:
                arr = data[f"thread_{i}"]
            except (ValueError, EOFError, zipfile.BadZipFile, OSError) as exc:
                raise TraceFormatError(
                    f"truncated trace archive {path!r}: thread_{i} "
                    f"unreadable: {exc}"
                ) from exc
            if arr.size == 0:
                traces.append([])
                continue
            if arr.ndim != 2 or arr.shape[1] != 3:
                raise TraceFormatError(
                    f"thread_{i} in {path!r} has shape {arr.shape}; "
                    f"expected (records, 3)"
                )
            if (arr[:, 0] < 0).any():
                raise TraceFormatError(
                    f"thread_{i} in {path!r} contains negative gaps"
                )
            if (arr[:, 2] < 0).any():
                raise TraceFormatError(
                    f"thread_{i} in {path!r} contains negative addresses"
                )
            traces.append([(int(g), bool(w), int(a)) for g, w, a in arr])
    return traces


def line_address(address: int) -> int:
    return address // CACHELINE_SIZE


def page_of(address: int) -> int:
    return address // PAGE_SIZE
