"""Synthetic workload models.

The paper drives its simulator with PIN traces of seven applications
(Table I).  Those traces are not redistributable at the scale this
reproduction runs, so each application is modelled as a parameterised
stochastic process over the statistical axes the SkyByte mechanisms
actually react to:

* **footprint** -- how many pages the working set spans (Table I's
  memory footprint, scaled with the system scale factor);
* **write ratio** -- fraction of accesses that are stores (Table I);
* **MPKI** -- off-chip accesses per kilo-instruction, which sets the gap
  distribution between memory ops (Table I);
* **page popularity** -- Zipf-skewed page choice; skew determines how
  much a small host-DRAM budget can absorb (drives Fig. 14's page
  promotion wins and Fig. 23);
* **spatial density** -- how many distinct cachelines a page visit
  touches, and whether runs are sequential; this reproduces the per-page
  locality CDFs of Figs. 5/6 that motivate the write log;
* **phase structure** -- a sequential-scan mixture models streaming
  phases (radix, srad) versus pointer-chasing (bc, bfs).

A :class:`WorkloadModel` turns a spec into per-thread traces using a
seeded NumPy generator, so every run is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import CACHELINE_SIZE, CACHELINES_PER_PAGE, PAGE_SIZE
from repro.workloads.trace import TraceRecord


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of one application (one Table I row plus
    the locality/skew parameters inferred from Figs. 5/6 and §VI)."""

    name: str
    suite: str
    #: Memory footprint at paper scale (Table I).
    footprint_bytes: int
    #: Fraction of memory accesses that are writes (Table I).
    write_ratio: float
    #: LLC misses per kilo-instruction (Table I).
    mpki: float
    #: Zipf exponent for page popularity (higher = more skewed = more
    #: benefit from page promotion).
    zipf_alpha: float
    #: Probability a page visit comes from a sequential scan rather than
    #: the Zipf sampler (streaming phases).
    seq_fraction: float
    #: Mean number of distinct cachelines touched per page visit
    #: (geometric); controls the Fig. 5/6 in-page density.
    burst_mean: float
    #: Whether in-page lines are consecutive (stencils/rows) or random
    #: (hash probes, embedding gathers).
    in_page_sequential: bool
    #: Whether writes land on random lines of the visited page instead of
    #: following the read run (sparse-write workloads like srad).
    sparse_writes: bool = False
    #: Threads partition the footprint (radix ranges) instead of sharing.
    partitioned: bool = False
    #: Dependence-limited memory-level parallelism: how many independent
    #: off-chip accesses the workload exposes inside one ROB window.
    #: Pointer-chasing codes (graph traversal, hash probes) sit at 1-3;
    #: streaming kernels reach the MSHR limit.  This is what makes OoO
    #: "less effective for hiding the long flash access latency" (§II-C)
    #: and gives the coordinated context switch its opening.
    mlp: int = 8
    #: Fraction of writes that target a small, shared set of hot lines
    #: (rank arrays, frontier flags, aggregation counters, DB row headers
    #: -- the repeatedly-rewritten state every iterative workload has).
    #: These rewrites are what log compaction coalesces (Fig. 18/20).
    hot_write_fraction: float = 0.5
    #: Size of that hot-line set.
    hot_write_lines: int = 256
    #: Fraction of (non-hot) writes that stream to a write-only output
    #: region (result images, sort buckets).  The baseline must
    #: read-modify-write each such page (write-allocate fetch!), while the
    #: write log absorbs them without ever touching flash on the critical
    #: path -- the paper's "workloads that have many sparse writes (e.g.,
    #: srad) benefit more from SkyByte-W".
    write_stream_fraction: float = 0.0

    def footprint_pages(self, scale: int = 1) -> int:
        """Working-set size in 4 KB pages after capacity scaling."""
        return max(64, int(self.footprint_bytes / scale) // PAGE_SIZE)


class WorkloadModel:
    """Trace generator for one workload spec."""

    def __init__(self, spec: WorkloadSpec, scale: int = 1, seed: int = 42) -> None:
        self.spec = spec
        self.scale = scale
        self.seed = seed
        self.pages = spec.footprint_pages(scale)
        self._zipf_cdf: Optional[np.ndarray] = None
        self._page_perm: Optional[np.ndarray] = None

    # -- page popularity --------------------------------------------------------

    def _popularity_cdf(self) -> np.ndarray:
        """CDF of a truncated Zipf over the footprint's pages.  Rank order
        is a fixed random permutation of the pages so hot pages are
        scattered through the address space (as real heaps are), not
        clustered at low addresses next to the scan phases."""
        if self._zipf_cdf is None:
            ranks = np.arange(1, self.pages + 1, dtype=np.float64)
            weights = ranks ** (-self.spec.zipf_alpha)
            self._zipf_cdf = np.cumsum(weights) / weights.sum()
            rng = np.random.default_rng(self.seed ^ 0x5EED)
            self._page_perm = rng.permutation(self.pages)
        return self._zipf_cdf

    def _sample_pages(self, rng: np.random.Generator, n: int) -> np.ndarray:
        cdf = self._popularity_cdf()
        draws = rng.random(n)
        ranked = np.searchsorted(cdf, draws, side="left")
        return self._page_perm[np.minimum(ranked, self.pages - 1)]

    # -- trace generation ----------------------------------------------------------

    def generate(self, threads: int, records_per_thread: int) -> List[List[TraceRecord]]:
        """Per-thread traces, each about ``records_per_thread`` records."""
        return [
            self.generate_thread(tid, threads, records_per_thread)
            for tid in range(threads)
        ]

    def _hot_write_set(self) -> List[int]:
        """Shared hot-write line addresses (same for every thread)."""
        spec = self.spec
        rng = np.random.default_rng((self.seed ^ 0xB00C) & 0x7FFFFFFF)
        count = min(spec.hot_write_lines, self.pages * 4)
        # Concentrate the hot lines on a compact page set (~2 lines/page)
        # drawn from its own permutation so it doesn't coincide with the
        # read-hot pages.
        hot_pages = rng.choice(self.pages, size=max(1, count // 2), replace=False)
        addrs = []
        for i in range(count):
            page = int(hot_pages[i % len(hot_pages)])
            line = int(rng.integers(0, CACHELINES_PER_PAGE))
            addrs.append(page * PAGE_SIZE + line * CACHELINE_SIZE)
        return addrs

    def generate_thread(
        self, tid: int, threads: int, records: int
    ) -> List[TraceRecord]:
        spec = self.spec
        rng = np.random.default_rng((self.seed * 1_000_003 + tid) & 0x7FFFFFFF)
        hot_writes = self._hot_write_set()

        # Thread's page range (partitioned workloads slice the footprint).
        if spec.partitioned and threads > 1:
            span = self.pages // threads
            base_page = tid * span
            local_pages = max(1, span)
        else:
            base_page = 0
            local_pages = self.pages

        # Visits: geometric burst sizes with the spec's mean.
        mean_burst = max(1.0, spec.burst_mean)
        est_visits = max(1, int(records / mean_burst) + 8)
        p_geom = min(1.0, 1.0 / mean_burst)
        bursts = rng.geometric(p_geom, size=est_visits)
        np.clip(bursts, 1, CACHELINES_PER_PAGE, out=bursts)

        seq_mask = rng.random(est_visits) < spec.seq_fraction
        zipf_pages = self._sample_pages(rng, est_visits)
        scan_pos = int(rng.integers(0, local_pages))
        # Write-only output region: the top quarter of this thread's pages.
        out_base = base_page + (local_pages * 3) // 4
        out_span = max(1, local_pages - (local_pages * 3) // 4)
        out_pos = 0

        gap_mean = max(1.0, 1000.0 / spec.mpki)

        gaps_out: List[int] = []
        writes_out: List[bool] = []
        addrs_out: List[int] = []
        total = 0
        for v in range(est_visits):
            if total >= records:
                break
            burst = int(bursts[v])
            if seq_mask[v]:
                page = base_page + (scan_pos % local_pages)
                scan_pos += 1
            else:
                page = int(zipf_pages[v]) % self.pages
                if spec.partitioned and threads > 1:
                    page = base_page + page % local_pages
            if spec.in_page_sequential:
                start = int(rng.integers(0, CACHELINES_PER_PAGE))
                lines = [(start + i) % CACHELINES_PER_PAGE for i in range(burst)]
            else:
                lines = rng.choice(
                    CACHELINES_PER_PAGE, size=min(burst, CACHELINES_PER_PAGE),
                    replace=False,
                ).tolist()
            line_writes = rng.random(len(lines)) < spec.write_ratio
            gaps = rng.exponential(gap_mean, size=len(lines)).astype(np.int64)
            for i, line in enumerate(lines):
                is_write = bool(line_writes[i])
                if is_write and rng.random() < spec.hot_write_fraction:
                    # Rewrite of hot shared state (coalescable).
                    addr = hot_writes[int(rng.integers(0, len(hot_writes)))]
                elif is_write and rng.random() < spec.write_stream_fraction:
                    # Streaming store to the write-only output region.
                    out_page = out_base + (out_pos // CACHELINES_PER_PAGE) % out_span
                    out_line = out_pos % CACHELINES_PER_PAGE
                    out_pos += int(rng.integers(1, 9))  # sparse output stride
                    addr = out_page * PAGE_SIZE + out_line * CACHELINE_SIZE
                else:
                    if is_write and spec.sparse_writes:
                        line = int(rng.integers(0, CACHELINES_PER_PAGE))
                    addr = int(page) * PAGE_SIZE + int(line) * CACHELINE_SIZE
                gaps_out.append(int(gaps[i]))
                writes_out.append(is_write)
                addrs_out.append(addr)
                total += 1
                if total >= records:
                    break
        return list(zip(gaps_out, writes_out, addrs_out))
