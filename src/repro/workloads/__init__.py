"""Table I workload models and trace tooling."""
