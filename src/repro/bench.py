"""Continuous speed benchmarking: ``python -m repro bench``.

Measures end-to-end figure-driver throughput — cells per second and
engine events per second — in both simulator modes (the vectorized
default and the scalar reference path, see :mod:`repro.sim.fastpath`)
and emits ``BENCH_speed.json``, the speed companion to the fidelity
report's ``BENCH_fidelity.json``.

Protocol
--------
Each driver runs ``repeats`` times per mode and the *best* wall time
wins.  The first repetition doubles as warmup: the vectorized path
memoizes trace synthesis and FTL preconditioning across cells exactly
like a long ``repro report`` invocation does, so best-of-N measures the
steady state users actually experience, while the scalar reference —
which by design shares nothing between runs — measures the old cost.
All cells execute serially in-process (``jobs=1``, no result cache) so
the numbers compare across machines with different core counts.

Regression gating
-----------------
Absolute cells/sec depends on the host, so CI gates on the *speedup
ratio* (vector over scalar on the same host, same process), which is
machine-independent.  ``compare()`` fails a run when any driver's ratio
drops more than ``threshold`` (default 25%) below the committed
baseline ``benchmarks/BENCH_speed.baseline.json``.  Refresh the
baseline after an intentional change with ``repro bench
--update-baseline`` (or ``REPRO_UPDATE_SPEED_BASELINE=1``), mirroring
the golden-file flow of ``REPRO_UPDATE_GOLDEN``.
"""

from __future__ import annotations

import inspect
import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim import engine as engine_mod
from repro.sim import fastpath

SCHEMA_VERSION = 1
DEFAULT_OUT = "BENCH_speed.json"
DEFAULT_BASELINE = "benchmarks/BENCH_speed.baseline.json"
#: A driver regresses when its vector/scalar speedup falls more than
#: this fraction below the committed baseline's.
DEFAULT_THRESHOLD = 0.25
UPDATE_ENV = "REPRO_UPDATE_SPEED_BASELINE"


@dataclass(frozen=True)
class DriverSpec:
    """One benchmarked figure driver.

    ``cells`` is the static cell count for drivers that do not sweep
    through the orchestrator (figs. 5/6 replay traces directly and have
    no progress callback); sweep drivers report their cells live.
    """

    name: str
    records: int
    repeats: int = 3
    cells: Optional[int] = None
    kwargs: Dict[str, object] = field(default_factory=dict)


#: figs. 5/6: 4 workloads x 4 cache ratios.
_LOCALITY_CELLS = 16

# The sweep drivers run 5 repetitions: their per-rep wall is small
# enough that the extra cost is trivial, and a deeper best-of-N keeps
# the speedup ratio stable on noisy CI runners.
QUICK_SPECS: Tuple[DriverSpec, ...] = (
    DriverSpec("fig2", records=250, repeats=5),
    DriverSpec("fig5", records=1000, cells=_LOCALITY_CELLS),
    DriverSpec("fig6", records=1000, cells=_LOCALITY_CELLS),
    DriverSpec("promotion-threshold", records=250, repeats=5),
    DriverSpec("prefetch-ablation", records=250, repeats=5),
    # Deep-path coverage: one flat and one deep cell on two workload
    # shapes, so BENCH_speed tracks the queueing scheduler's cells/sec.
    DriverSpec("flash-sensitivity", records=250, repeats=3,
               kwargs={"workloads": ("tab1-bc", "tab1-ycsb"),
                       "models": ("flat", "deep")}),
)

FULL_SPECS: Tuple[DriverSpec, ...] = QUICK_SPECS + (
    DriverSpec("fig9", records=500),
    DriverSpec("fig14", records=500),
)


def _default_figures() -> Mapping[str, Callable]:
    # Imported lazily so ``repro.bench`` stays importable for unit tests
    # that inject a fake registry.
    from repro.cli import FIGURES

    return FIGURES


def _driver_kwargs(
    fn: Callable,
    spec: DriverSpec,
    progress: Callable,
) -> Tuple[Dict[str, object], bool]:
    """The subset of bench options ``fn`` understands, plus whether it
    accepts a progress callback (i.e. reports cells live)."""
    accepted = inspect.signature(fn).parameters
    candidates: Dict[str, object] = {
        "records": spec.records,
        "jobs": 1,
        "cache": False,
        "progress": progress,
        **spec.kwargs,
    }
    kwargs = {k: v for k, v in candidates.items() if k in accepted}
    return kwargs, "progress" in accepted


class BenchError(RuntimeError):
    """A driver spec that cannot be measured (no cell accounting)."""


def measure_driver(
    spec: DriverSpec,
    figures: Optional[Mapping[str, Callable]] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> Dict[str, object]:
    """Benchmark one driver in both simulator modes.

    Returns the per-driver entry for ``BENCH_speed.json``:
    best-of-``repeats`` wall time, cells/sec and events/sec for the
    vectorized path, the scalar reference numbers, and their ratio.
    """
    figures = figures if figures is not None else _default_figures()
    if spec.name not in figures:
        raise BenchError(f"unknown figure driver: {spec.name}")
    fn = figures[spec.name]

    counted = 0

    def progress(job: object, source: str) -> None:
        nonlocal counted
        counted += 1

    kwargs, live_cells = _driver_kwargs(fn, spec, progress)
    if not live_cells and spec.cells is None:
        raise BenchError(
            f"driver {spec.name} has no progress callback; "
            "its spec needs a static `cells` count"
        )

    # Paired measurement: each repetition times the scalar reference and
    # the vectorized path back to back, so a contended window on a noisy
    # host (CI runners especially) skews both sides of the speedup ratio
    # alike instead of whichever mode it happened to land on.
    modes: Dict[str, Dict[str, float]] = {
        mode: {"wall_s": math.inf, "events": 0, "cells": spec.cells or 0}
        for mode in ("scalar", "vector")
    }
    for _rep in range(max(1, spec.repeats)):
        for mode, best in modes.items():
            with fastpath.forced_mode(mode):
                counted = 0
                events_before = engine_mod.events_processed()
                t0 = clock()
                fn(**kwargs)
                wall = clock() - t0
                events = engine_mod.events_processed() - events_before
            if live_cells:
                best["cells"] = counted
            if wall < best["wall_s"]:
                best["wall_s"] = wall
                best["events"] = events
    for best in modes.values():
        wall_s = max(best["wall_s"], 1e-9)
        best["wall_s"] = wall_s
        best["cells_per_sec"] = best["cells"] / wall_s
        best["events_per_sec"] = best["events"] / wall_s

    vector = modes["vector"]
    scalar = modes["scalar"]
    return {
        "records": spec.records,
        "repeats": spec.repeats,
        "cells": vector["cells"],
        "wall_s": vector["wall_s"],
        "cells_per_sec": vector["cells_per_sec"],
        "events": vector["events"],
        "events_per_sec": vector["events_per_sec"],
        "scalar": {
            "wall_s": scalar["wall_s"],
            "cells_per_sec": scalar["cells_per_sec"],
            "events": scalar["events"],
            "events_per_sec": scalar["events_per_sec"],
        },
        "speedup": scalar["wall_s"] / vector["wall_s"],
    }


def run_bench(
    specs: Sequence[DriverSpec],
    figures: Optional[Mapping[str, Callable]] = None,
    clock: Callable[[], float] = time.perf_counter,
    quick: bool = False,
    echo: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run every spec and assemble the ``BENCH_speed.json`` payload."""
    drivers: Dict[str, Dict[str, object]] = {}
    for spec in specs:
        if echo:
            echo(f"== bench {spec.name} (records={spec.records}, "
                 f"repeats={spec.repeats})")
        entry = measure_driver(spec, figures=figures, clock=clock)
        drivers[spec.name] = entry
        if echo:
            echo(f"   {entry['cells']} cells, {entry['wall_s']:.3f}s, "
                 f"{entry['cells_per_sec']:.1f} cells/s, "
                 f"speedup {entry['speedup']:.2f}x")

    total_wall = sum(d["wall_s"] for d in drivers.values())
    total_cells = sum(d["cells"] for d in drivers.values())
    total_events = sum(d["events"] for d in drivers.values())
    speedups = [d["speedup"] for d in drivers.values()]
    geomean = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else 0.0
    )
    return {
        "schema": SCHEMA_VERSION,
        "kind": "speed",
        "quick": quick,
        "backend": "serial",
        "sim_path_default": fastpath.mode(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "drivers": drivers,
        "overall": {
            "drivers": len(drivers),
            "wall_s": total_wall,
            "cells": total_cells,
            "cells_per_sec": total_cells / total_wall if total_wall else 0.0,
            "events": total_events,
            "events_per_sec": total_events / total_wall if total_wall else 0.0,
            "speedup_geomean": geomean,
            "speedup_min": min(speedups) if speedups else 0.0,
        },
    }


def compare(
    current: Mapping[str, object],
    baseline: Mapping[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Regression check against the committed baseline.

    Returns a list of human-readable problems (empty = pass).  Only the
    machine-independent speedup ratio gates; absolute cells/sec is
    informational.  Drivers present in the baseline must be present in
    the current run; new drivers in the current run are fine (they gate
    once the baseline is refreshed).
    """
    problems: List[str] = []
    base_drivers = baseline.get("drivers", {})
    cur_drivers = current.get("drivers", {})
    for name, base in base_drivers.items():
        cur = cur_drivers.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current bench run")
            continue
        floor = base["speedup"] * (1.0 - threshold)
        if cur["speedup"] < floor:
            problems.append(
                f"{name}: speedup {cur['speedup']:.2f}x regressed more "
                f"than {threshold:.0%} below baseline "
                f"{base['speedup']:.2f}x (floor {floor:.2f}x)"
            )
    return problems


def load_json(path: os.PathLike) -> Dict[str, object]:
    return json.loads(Path(path).read_text())


def write_json(path: os.PathLike, payload: Mapping[str, object]) -> None:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def add_arguments(parser) -> None:
    """Register the bench options (shared by ``repro bench`` and the
    standalone ``python -m repro.bench`` entry)."""
    parser.add_argument("--quick", action="store_true",
                        help="small driver set at low record counts (CI)")
    parser.add_argument("--names", action="append",
                        help="benchmark only these drivers (repeat/comma-separate)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override repetitions per mode (default 3)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"committed baseline (default {DEFAULT_BASELINE})")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) on regression vs the baseline")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional speedup drop (default 0.25)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run "
                             f"(also: {UPDATE_ENV}=1)")


def run_from_args(
    args,
    figures: Optional[Mapping[str, Callable]] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> int:
    """Execute a parsed bench invocation; returns the exit code."""
    specs: Sequence[DriverSpec] = QUICK_SPECS if args.quick else FULL_SPECS
    if args.names:
        wanted = []
        for value in args.names:
            wanted.extend(part for part in value.split(",") if part)
        known = {s.name for s in specs}
        unknown = [n for n in wanted if n not in known]
        if unknown:
            print(f"unknown bench driver(s): {', '.join(unknown)}; "
                  f"available: {', '.join(sorted(known))}", file=sys.stderr)
            return 2
        specs = [s for s in specs if s.name in wanted]
    if args.repeats is not None:
        specs = [
            DriverSpec(s.name, s.records, max(1, args.repeats), s.cells,
                       dict(s.kwargs))
            for s in specs
        ]

    payload = run_bench(specs, figures=figures, clock=clock,
                        quick=args.quick, echo=print)
    write_json(args.out, payload)
    print(f"wrote {args.out}")

    update = args.update_baseline or os.environ.get(UPDATE_ENV, "") not in ("", "0")
    if update:
        write_json(args.baseline, payload)
        print(f"updated baseline {args.baseline}")
        return 0

    if args.check:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}; commit one with "
                  "--update-baseline", file=sys.stderr)
            return 1
        problems = compare(payload, load_json(baseline_path),
                           threshold=args.threshold)
        if problems:
            print("speed regression detected:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"speed check passed ({len(payload['drivers'])} drivers, "
              f"threshold {args.threshold:.0%})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point: ``python -m repro.bench``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="measure figure-driver throughput and emit BENCH_speed.json",
    )
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
