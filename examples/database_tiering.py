#!/usr/bin/env python3
"""Database memory tiering on a CXL-SSD: page migration policies and the
cost argument.

OLTP (tpcc) and key-value (ycsb) workloads have skewed, hot working sets
-- ideal for SkyByte's adaptive page migration, which promotes hot pages
into a small host-DRAM budget.  This example compares the migration
mechanisms of the paper's §VI-H (per-page counters vs TPP sampling vs
AstriFlash's host cache) and reproduces the §VI-B cost-effectiveness
arithmetic.

Run:
    python examples/database_tiering.py
"""

from repro import run_workload
from repro.experiments.cost import CostModel

RECORDS = 2500


def main():
    print("=== Database tiering on a memory-semantic CXL-SSD ===\n")

    for workload in ("tpcc", "ycsb"):
        print(f"--- {workload} (paper Fig. 23 slice) ---")
        base = run_workload(workload, "SkyByte-C", records_per_thread=RECORDS)
        print(f"  {'mechanism':16s} {'speedup':>9s} {'promoted':>9s} "
              f"{'host-served':>12s}")
        for variant in ("SkyByte-C", "AstriFlash-CXL", "SkyByte-CT",
                        "SkyByte-CP", "SkyByte-Full"):
            r = run_workload(workload, variant, records_per_thread=RECORDS)
            host = r.stats.request_breakdown()["H-R/W"]
            print(f"  {variant:16s} {r.speedup_over(base):8.2f}x "
                  f"{r.stats.pages_promoted:9d} {host:11.1%}")
        print()

    print("--- Cost-effectiveness (paper §VI-B) ---")
    model = CostModel()
    ideal = run_workload("tpcc", "DRAM-Only", records_per_thread=RECORDS)
    full = run_workload("tpcc", "SkyByte-Full", records_per_thread=RECORDS)
    frac = full.stats.throughput_ipns / ideal.stats.throughput_ipns
    print(f"  DRAM-only setup cost:    ${model.dram_only_cost:8.0f} "
          f"({model.dram_only_gb:.0f} GB DDR5 @ $4.28/GB)")
    print(f"  SkyByte setup cost:      ${model.skybyte_cost:8.0f} "
          f"({model.skybyte_flash_gb:.0f} GB ULL flash + "
          f"{model.skybyte_host_dram_gb:.0f} GB DDR5)")
    print(f"  Hardware cost ratio:     {model.cost_ratio:.1f}x cheaper "
          f"(paper: 15.9x)")
    print(f"  tpcc performance kept:   {frac:.1%} of DRAM-only "
          f"(paper: 75% average)")
    print(f"  Cost-effectiveness gain: {frac * model.cost_ratio:.1f}x "
          f"(paper: 11.8x)")


if __name__ == "__main__":
    main()
