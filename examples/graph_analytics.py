#!/usr/bin/env python3
"""Graph analytics on a CXL-SSD: why pointer chasing needs the
coordinated context switch.

Graph workloads (bc from GAP, bfs-dense from Rodinia) are the paper's
worst case for a naive CXL-SSD: pointer chasing exposes almost no
memory-level parallelism, so every SSD DRAM miss stalls the core for the
whole flash read.  This example shows how each SkyByte mechanism moves
the needle on `bc`, and how oversubscribing the cores (the paper's 24
threads on 8 cores) lets the Long Delay Exception hide flash latency.

Run:
    python examples/graph_analytics.py
"""

from repro import run_workload

RECORDS = 2500


def main():
    workload = "bc"
    print(f"=== {workload}: betweenness centrality over a CXL-SSD ===\n")

    print("Step 1: the ablation (paper Fig. 14, one workload)")
    base = run_workload(workload, "Base-CSSD", records_per_thread=RECORDS)
    print(f"  {'design':14s} {'speedup':>8s} {'AMAT ns':>9s} {'switches':>9s} "
          f"{'mem-bound':>10s}")
    for variant in ("Base-CSSD", "SkyByte-C", "SkyByte-W", "SkyByte-P",
                    "SkyByte-Full", "DRAM-Only"):
        r = run_workload(workload, variant, records_per_thread=RECORDS)
        bd = r.stats.boundedness()
        print(f"  {variant:14s} {r.speedup_over(base):7.2f}x "
              f"{r.stats.amat_ns:9.0f} {r.stats.context_switches:9d} "
              f"{bd['memory']:9.1%}")

    print("\nStep 2: thread oversubscription with the context switch "
          "(paper Fig. 15)")
    wp8 = run_workload(workload, "SkyByte-WP", records_per_thread=RECORDS,
                       threads=8)
    print(f"  {'threads':>8s} {'throughput vs WP@8':>20s} {'switches':>10s}")
    for threads in (8, 16, 24, 32):
        r = run_workload(workload, "SkyByte-Full",
                         records_per_thread=RECORDS, threads=threads)
        ratio = r.stats.throughput_ipns / wp8.stats.throughput_ipns
        print(f"  {threads:8d} {ratio:19.2f}x {r.stats.context_switches:10d}")

    print("\nTakeaway: with low-MLP graph traversal, the device-triggered")
    print("context switch converts dead flash-wait time into work for the")
    print("other runnable threads; the write log and promotion then cut")
    print("the number of flash trips themselves.")


if __name__ == "__main__":
    main()
