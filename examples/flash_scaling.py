#!/usr/bin/env python3
"""Cheap flash, same performance: SkyByte across NAND technologies.

The paper's Fig. 22 argues that SkyByte makes slower-but-cheaper
commodity NAND viable for parallelizable applications: the write log and
context switching exist precisely to hide flash latency, so their value
grows as the flash gets slower.  This example sweeps the four Table IV
flash technologies and shows Base-CSSD degrading much faster than
SkyByte-Full.

Run:
    python examples/flash_scaling.py
"""

from repro import FLASH_TIMINGS, run_workload

RECORDS = 2000


def main():
    workload = "srad"
    print(f"=== {workload} across NAND technologies (paper Fig. 22) ===\n")
    print(f"  {'flash':6s} {'tR':>6s} {'tProg':>7s}  "
          f"{'Base-CSSD':>10s} {'SkyByte-Full':>13s} {'advantage':>10s}")

    ull_base = None
    for timing in ("ULL", "ULL2", "SLC", "MLC"):
        t = FLASH_TIMINGS[timing]
        base = run_workload(workload, "Base-CSSD",
                            records_per_thread=RECORDS, timing=timing)
        full = run_workload(workload, "SkyByte-Full",
                            records_per_thread=RECORDS, timing=timing)
        if ull_base is None:
            ull_base = base
        base_rel = base.stats.throughput_ipns / ull_base.stats.throughput_ipns
        full_rel = full.stats.throughput_ipns / ull_base.stats.throughput_ipns
        advantage = full.speedup_over(base)
        print(f"  {timing:6s} {t.read_ns/1000:5.0f}u {t.program_ns/1000:6.0f}u  "
              f"{base_rel:9.2f}x {full_rel:12.2f}x {advantage:9.2f}x")

    print("\n(throughput normalized to Base-CSSD on ULL flash)")
    print("Takeaway: as tR grows from 3us (Z-NAND) to 50us (MLC), the")
    print("baseline collapses while SkyByte keeps hiding the latency --")
    print("'it is promising to use slower yet cheaper commodity flash")
    print("chips to build CXL-SSDs for parallelizable applications'.")


if __name__ == "__main__":
    main()
