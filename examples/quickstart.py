#!/usr/bin/env python3
"""Quickstart: simulate one workload on the baseline CXL-SSD and on
SkyByte, and print what changed.

Run:
    python examples/quickstart.py
"""

from repro import run_workload

RECORDS = 2500  # trace records per thread; raise for higher fidelity


def describe(result):
    s = result.stats
    breakdown = s.request_breakdown()
    return {
        "threads": result.threads,
        "throughput (instr/ns)": round(s.throughput_ipns, 4),
        "AMAT (ns)": round(s.amat_ns, 1),
        "flash page writes": s.flash_page_writes,
        "context switches": s.context_switches,
        "pages promoted": s.pages_promoted,
        "served by host DRAM": f"{breakdown['H-R/W']:.1%}",
        "SSD DRAM read hits": f"{breakdown['S-R-H']:.1%}",
        "flash-bound read misses": f"{breakdown['S-R-M']:.1%}",
    }


def main():
    workload = "ycsb"
    print(f"Simulating {workload!r} on a memory-semantic CXL-SSD...\n")

    base = run_workload(workload, "Base-CSSD", records_per_thread=RECORDS)
    full = run_workload(workload, "SkyByte-Full", records_per_thread=RECORDS)
    ideal = run_workload(workload, "DRAM-Only", records_per_thread=RECORDS)

    for name, result in (("Base-CSSD", base), ("SkyByte-Full", full),
                         ("DRAM-Only (ideal)", ideal)):
        print(f"--- {name} ---")
        for key, value in describe(result).items():
            print(f"  {key:26s} {value}")
        print()

    print(f"SkyByte-Full speedup over Base-CSSD: {full.speedup_over(base):.2f}x")
    print(f"Fraction of the DRAM-Only ideal:     "
          f"{full.stats.throughput_ipns / ideal.stats.throughput_ipns:.1%}")


if __name__ == "__main__":
    main()
