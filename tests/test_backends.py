"""Tests for the pluggable sweep execution backends.

Covers backend resolution (names, env knobs, worker addresses), the
thread backend's byte-identical results, and the distributed backend's
TCP/JSON protocol: listen and dial topologies, shared caches, worker
failure reporting, and requeueing cells from dead connections.
"""

import json
import socket
import threading
import time

import pytest

from repro.experiments import backends
from repro.experiments import worker as worker_mod
from repro.experiments.backends import (
    CellPolicy,
    DistributedBackend,
    LocalProcessBackend,
    SweepBackend,
    ThreadBackend,
    parse_address,
    resolve_backend,
)
from repro.experiments.orchestrator import ResultCache, SweepJob, run_sweep

R = 120  # tiny traces: these tests check plumbing, not magnitudes


def tiny_jobs():
    return [
        SweepJob.make("bc", "Base-CSSD", records_per_thread=R),
        SweepJob.make("bc", "DRAM-Only", records_per_thread=R),
        SweepJob.make("ycsb", "SkyByte-Full", records_per_thread=R),
    ]


def dumps(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


class TestResolution:
    def test_default_is_local(self, monkeypatch):
        monkeypatch.delenv(backends.BACKEND_ENV, raising=False)
        backend = resolve_backend(None, jobs=3)
        assert isinstance(backend, LocalProcessBackend)
        assert backend.jobs == 3

    def test_names(self):
        assert isinstance(resolve_backend("local", jobs=2), LocalProcessBackend)
        assert isinstance(resolve_backend("thread", jobs=2), ThreadBackend)
        serial = resolve_backend("serial", jobs=8)
        assert isinstance(serial, LocalProcessBackend)
        assert serial.jobs == 1

    def test_instance_passes_through(self):
        backend = ThreadBackend(2)
        assert resolve_backend(backend) is backend

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "thread")
        assert isinstance(resolve_backend(None, jobs=2), ThreadBackend)

    def test_env_supplies_workers(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "distributed")
        monkeypatch.setenv(backends.WORKERS_ENV, "alpha:7001,beta:7002")
        backend = resolve_backend(None)
        assert isinstance(backend, DistributedBackend)
        assert backend.workers == [("alpha", 7001), ("beta", 7002)]

    def test_spec_suffix_supplies_workers(self):
        backend = resolve_backend("distributed:alpha:7001,beta:7002")
        assert backend.workers == [("alpha", 7001), ("beta", 7002)]

    def test_workers_argument_implies_distributed(self, monkeypatch):
        monkeypatch.delenv(backends.BACKEND_ENV, raising=False)
        backend = resolve_backend(None, workers=["localhost:7001"])
        assert isinstance(backend, DistributedBackend)
        assert backend.workers == [("localhost", 7001)]

    def test_explicit_workers_beat_env_backend(self, monkeypatch):
        """A typed worker list must not lose to an ambient env default."""
        monkeypatch.setenv(backends.BACKEND_ENV, "thread")
        backend = resolve_backend(None, workers=["remote:7001"])
        assert isinstance(backend, DistributedBackend)
        assert backend.workers == [("remote", 7001)]

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            resolve_backend("carrier-pigeon")

    def test_distributed_without_workers_raises(self, monkeypatch):
        monkeypatch.delenv(backends.WORKERS_ENV, raising=False)
        with pytest.raises(ValueError, match="worker addresses"):
            resolve_backend("distributed")

    def test_parse_address(self):
        assert parse_address("host:8") == ("host", 8)
        assert parse_address("7001") == ("127.0.0.1", 7001)
        assert parse_address(("", 9)) == ("127.0.0.1", 9)
        with pytest.raises(ValueError, match="bad worker address"):
            parse_address("no-port")

    def test_describe(self):
        assert LocalProcessBackend(4).describe() == "local[jobs=4]"
        assert ThreadBackend(2).describe() == "thread[jobs=2]"
        assert SweepBackend().describe() == "abstract"

    def test_registry_spec(self, monkeypatch):
        monkeypatch.delenv(backends.REGISTRY_ENV, raising=False)
        backend = resolve_backend("registry:reghost:7470")
        assert isinstance(backend, DistributedBackend)
        assert backend.registry == ("reghost", 7470)
        with pytest.raises(ValueError, match="registry address"):
            resolve_backend("registry")
        monkeypatch.setenv(backends.REGISTRY_ENV, "envhost:7471")
        assert resolve_backend("registry").registry == ("envhost", 7471)

    def test_policy_reaches_instances_and_specs(self):
        policy = CellPolicy(cell_timeout=1.5, retry_budget=7)
        spec_built = resolve_backend("distributed:h:1", policy=policy)
        assert spec_built.policy is policy
        instance = DistributedBackend(workers=["h:1"])
        assert resolve_backend(instance, policy=policy).policy is policy


class TestCellPolicy:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(backends.CELL_TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(backends.RETRY_BUDGET_ENV, raising=False)
        policy = CellPolicy.from_env()
        assert policy.cell_timeout is None
        assert policy.retry_budget == 3
        assert policy.quarantine_after == 3
        assert policy.describe() == "timeout=inf,budget=3"

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(backends.CELL_TIMEOUT_ENV, "2.5")
        monkeypatch.setenv(backends.RETRY_BUDGET_ENV, "5")
        policy = CellPolicy.from_env()
        assert policy.cell_timeout == 2.5
        assert policy.retry_budget == 5
        assert policy.describe() == "timeout=2.5s,budget=5"

    def test_zero_timeout_means_unlimited(self, monkeypatch):
        monkeypatch.setenv(backends.CELL_TIMEOUT_ENV, "0")
        assert CellPolicy.from_env().cell_timeout is None
        assert CellPolicy(cell_timeout=-1.0).cell_timeout is None

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(backends.CELL_TIMEOUT_ENV, "soon")
        monkeypatch.setenv(backends.RETRY_BUDGET_ENV, "many")
        policy = CellPolicy.from_env()
        assert policy.cell_timeout is None
        assert policy.retry_budget == 3

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="retry_budget"):
            CellPolicy(retry_budget=0)

    def test_explicit_quarantine_kept(self):
        assert CellPolicy(retry_budget=5, quarantine_after=2).quarantine_after == 2


class TestThreadBackend:
    def test_matches_serial_byte_identical(self):
        serial = run_sweep(tiny_jobs(), jobs=1, cache=False)
        threaded = run_sweep(tiny_jobs(), jobs=3, cache=False, backend="thread")
        assert dumps(serial) == dumps(threaded)

    def test_uses_cache(self, tmp_path):
        store = ResultCache(tmp_path)
        run_sweep(tiny_jobs(), jobs=2, cache=store, backend=ThreadBackend(2))
        assert store.misses == 3
        run_sweep(tiny_jobs(), jobs=2, cache=store, backend=ThreadBackend(2))
        assert store.hits == 3


def start_inprocess_worker(address, cache=None):
    """A real worker (the module the CLI runs), dialing in on a thread."""

    def serve():
        sock = socket.create_connection(address)
        with sock:
            worker_mod.serve_connection(sock, cache)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread


class TestDistributedBackend:
    def test_listen_mode_matches_serial(self):
        serial = run_sweep(tiny_jobs(), jobs=1, cache=False)
        with DistributedBackend(listen="127.0.0.1:0") as backend:
            workers = [start_inprocess_worker(backend.address) for _ in range(2)]
            results = run_sweep(tiny_jobs(), cache=False, backend=backend)
        assert dumps(results) == dumps(serial)
        for thread in workers:
            thread.join(timeout=5)

    def test_dedup_and_order_preserved(self, tmp_path):
        store = ResultCache(tmp_path)
        specs = tiny_jobs() + [tiny_jobs()[0]]  # duplicate first cell
        with DistributedBackend(listen="127.0.0.1:0") as backend:
            start_inprocess_worker(backend.address)
            results = run_sweep(specs, cache=store, backend=backend)
        assert [r.workload for r in results] == ["bc", "bc", "ycsb", "bc"]
        assert dumps([results[0]]) == dumps([results[3]])
        assert store.misses == 3  # the duplicate never crossed the wire

    def test_workers_share_coordinator_cache(self, tmp_path):
        """A cell cached by a local sweep is served, not re-simulated,
        when the worker points at the same cache directory."""
        run_sweep(tiny_jobs(), jobs=1, cache=ResultCache(tmp_path))
        worker_store = ResultCache(tmp_path)
        with DistributedBackend(listen="127.0.0.1:0") as backend:
            start_inprocess_worker(backend.address, cache=worker_store)
            results = run_sweep(tiny_jobs(), cache=False, backend=backend)
        assert worker_store.hits == 3
        assert worker_store.misses == 0
        assert dumps(results) == dumps(run_sweep(tiny_jobs(), jobs=1, cache=False))

    def test_worker_cell_failure_raises(self):
        with DistributedBackend(listen="127.0.0.1:0") as backend:

            def bad_worker():
                sock = socket.create_connection(backend.address)
                with sock:
                    rfile = sock.makefile("r", encoding="utf-8")
                    backends.send_msg(
                        sock,
                        {"type": "hello", "version": backends.PROTOCOL_VERSION},
                    )
                    while True:
                        msg = backends.recv_msg(rfile)
                        if msg is None or msg.get("type") != "job":
                            return
                        backends.send_msg(
                            sock,
                            {"type": "result", "id": msg["id"],
                             "ok": False, "error": "boom"},
                        )

            threading.Thread(target=bad_worker, daemon=True).start()
            with pytest.raises(RuntimeError, match="boom"):
                run_sweep(tiny_jobs()[:1], cache=False, backend=backend)

    def test_dead_worker_requeues_cell(self):
        """A connection dying mid-cell hands the cell to a survivor."""
        with DistributedBackend(listen="127.0.0.1:0") as backend:

            def flaky_worker():
                sock = socket.create_connection(backend.address)
                rfile = sock.makefile("r", encoding="utf-8")
                backends.send_msg(
                    sock, {"type": "hello", "version": backends.PROTOCOL_VERSION}
                )
                backends.recv_msg(rfile)  # accept one cell...
                sock.close()  # ...and die without answering

            threading.Thread(target=flaky_worker, daemon=True).start()
            time.sleep(0.3)  # let the flaky worker grab a cell first
            start_inprocess_worker(backend.address)
            results = run_sweep(tiny_jobs(), cache=False, backend=backend)
        assert dumps(results) == dumps(run_sweep(tiny_jobs(), jobs=1, cache=False))

    def test_cell_timeout_retries_on_another_worker(self):
        """An attempt exceeding the cell timeout is abandoned and the
        cell retried on a live worker, within budget."""
        policy = CellPolicy(cell_timeout=0.5, retry_budget=3)
        with DistributedBackend(listen="127.0.0.1:0", policy=policy) as backend:
            stalled = threading.Event()

            def stalling_worker():
                sock = socket.create_connection(backend.address)
                rfile = sock.makefile("r", encoding="utf-8")
                backends.send_msg(
                    sock, {"type": "hello", "version": backends.PROTOCOL_VERSION}
                )
                backends.recv_msg(rfile)  # take the cell...
                stalled.set()
                time.sleep(30)  # ...and never answer (hung host)
                sock.close()

            def good_worker_after_stall():
                # Join only once the staller owns the cell, so the
                # retry provably lands on a different worker.
                assert stalled.wait(timeout=20)
                start_inprocess_worker(backend.address)

            threading.Thread(target=stalling_worker, daemon=True).start()
            threading.Thread(target=good_worker_after_stall,
                             daemon=True).start()
            results = run_sweep(tiny_jobs()[:1], cache=False, backend=backend)
            assert stalled.is_set()
        assert dumps(results) == dumps(
            run_sweep(tiny_jobs()[:1], jobs=1, cache=False)
        )

    def test_repeatedly_failing_worker_quarantined(self):
        """quarantine_after failures on one connection stop it from
        eating the whole retry budget; a healthy worker finishes."""
        policy = CellPolicy(retry_budget=10, quarantine_after=2)
        with DistributedBackend(listen="127.0.0.1:0", policy=policy) as backend:
            jobs_seen = []
            got_bye = threading.Event()

            def bad_worker():
                sock = socket.create_connection(backend.address)
                rfile = sock.makefile("r", encoding="utf-8")
                backends.send_msg(
                    sock, {"type": "hello", "version": backends.PROTOCOL_VERSION}
                )
                while True:
                    msg = backends.recv_msg(rfile)
                    if msg is None or msg.get("type") != "job":
                        got_bye.set()  # dismissed by the quarantine
                        return
                    jobs_seen.append(msg["key"])
                    backends.send_msg(
                        sock,
                        {"type": "result", "id": msg["id"],
                         "ok": False, "error": "flaky host"},
                    )
                    if len(jobs_seen) == 2:
                        # Only now bring in the healthy worker, so every
                        # pre-quarantine attempt hit this flaky one.
                        start_inprocess_worker(backend.address)

            threading.Thread(target=bad_worker, daemon=True).start()
            results = run_sweep(tiny_jobs()[:1], cache=False, backend=backend)
            assert got_bye.wait(timeout=10)
        # Exactly quarantine_after attempts reached the flaky worker,
        # and the budget (10) was nowhere near exhausted.
        assert len(jobs_seen) == 2
        assert dumps(results) == dumps(
            run_sweep(tiny_jobs()[:1], jobs=1, cache=False)
        )

    def test_all_attempts_dead_exhausts_retry_budget(self):
        """Dial mode: a worker that keeps dying mid-cell burns the cell's
        retry budget, and the error carries the failure history."""
        server = socket.create_server(("127.0.0.1", 0))

        def doomed_worker():
            while True:  # also swallow the bounded redial attempts
                try:
                    sock, _peer = server.accept()
                except OSError:
                    return
                rfile = sock.makefile("r", encoding="utf-8")
                backends.send_msg(
                    sock, {"type": "hello", "version": backends.PROTOCOL_VERSION}
                )
                backends.recv_msg(rfile)  # take a cell
                rfile.close()  # really close the fd: the coordinator
                sock.close()  # must see EOF, not a half-open socket

        threading.Thread(target=doomed_worker, daemon=True).start()
        host, port = server.getsockname()[:2]
        backend = DistributedBackend(workers=[f"{host}:{port}"],
                                     connect_timeout=2.0)
        with server, pytest.raises(
            RuntimeError, match="retry budget 3 exhausted.*mid-cell"
        ):
            run_sweep(tiny_jobs()[:1], cache=False, backend=backend)

    def test_all_workers_unreachable_raises_with_diagnostics(self):
        """Dial mode: when the lone worker address stops accepting after
        dying mid-cell, the sweep reports the unfinished cells and why."""
        server = socket.create_server(("127.0.0.1", 0))

        def one_shot_worker():
            sock, _peer = server.accept()
            rfile = sock.makefile("r", encoding="utf-8")
            backends.send_msg(
                sock, {"type": "hello", "version": backends.PROTOCOL_VERSION}
            )
            backends.recv_msg(rfile)  # take a cell
            rfile.close()
            sock.close()
            server.close()  # refuse every redial

        threading.Thread(target=one_shot_worker, daemon=True).start()
        host, port = server.getsockname()[:2]
        backend = DistributedBackend(workers=[f"{host}:{port}"],
                                     connect_timeout=2.0)
        with pytest.raises(RuntimeError, match="unfinished.*mid-cell"):
            run_sweep(tiny_jobs()[:1], cache=False, backend=backend)

    def test_protocol_version_mismatch_rejected(self):
        server = socket.create_server(("127.0.0.1", 0))

        def ancient_worker():
            while True:
                try:
                    sock, _peer = server.accept()
                except OSError:
                    return
                backends.send_msg(sock, {"type": "hello", "version": -1})
                sock.recv(4096)
                sock.close()

        threading.Thread(target=ancient_worker, daemon=True).start()
        host, port = server.getsockname()[:2]
        backend = DistributedBackend(workers=[f"{host}:{port}"],
                                     connect_timeout=2.0)
        with server, pytest.raises(RuntimeError, match="protocol"):
            run_sweep(tiny_jobs()[:1], cache=False, backend=backend)

    def test_redials_listening_worker_after_survivors_drained(self):
        """A cell requeued after the queue drained (survivors already
        dismissed) is re-dispatched by re-dialing the worker address."""
        server = socket.create_server(("127.0.0.1", 0))
        connections = []

        def worker_loop():
            while True:
                try:
                    sock, _peer = server.accept()
                except OSError:
                    return
                connections.append(sock)
                if len(connections) == 1:
                    # First connection: take one cell, die mid-cell.
                    rfile = sock.makefile("r", encoding="utf-8")
                    backends.send_msg(
                        sock,
                        {"type": "hello", "version": backends.PROTOCOL_VERSION},
                    )
                    backends.recv_msg(rfile)
                    rfile.close()
                    sock.close()
                else:
                    # The redial: behave like a real worker.
                    with sock:
                        worker_mod.serve_connection(sock)

        threading.Thread(target=worker_loop, daemon=True).start()
        host, port = server.getsockname()[:2]
        backend = DistributedBackend(workers=[f"{host}:{port}"],
                                     connect_timeout=5.0)
        with server:
            results = run_sweep(tiny_jobs()[:1], cache=False, backend=backend)
        assert len(connections) >= 2  # the redial actually happened
        assert dumps(results) == dumps(
            run_sweep(tiny_jobs()[:1], jobs=1, cache=False)
        )

    def test_needs_workers_or_listen(self):
        with pytest.raises(ValueError, match="worker addresses"):
            DistributedBackend()

    def test_connect_worker_survives_multiple_sweeps(self, spawn_worker):
        """A --connect worker redials after each sweep, so one worker
        serves a whole multi-sweep (e.g. ``figures --listen``) session
        and exits cleanly once the coordinator's listener closes."""
        serial = run_sweep(tiny_jobs(), jobs=1, cache=False)
        with DistributedBackend(listen="127.0.0.1:0") as backend:
            host, port = backend.address
            proc = spawn_worker("--connect", f"{host}:{port}", "--no-cache")
            first = run_sweep(tiny_jobs(), cache=False, backend=backend)
            second = run_sweep(tiny_jobs(), cache=False, backend=backend)
        assert dumps(first) == dumps(serial)
        assert dumps(second) == dumps(serial)
        assert proc.wait(timeout=30) == 0  # listener closed -> clean exit
        assert proc.stdout.read().count("served 3 cell(s)") == 2


class TestWorkerProtocol:
    def _handshake(self):
        coord, worker_side = socket.socketpair()
        thread = threading.Thread(
            target=worker_mod.serve_connection, args=(worker_side,), daemon=True
        )
        thread.start()
        rfile = coord.makefile("r", encoding="utf-8")
        hello = backends.recv_msg(rfile)
        assert hello["type"] == "hello"
        assert hello["version"] == backends.PROTOCOL_VERSION
        return coord, rfile, thread

    def test_bad_cell_reports_error_and_survives(self):
        coord, rfile, thread = self._handshake()
        backends.send_msg(coord, {"type": "job", "id": 1, "workload": "nope",
                                  "variant": "Base-CSSD", "params": {}})
        reply = backends.recv_msg(rfile)
        assert reply["ok"] is False
        assert "unknown workload" in reply["error"]
        # The worker survives a failed cell and serves the next one.
        job = SweepJob.make("bc", "DRAM-Only", records_per_thread=R)
        message = {"type": "job", "id": 2}
        message.update(backends.job_to_wire(job))
        backends.send_msg(coord, message)
        reply = backends.recv_msg(rfile)
        assert reply["ok"] is True
        assert reply["result"]["workload"] == "bc"
        backends.send_msg(coord, {"type": "bye"})
        thread.join(timeout=10)
        coord.close()

    def test_unexpected_message_type_reported(self):
        coord, rfile, thread = self._handshake()
        backends.send_msg(coord, {"type": "gossip", "id": 7})
        reply = backends.recv_msg(rfile)
        assert reply["ok"] is False
        assert "gossip" in reply["error"]
        backends.send_msg(coord, {"type": "bye"})
        thread.join(timeout=10)
        coord.close()

    def test_wire_resolves_records_on_coordinator(self, monkeypatch):
        """A worker host's REPRO_RECORDS must never change what a shipped
        cell simulates: the coordinator resolves it into the wire form."""
        monkeypatch.setenv("REPRO_RECORDS", "77")
        job = SweepJob.make("bc", "Base-CSSD")  # no explicit records
        key_on_coordinator = job.key()
        wire = json.loads(json.dumps(backends.job_to_wire(job)))
        assert wire["params"]["records_per_thread"] == 77
        monkeypatch.setenv("REPRO_RECORDS", "9999")  # the "worker host"
        rebuilt = backends.job_from_wire(wire)
        assert rebuilt.kwargs()["records_per_thread"] == 77
        assert rebuilt.key() == key_on_coordinator

    def test_wire_round_trip_preserves_job(self):
        job = SweepJob.make("ycsb-b", "skybyte-full", records_per_thread=R,
                            ssd_overrides={"prefetch_depth": 0}, seed=7)
        rebuilt = backends.job_from_wire(
            json.loads(json.dumps(backends.job_to_wire(job)))
        )
        assert rebuilt == job
        assert rebuilt.key() == job.key()


@pytest.mark.skipif(worker_mod._FORK_CTX is None,
                    reason="preemption needs the fork start method")
class TestWorkerPreemption:
    """A cell the coordinator gave up on must stop *executing* on the
    worker -- not just stop being awaited (the distributed-path bugfix:
    a timed-out cell used to burn the worker slot to completion)."""

    def _handshake(self, monkeypatch, heartbeat_path):
        """serve_connection in a thread, with cells that heartbeat
        forever instead of simulating (fork inherits the patch)."""
        real_execute = worker_mod._execute_job

        def hanging_execute(job):
            if job.workload == "bc":  # the cell under test hangs...
                while True:
                    heartbeat_path.write_text(str(time.monotonic()))
                    time.sleep(0.02)
            return real_execute(job)  # ...any other cell is normal

        monkeypatch.setattr(worker_mod, "_execute_job", hanging_execute)
        coord, worker_side = socket.socketpair()
        thread = threading.Thread(
            target=worker_mod.serve_connection, args=(worker_side,),
            daemon=True,
        )
        thread.start()
        rfile = coord.makefile("r", encoding="utf-8")
        assert backends.recv_msg(rfile)["type"] == "hello"
        return coord, rfile, thread

    def _send_job(self, coord, seq, workload):
        job = SweepJob.make(workload, "Base-CSSD", records_per_thread=R)
        message = {"type": "job", "id": seq, "key": job.key()}
        message.update(backends.job_to_wire(job))
        backends.send_msg(coord, message)

    def _assert_heartbeat_stops(self, path, within=10.0):
        """The hanging child beats every 20ms; silence for 0.5s after a
        kill means it is gone (and stays gone)."""
        deadline = time.monotonic() + within
        while time.monotonic() < deadline:
            before = path.read_text() if path.exists() else ""
            time.sleep(0.5)
            after = path.read_text() if path.exists() else ""
            if before == after:
                return
        raise AssertionError("cell kept executing after preemption")

    def test_cancel_kills_cell_and_frees_the_slot(self, tmp_path,
                                                  monkeypatch):
        beat = tmp_path / "beat"
        coord, rfile, thread = self._handshake(monkeypatch, beat)
        self._send_job(coord, 1, "bc")
        deadline = time.monotonic() + 10
        while not beat.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert beat.exists(), "hanging cell never started"
        backends.send_msg(coord, {"type": "cancel", "id": 1})
        self._assert_heartbeat_stops(beat)
        # No reply is owed for the cancelled cell, and the slot is
        # immediately usable: the next (healthy) cell completes.
        self._send_job(coord, 2, "ycsb")
        reply = backends.recv_msg(rfile)
        assert reply["id"] == 2 and reply["ok"] is True
        assert reply["result"]["workload"] == "ycsb"
        backends.send_msg(coord, {"type": "bye"})
        thread.join(timeout=10)
        assert not thread.is_alive()
        coord.close()

    def test_coordinator_hangup_kills_cell(self, tmp_path, monkeypatch):
        beat = tmp_path / "beat"
        coord, rfile, thread = self._handshake(monkeypatch, beat)
        self._send_job(coord, 1, "bc")
        deadline = time.monotonic() + 10
        while not beat.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert beat.exists(), "hanging cell never started"
        # A coordinator crash is an EOF, not a polite cancel.  SHUT_RDWR
        # (not close) because the forked cell child holds a dup of the
        # worker-side fd until _cell_child drops it.
        coord.shutdown(socket.SHUT_RDWR)
        thread.join(timeout=10)
        assert not thread.is_alive()
        self._assert_heartbeat_stops(beat)
        coord.close()

    def test_timed_out_cell_gets_a_cancel_message(self):
        """Coordinator side of the fix: abandoning a cell on timeout
        sends ``cancel`` before the retry, so a real worker can kill
        the stale attempt."""
        policy = CellPolicy(cell_timeout=0.5, retry_budget=3)
        with DistributedBackend(listen="127.0.0.1:0", policy=policy) as backend:
            cancelled = threading.Event()
            stalled = threading.Event()

            def stalling_worker():
                sock = socket.create_connection(backend.address)
                rfile = sock.makefile("r", encoding="utf-8")
                backends.send_msg(
                    sock, {"type": "hello",
                           "version": backends.PROTOCOL_VERSION}
                )
                job_msg = backends.recv_msg(rfile)
                assert job_msg["type"] == "job"
                stalled.set()
                # Stall the cell but keep listening, like a real worker
                # whose child is simulating: the coordinator's timeout
                # must deliver a cancel for this exact cell.
                note = backends.recv_msg(rfile)
                if note and note.get("type") == "cancel" \
                        and note.get("id") == job_msg["id"]:
                    cancelled.set()

            def good_worker_after_stall():
                assert stalled.wait(timeout=20)
                start_inprocess_worker(backend.address)

            threading.Thread(target=stalling_worker, daemon=True).start()
            threading.Thread(target=good_worker_after_stall,
                             daemon=True).start()
            results = run_sweep(tiny_jobs()[:1], cache=False, backend=backend)
            assert cancelled.wait(timeout=10), \
                "timeout abandoned the cell without sending cancel"
        assert dumps(results) == dumps(
            run_sweep(tiny_jobs()[:1], jobs=1, cache=False)
        )
