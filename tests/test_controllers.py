"""Tests for the Base-CSSD and SkyByte controllers (device behaviour)."""

from repro.config import scaled_config
from repro.core.controller import SkyByteController
from repro.cxl.protocol import M2SOpcode, MemRequest
from repro.sim.engine import Engine
from repro.sim.stats import SimStats, SSD_READ_HIT, SSD_READ_MISS, SSD_WRITE
from repro.ssd.base_controller import BaseCSSDController


def read_req(page, line=0, core=0):
    return MemRequest(opcode=M2SOpcode.MEM_RD, address=page * 4096 + line * 64,
                      core=core)


def write_req(page, line=0, core=0):
    return MemRequest(opcode=M2SOpcode.MEM_WR, address=page * 4096 + line * 64,
                      core=core)


def build_base(ctx=False):
    config = scaled_config(scale=512)
    engine = Engine()
    stats = SimStats()
    ctrl = BaseCSSDController(config, engine, stats, ctx_switch_enabled=ctx)
    ctrl.ftl.precondition(512)
    return ctrl, engine, stats, config


def build_skybyte(ctx=True):
    config = scaled_config(scale=512)
    engine = Engine()
    stats = SimStats()
    ctrl = SkyByteController(config, engine, stats, ctx_switch_enabled=ctx)
    ctrl.ftl.precondition(512)
    return ctrl, engine, stats, config


class TestBaseCSSD:
    def test_read_miss_then_hit(self):
        ctrl, engine, stats, config = build_base()
        miss = ctrl.access(read_req(0), 0.0)
        assert miss.request_class == SSD_READ_MISS
        assert miss.complete_ns >= config.ssd.timing.read_ns
        engine.run()
        hit = ctrl.access(read_req(0, line=1), engine.now)
        assert hit.request_class == SSD_READ_HIT
        assert hit.complete_ns - engine.now < 1000

    def test_write_allocate_fetches_page(self):
        """The granularity-mismatch penalty: a cacheline write to a
        non-resident page costs a whole-page flash read."""
        ctrl, engine, stats, config = build_base()
        reads_before = stats.flash_page_reads
        result = ctrl.access(write_req(3), 0.0)
        assert result.request_class == SSD_WRITE
        assert stats.flash_page_reads == reads_before + 1
        assert result.complete_ns >= config.ssd.timing.read_ns

    def test_dirty_eviction_writes_whole_page(self):
        ctrl, engine, stats, config = build_base()
        ctrl.access(write_req(0), 0.0)
        engine.run()
        # Conflict-evict page 0 by filling its set.
        sets = ctrl.cache.num_sets
        ways = ctrl.cache.ways
        writes_before = stats.flash_page_writes
        for k in range(1, ways + 2):
            ctrl.access(read_req(k * sets), engine.now)
            engine.run()
        assert stats.flash_page_writes > writes_before

    def test_mshr_coalescing_no_duplicate_fetch(self):
        ctrl, engine, stats, config = build_base()
        ctrl.access(read_req(0, line=0, core=0), 0.0)
        reads_after_first = stats.flash_page_reads
        second = ctrl.access(read_req(0, line=1, core=1), 10.0)
        assert stats.flash_page_reads == reads_after_first
        assert second.request_class == SSD_READ_MISS  # still pays the wait

    def test_prefetch_next_page(self):
        ctrl, engine, stats, config = build_base()
        ctrl.access(read_req(10), 0.0)
        assert stats.prefetch_issued >= 1
        assert ctrl.contains_page(11)

    def test_periodic_persistence_flushes_old_dirty(self):
        ctrl, engine, stats, config = build_base()
        ctrl.access(write_req(0), 0.0)
        engine.run()
        writes_before = stats.flash_page_writes
        # Advance past the persistence interval via a later access.
        later = config.ssd.dirty_flush_interval_ns * 2
        ctrl.access(read_req(1), later)
        assert stats.flash_page_writes > writes_before

    def test_invalidate_returns_dirty_mask(self):
        ctrl, engine, stats, config = build_base()
        ctrl.access(write_req(2, line=5), 0.0)
        engine.run()
        mask = ctrl.invalidate_page(2)
        assert mask & (1 << 5)
        assert not ctrl.contains_page(2)

    def test_demote_page_reinstates_dirty(self):
        ctrl, engine, stats, config = build_base()
        ctrl.demote_page(9, dirty_mask=0b11, now=0.0)
        entry = ctrl.cache.peek(9)
        assert entry.dirty_mask == 0b11

    def test_drain_flushes_all_dirty(self):
        ctrl, engine, stats, config = build_base()
        ctrl.access(write_req(1), 0.0)
        engine.run()
        ctrl.drain(engine.now)
        assert not ctrl.cache.dirty_entries()

    def test_delay_hint_when_ctx_enabled(self):
        ctrl, engine, stats, config = build_base(ctx=True)
        result = ctrl.access(read_req(0), 0.0)
        assert result.delay_hint  # 3us read > 2us threshold

    def test_no_hint_when_ctx_disabled(self):
        ctrl, engine, stats, config = build_base(ctx=False)
        result = ctrl.access(read_req(0), 0.0)
        assert not result.delay_hint


class TestSkyByte:
    def test_write_never_hints_and_never_reads_flash(self):
        """§III-A: writes are buffered in the log, no switch needed."""
        ctrl, engine, stats, config = build_skybyte()
        reads_before = stats.flash_page_reads
        result = ctrl.access(write_req(3), 0.0)
        assert result.request_class == SSD_WRITE
        assert not result.delay_hint
        assert stats.flash_page_reads == reads_before
        assert result.complete_ns - 0.0 < 500  # log append speed

    def test_read_hit_from_log(self):
        ctrl, engine, stats, config = build_skybyte()
        ctrl.access(write_req(3, line=7), 0.0)
        result = ctrl.access(read_req(3, line=7), 100.0)
        assert result.request_class == SSD_READ_HIT
        assert not result.delay_hint

    def test_read_miss_hints(self):
        ctrl, engine, stats, config = build_skybyte()
        result = ctrl.access(read_req(0), 0.0)
        assert result.request_class == SSD_READ_MISS
        assert result.delay_hint

    def test_replay_after_fetch_is_hit(self):
        """Step C4: the replayed instruction hits in SSD DRAM."""
        ctrl, engine, stats, config = build_skybyte()
        ctrl.access(read_req(0), 0.0)
        engine.run()
        replay = ctrl.access(read_req(0), engine.now)
        assert replay.request_class == SSD_READ_HIT

    def test_mshr_coalesced_read_no_new_fetch(self):
        ctrl, engine, stats, config = build_skybyte()
        ctrl.access(read_req(0, core=0), 0.0)
        before = stats.flash_page_reads
        second = ctrl.access(read_req(0, line=2, core=1), 1.0)
        assert stats.flash_page_reads == before
        assert second.request_class == SSD_READ_MISS

    def test_invalidate_carries_log_dirty_lines(self):
        ctrl, engine, stats, config = build_skybyte()
        ctrl.access(write_req(4, line=9), 0.0)
        mask = ctrl.invalidate_page(4)
        assert mask & (1 << 9)
        assert not ctrl.contains_page(4)

    def test_demote_reenters_via_write_log(self):
        ctrl, engine, stats, config = build_skybyte()
        appends_before = stats.log_appends
        ctrl.demote_page(6, dirty_mask=0b101, now=0.0)
        assert stats.log_appends == appends_before + 2
        assert ctrl.dram.write_log.has_line(6, 0)
        assert ctrl.dram.write_log.has_line(6, 2)

    def test_drain_empties_log(self):
        ctrl, engine, stats, config = build_skybyte()
        ctrl.access(write_req(1), 0.0)
        ctrl.drain(10.0)
        engine.run()
        assert ctrl.dram.write_log.used_entries == 0

    def test_prefetch_on_read_miss(self):
        ctrl, engine, stats, config = build_skybyte()
        ctrl.access(read_req(20), 0.0)
        assert stats.prefetch_issued >= 1

    def test_warm_access_populates_without_flash(self):
        ctrl, engine, stats, config = build_skybyte()
        stats.enabled = False
        ctrl.warm_access(5, 0, False)
        ctrl.warm_access(6, 1, True)
        stats.enabled = True
        assert ctrl.dram.data_cache.peek(5) is not None
        assert ctrl.dram.write_log.has_line(6, 1)
        assert stats.flash_page_reads == 0
