"""Tests for the flash array timing model."""

import pytest

from repro.config import FLASH_TIMINGS, FlashGeometry
from repro.sim.engine import Engine
from repro.sim.stats import SimStats
from repro.ssd.flash import FlashArray, FlashChannel, PAGE_TRANSFER_NS, PROGRAM_SUSPEND_NS

ULL = FLASH_TIMINGS["ULL"]


def small_geometry(channels=2, chips=1, dies=2):
    return FlashGeometry(
        channels=channels,
        chips_per_channel=chips,
        dies_per_chip=dies,
        planes_per_die=1,
        blocks_per_plane=4,
        pages_per_block=8,
    )


def make_array(**kwargs):
    engine = Engine()
    stats = SimStats()
    array = FlashArray(small_geometry(**kwargs), ULL, engine, stats)
    return array, engine, stats


class TestGeometry:
    def test_paper_geometry_is_128gb(self):
        geo = FlashGeometry()
        assert geo.total_bytes == 128 * 1024 ** 3

    def test_address_arithmetic(self):
        array, _, _ = make_array()
        geo = array.geometry
        ppa = geo.pages_per_channel + 3  # second channel, page 3
        assert array.channel_of(ppa) == 1
        assert array.block_of(ppa) == geo.blocks_per_channel
        assert array.page_in_block(ppa) == 3

    def test_block_channel_roundtrip(self):
        array, _, _ = make_array()
        geo = array.geometry
        for block in range(geo.total_blocks):
            ppa = array.first_ppa_of_block(block)
            assert array.block_of(ppa) == block
            assert array.channel_of(ppa) == array.channel_of_block(block)


class TestChannelTiming:
    def test_single_read_latency(self):
        array, _, _ = make_array()
        done = array.read_page(0, now=0.0)
        assert done == pytest.approx(ULL.read_ns + PAGE_TRANSFER_NS)

    def test_reads_overlap_across_dies(self):
        array, _, _ = make_array(dies=2)
        d1 = array.read_page(0, 0.0)
        d2 = array.read_page(1, 0.0)
        # Two dies: both reads' array ops overlap; transfers differ only
        # by bus-free model (fixed per-op here).
        assert d2 - d1 < ULL.read_ns

    def test_reads_queue_on_one_die(self):
        engine = Engine()
        ch = FlashChannel(0, dies=1, timing=ULL, engine=engine)
        d1 = ch.submit_read(0.0)
        d2 = ch.submit_read(0.0)
        assert d2 - d1 == pytest.approx(ULL.read_ns)

    def test_program_latency(self):
        array, _, _ = make_array()
        done = array.program_page(0, 0.0)
        assert done == pytest.approx(PAGE_TRANSFER_NS + ULL.program_ns)

    def test_erase_latency(self):
        array, _, _ = make_array()
        done = array.erase_block(0, 0.0)
        assert done == pytest.approx(ULL.erase_ns)

    def test_read_suspends_program(self):
        engine = Engine()
        ch = FlashChannel(0, dies=1, timing=ULL, engine=engine)
        ch.submit_program(0.0)
        done = ch.submit_read(0.0)
        # The read pays suspension, not the full program latency.
        assert done == pytest.approx(
            PROGRAM_SUSPEND_NS + ULL.read_ns + PAGE_TRANSFER_NS
        )
        assert done < ULL.program_ns

    def test_read_waits_for_erase(self):
        engine = Engine()
        ch = FlashChannel(0, dies=1, timing=ULL, engine=engine)
        ch.submit_erase(0.0)
        done = ch.submit_read(0.0)
        # Erases are not suspendable: this is the GC-blocking behaviour.
        assert done >= ULL.erase_ns

    def test_counters_track_and_decrement(self):
        array, engine, _ = make_array()
        array.read_page(0, 0.0)
        array.program_page(1, 0.0)
        ch = array.channels[0]
        assert ch.queued_reads == 1
        assert ch.queued_programs == 1
        engine.run()
        assert ch.queued_reads == 0
        assert ch.queued_programs == 0

    def test_completion_callback_fires(self):
        array, engine, _ = make_array()
        fired = []
        array.read_page(0, 0.0, on_done=lambda: fired.append(engine.now))
        engine.run()
        assert fired == [pytest.approx(ULL.read_ns + PAGE_TRANSFER_NS)]


class TestEstimators:
    def test_fifo_estimate_matches_algorithm1(self):
        """Algorithm 1 lines 5-6: read*(nr+1) + program*nw + erase*ne."""
        engine = Engine()
        ch = FlashChannel(0, dies=4, timing=ULL, engine=engine)
        ch.queued_reads = 2
        ch.queued_programs = 1
        ch.queued_erases = 1
        expected = ULL.read_ns * 3 + ULL.program_ns * 1 + ULL.erase_ns * 1
        assert ch.estimate_read_fifo_ns() == pytest.approx(expected)

    def test_die_aware_estimate_below_fifo(self):
        engine = Engine()
        ch = FlashChannel(0, dies=8, timing=ULL, engine=engine)
        ch.queued_reads = 8
        assert ch.estimate_read_ns() < ch.estimate_read_fifo_ns()

    def test_idle_estimate_exceeds_device_read(self):
        engine = Engine()
        ch = FlashChannel(0, dies=8, timing=ULL, engine=engine)
        assert ch.estimate_read_ns() >= ULL.read_ns

    def test_estimate_grows_with_queue(self):
        engine = Engine()
        ch = FlashChannel(0, dies=2, timing=ULL, engine=engine)
        e0 = ch.estimate_read_ns()
        ch.queued_reads = 4
        assert ch.estimate_read_ns() > e0


class TestArrayAccounting:
    def test_stats_count_operations(self):
        array, _, stats = make_array()
        array.read_page(0, 0.0)
        array.program_page(0, 0.0)
        array.erase_block(0, 0.0)
        assert stats.flash_page_reads == 1
        assert stats.flash_page_writes == 1
        assert stats.flash_block_erases == 1

    def test_stats_gated_by_warmup(self):
        array, _, stats = make_array()
        stats.enabled = False
        array.read_page(0, 0.0)
        assert stats.flash_page_reads == 0

    def test_ppa_bounds_checked(self):
        array, _, _ = make_array()
        with pytest.raises(ValueError):
            array.read_page(array.geometry.total_pages, 0.0)
        with pytest.raises(ValueError):
            array.erase_block(array.geometry.total_blocks, 0.0)

    def test_least_loaded_channel(self):
        array, _, _ = make_array()
        array.read_page(0, 0.0)  # busy channel 0
        assert array.least_loaded_channel(0.0) != 0 or array.channels[0].free_at == 0
