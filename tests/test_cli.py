"""Tests for the ``python -m repro`` command line interface."""

import json

import pytest

from repro.cli import FIGURES, main

R = "80"  # records per thread: plumbing-sized


def test_run_prints_summary(capsys, tmp_path):
    out_json = tmp_path / "run.json"
    rc = main(["run", "bc", "Base-CSSD", "--records", R, "--no-cache",
               "--json", str(out_json)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bc / Base-CSSD" in out
    assert "throughput_ipns" in out
    data = json.loads(out_json.read_text())
    assert data["workload"] == "bc"
    assert data["stats"]["scalars"]["instructions"] > 0


def test_run_accepts_aliases_and_case(capsys):
    rc = main(["run", "YCSB-B", "skybyte-full", "--records", R, "--no-cache"])
    assert rc == 0
    assert "ycsb / SkyByte-Full" in capsys.readouterr().out


def test_run_unknown_workload_fails_cleanly(capsys):
    rc = main(["run", "nope", "Base-CSSD", "--records", R, "--no-cache"])
    assert rc == 2
    assert "unknown workload" in capsys.readouterr().err


def test_sweep_writes_results_and_reports_cache(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    output = tmp_path / "results.json"
    argv = ["sweep", "--workloads", "ycsb-b", "--variants", "skybyte-full",
            "--records", R, "--jobs", "2", "--cache-dir", str(cache_dir),
            "--output", str(output), "--quiet"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "0 hit(s), 1 miss(es)" in first

    payload = json.loads(output.read_text())
    assert payload["workloads"] == ["ycsb"]
    assert payload["variants"] == ["SkyByte-Full"]
    assert len(payload["results"]) == 1
    assert payload["results"][0]["stats"]["scalars"]["instructions"] > 0
    assert payload["cache"] == {"hits": 0, "misses": 1, "dir": str(cache_dir)}

    # Re-run: 100% cache hits, identical stats.
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "1 hit(s), 0 miss(es) (100% hits)" in second
    repeat = json.loads(output.read_text())
    assert repeat["results"] == payload["results"]


def test_sweep_stream_emits_ndjson_per_cell(capsys, tmp_path):
    out = tmp_path / "stream.json"
    rc = main(["sweep", "--workloads", "bc", "--variants",
               "Base-CSSD,DRAM-Only", "--records", R, "--no-cache",
               "--stream", "--output", str(out)])
    assert rc == 0
    lines = [json.loads(line)
             for line in capsys.readouterr().out.splitlines()
             if line.startswith("{")]
    assert [(e["completed"], e["total"]) for e in lines] == [(1, 2), (2, 2)]
    assert {e["variant"] for e in lines} == {"Base-CSSD", "DRAM-Only"}
    assert all(e["source"] == "run" for e in lines)
    # Streaming never changes results: the saved JSON matches a
    # barrier-mode run byte for byte.
    barrier = tmp_path / "barrier.json"
    assert main(["sweep", "--workloads", "bc", "--variants",
                 "Base-CSSD,DRAM-Only", "--records", R, "--no-cache",
                 "--quiet", "--output", str(barrier)]) == 0
    capsys.readouterr()
    assert (json.loads(out.read_text())["results"]
            == json.loads(barrier.read_text())["results"])


def test_cell_policy_flags_reach_backend():
    import argparse

    from repro.cli import _backend_from_args

    args = argparse.Namespace(listen=None, workers=["h:1"], backend=None,
                              jobs=None, registry=None, cell_timeout=1.5,
                              retry_budget=2)
    backend = _backend_from_args(args)
    assert backend.policy.cell_timeout == 1.5
    assert backend.policy.retry_budget == 2


def test_registry_flag_builds_registry_backend():
    import argparse

    from repro.cli import _backend_from_args

    args = argparse.Namespace(listen=None, workers=None, backend=None,
                              jobs=None, registry="reghost:7470",
                              cell_timeout=None, retry_budget=None)
    backend = _backend_from_args(args)
    try:
        assert backend.registry == ("reghost", 7470)
        assert backend.workers == []
    finally:
        backend.close()


def test_registry_conflicts_with_non_distributed_backend(capsys):
    rc = main(["sweep", "--workloads", "bc", "--variants", "Base-CSSD",
               "--records", R, "--no-cache", "--quiet",
               "--registry", "reghost:7470", "--backend", "thread"])
    assert rc == 2
    assert "incompatible" in capsys.readouterr().err


def test_sweep_multiple_cells_table(capsys, tmp_path):
    rc = main(["sweep", "--workloads", "bc,ycsb", "--variants",
               "Base-CSSD,DRAM-Only", "--records", R, "--no-cache", "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "= 4 cell(s)" in out
    assert "cache: disabled" in out
    assert out.count("DRAM-Only") >= 2


def test_figures_subcommand_writes_json(capsys, tmp_path):
    out_dir = tmp_path / "figs"
    rc = main(["figures", "fig2", "--workloads", "bc", "--records", R,
               "--no-cache", "--output", str(out_dir), "--quiet"])
    assert rc == 0
    data = json.loads((out_dir / "fig2.json").read_text())
    assert data["bc"]["slowdown"] > 1.0


def test_figures_rejects_unknown_name(capsys, tmp_path):
    rc = main(["figures", "fig999", "--output", str(tmp_path)])
    assert rc == 2
    assert "unknown figure" in capsys.readouterr().err


def test_figures_registry_covers_every_driver():
    expected = {"fig2", "fig3", "fig4", "fig5", "fig6", "fig9", "fig10",
                "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
                "fig20", "fig21", "fig22", "fig23", "table3", "cost"}
    assert expected <= set(FIGURES)


def test_sweep_scenario_option(capsys, tmp_path):
    out = tmp_path / "scenario.json"
    rc = main(["sweep", "--scenario", "web-tier", "--variants", "Base-CSSD",
               "--records", R, "--no-cache", "--quiet", "-o", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["workloads"] == ["web-tier"]
    assert payload["results"][0]["workload"] == "web-tier"


def test_sweep_scenario_mixes_with_workloads(capsys):
    rc = main(["sweep", "--workloads", "bc", "--scenario", "tab1-ycsb",
               "--variants", "Base-CSSD", "--records", R, "--no-cache",
               "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bc" in out and "tab1-ycsb" in out


def test_sweep_unknown_scenario_fails_cleanly(capsys):
    rc = main(["sweep", "--scenario", "nope", "--records", R, "--no-cache"])
    assert rc == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_run_accepts_scenario_names(capsys):
    rc = main(["run", "graph-walk", "Base-CSSD", "--records", R,
               "--no-cache"])
    assert rc == 0
    assert "graph-walk / Base-CSSD" in capsys.readouterr().out


# -- trace gen / inspect / capture / replay ---------------------------------


def test_trace_gen_inspect_replay_roundtrip(capsys, tmp_path):
    trace = tmp_path / "t.sbt"
    rc = main(["trace", "gen", "web-tier", "--threads", "2", "--records", R,
               "-o", str(trace)])
    assert rc == 0
    assert trace.is_file()
    capsys.readouterr()

    assert main(["trace", "inspect", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "web-tier" in out and "records" in out

    out_json = tmp_path / "replay.json"
    rc = main(["trace", "replay", str(trace), "--variant", "Base-CSSD",
               "--no-cache", "--json", str(out_json)])
    assert rc == 0
    assert json.loads(out_json.read_text())["workload"] == "web-tier"


def test_trace_gen_multiple_names_builds_colocation(capsys, tmp_path):
    trace = tmp_path / "coloc.sbt"
    rc = main(["trace", "gen", "web-tier", "log-ingest", "--threads", "1",
               "--records", R, "-o", str(trace)])
    assert rc == 0
    capsys.readouterr()
    assert main(["trace", "inspect", str(trace), "--json"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["threads"] == 2
    assert info["meta"]["kind"] == "colocation"
    assert [t["name"] for t in info["meta"]["tenants"]] == [
        "web-tier", "log-ingest"]


def test_trace_capture_then_replay_is_bit_exact(capsys, tmp_path):
    trace = tmp_path / "cap.sbt"
    cap_json = tmp_path / "cap.json"
    rep_json = tmp_path / "rep.json"
    rc = main(["trace", "capture", "bc", "SkyByte-W", "--records", R,
               "-o", str(trace)])
    assert rc == 0
    rc = main(["trace", "replay", str(trace), "--no-cache",
               "--json", str(rep_json)])
    assert rc == 0
    rc = main(["run", "bc", "SkyByte-W", "--records", R, "--no-cache",
               "--json", str(cap_json)])
    assert rc == 0
    replayed = json.loads(rep_json.read_text())
    direct = json.loads(cap_json.read_text())
    assert (json.dumps(replayed["stats"], sort_keys=True)
            == json.dumps(direct["stats"], sort_keys=True))


def test_trace_replay_missing_file_fails_cleanly(capsys, tmp_path):
    rc = main(["trace", "replay", str(tmp_path / "missing.sbt")])
    assert rc == 2
    assert "error:" in capsys.readouterr().err


def test_trace_replay_truncated_file_fails_cleanly(capsys, tmp_path):
    trace = tmp_path / "t.sbt"
    assert main(["trace", "gen", "log-ingest", "--threads", "1",
                 "--records", R, "-o", str(trace)]) == 0
    trace.write_bytes(trace.read_bytes()[:-10])
    capsys.readouterr()
    rc = main(["trace", "replay", str(trace), "--no-cache"])
    assert rc == 2
    assert "truncated" in capsys.readouterr().err


def test_trace_gen_unknown_name_fails_cleanly(capsys, tmp_path):
    rc = main(["trace", "gen", "nope", "-o", str(tmp_path / "x.sbt")])
    assert rc == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cache_stats_path_and_clear(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    main(["sweep", "--workloads", "bc", "--variants", "Base-CSSD",
          "--records", R, "--cache-dir", str(cache_dir), "--quiet"])
    capsys.readouterr()

    assert main(["cache", "path", "--cache-dir", str(cache_dir)]) == 0
    assert capsys.readouterr().out.strip() == str(cache_dir)

    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    assert "entries:   1" in capsys.readouterr().out

    assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
    assert "removed 1 cached result(s)" in capsys.readouterr().out

    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    assert "entries:   0" in capsys.readouterr().out


def test_sweep_thread_backend_matches_local(capsys, tmp_path):
    out_local = tmp_path / "local.json"
    out_thread = tmp_path / "thread.json"
    base = ["sweep", "--workloads", "bc", "--variants", "Base-CSSD,DRAM-Only",
            "--records", R, "--no-cache", "--quiet"]
    assert main(base + ["--backend", "local", "--output", str(out_local)]) == 0
    assert main(base + ["--backend", "thread", "--jobs", "2",
                        "--output", str(out_thread)]) == 0
    capsys.readouterr()
    local = json.loads(out_local.read_text())
    threaded = json.loads(out_thread.read_text())
    assert local["results"] == threaded["results"]
    assert threaded["backend"] == "thread[jobs=2]"


def test_sweep_distributed_backend_matches_local(capsys, tmp_path, spawn_worker):
    """The acceptance path: ``sweep --backend distributed --workers
    localhost:PORT`` against a real worker subprocess is byte-identical
    to ``--backend local``."""
    from _worker_utils import read_worker_address

    proc = spawn_worker("--listen", "127.0.0.1:0", "--once", "--no-cache")
    address = read_worker_address(proc)
    out_local = tmp_path / "local.json"
    out_dist = tmp_path / "dist.json"
    base = ["sweep", "--workloads", "bc", "--variants", "Base-CSSD,DRAM-Only",
            "--records", R, "--no-cache", "--quiet"]
    assert main(base + ["--backend", "local", "--output", str(out_local)]) == 0
    assert main(base + ["--backend", "distributed", "--workers", address,
                        "--output", str(out_dist)]) == 0
    capsys.readouterr()
    assert proc.wait(timeout=30) == 0
    local = json.loads(out_local.read_text())
    dist = json.loads(out_dist.read_text())
    assert json.dumps(local["results"], sort_keys=True) == json.dumps(
        dist["results"], sort_keys=True
    )


def test_sweep_distributed_without_workers_fails_cleanly(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
    rc = main(["sweep", "--workloads", "bc", "--variants", "Base-CSSD",
               "--records", R, "--no-cache", "--quiet",
               "--backend", "distributed"])
    assert rc == 2
    assert "worker addresses" in capsys.readouterr().err


def test_cache_stats_reports_lifetime_counters(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    argv = ["sweep", "--workloads", "bc", "--variants", "Base-CSSD",
            "--records", R, "--cache-dir", str(cache_dir), "--quiet"]
    main(argv)
    main(argv)  # second run: one hit
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries:   1" in out
    assert "cap:       unbounded" in out
    # The cold-start miss predates the cache directory, so by design it
    # is not in the lifetime counters (no directory is conjured for it).
    assert "1 hit(s), 0 miss(es), 1 put(s), 0 eviction(s)" in out


def test_cache_prune_requires_cap(capsys, tmp_path):
    rc = main(["cache", "prune", "--cache-dir", str(tmp_path)])
    assert rc == 2
    assert "size cap" in capsys.readouterr().err


def test_cache_prune_evicts_lru(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    base = ["sweep", "--workloads", "bc", "--variants", "Base-CSSD",
            "--cache-dir", str(cache_dir), "--quiet"]
    main(base + ["--records", R])
    main(base + ["--records", str(int(R) + 1)])  # a second, newer entry
    capsys.readouterr()
    entries = sorted(cache_dir.glob("*.json"))
    keep = max(p.stat().st_size for p in entries if p.name != "index.json")
    assert main(["cache", "prune", "--cache-dir", str(cache_dir),
                 "--max-bytes", str(keep)]) == 0
    assert "evicted 1 entry" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    assert "entries:   1" in capsys.readouterr().out


def test_listen_conflicts_with_non_distributed_backend(capsys):
    rc = main(["sweep", "--workloads", "bc", "--variants", "Base-CSSD",
               "--records", R, "--no-cache", "--quiet",
               "--listen", "127.0.0.1:0", "--backend", "thread"])
    assert rc == 2
    assert "incompatible" in capsys.readouterr().err


def test_listen_keeps_explicit_workers():
    """--listen plus --workers builds the mixed topology (dial out AND
    accept dial-ins), not a listen-only backend."""
    import argparse

    from repro.cli import _backend_from_args

    args = argparse.Namespace(listen="127.0.0.1:0",
                              workers=["hostA:7461,hostB:7462"],
                              backend=None, jobs=None)
    backend = _backend_from_args(args)
    try:
        assert backend.workers == [("hostA", 7461), ("hostB", 7462)]
        assert backend.address is not None
    finally:
        backend.close()


def test_worker_requires_a_mode():
    with pytest.raises(SystemExit):
        main(["worker"])


def test_cache_dir_env_override(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
    assert main(["cache", "path"]) == 0
    assert capsys.readouterr().out.strip() == str(tmp_path / "env-cache")


def test_records_env_default(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RECORDS", R)
    rc = main(["sweep", "--workloads", "bc", "--variants", "Base-CSSD",
               "--no-cache", "--quiet"])
    assert rc == 0
    assert f"{R} records/thread" in capsys.readouterr().out


@pytest.mark.parametrize("argv", [[], ["bogus"]])
def test_bad_invocations_exit_nonzero(argv):
    with pytest.raises(SystemExit):
        main(argv)
