"""Tests for the ``python -m repro`` command line interface."""

import json

import pytest

from repro.cli import FIGURES, main

R = "80"  # records per thread: plumbing-sized


def test_run_prints_summary(capsys, tmp_path):
    out_json = tmp_path / "run.json"
    rc = main(["run", "bc", "Base-CSSD", "--records", R, "--no-cache",
               "--json", str(out_json)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bc / Base-CSSD" in out
    assert "throughput_ipns" in out
    data = json.loads(out_json.read_text())
    assert data["workload"] == "bc"
    assert data["stats"]["scalars"]["instructions"] > 0


def test_run_accepts_aliases_and_case(capsys):
    rc = main(["run", "YCSB-B", "skybyte-full", "--records", R, "--no-cache"])
    assert rc == 0
    assert "ycsb / SkyByte-Full" in capsys.readouterr().out


def test_run_unknown_workload_fails_cleanly(capsys):
    rc = main(["run", "nope", "Base-CSSD", "--records", R, "--no-cache"])
    assert rc == 2
    assert "unknown workload" in capsys.readouterr().err


def test_sweep_writes_results_and_reports_cache(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    output = tmp_path / "results.json"
    argv = ["sweep", "--workloads", "ycsb-b", "--variants", "skybyte-full",
            "--records", R, "--jobs", "2", "--cache-dir", str(cache_dir),
            "--output", str(output), "--quiet"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "0 hit(s), 1 miss(es)" in first

    payload = json.loads(output.read_text())
    assert payload["workloads"] == ["ycsb"]
    assert payload["variants"] == ["SkyByte-Full"]
    assert len(payload["results"]) == 1
    assert payload["results"][0]["stats"]["scalars"]["instructions"] > 0
    assert payload["cache"] == {"hits": 0, "misses": 1, "dir": str(cache_dir)}

    # Re-run: 100% cache hits, identical stats.
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "1 hit(s), 0 miss(es) (100% hits)" in second
    repeat = json.loads(output.read_text())
    assert repeat["results"] == payload["results"]


def test_sweep_multiple_cells_table(capsys, tmp_path):
    rc = main(["sweep", "--workloads", "bc,ycsb", "--variants",
               "Base-CSSD,DRAM-Only", "--records", R, "--no-cache", "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "= 4 cell(s)" in out
    assert "cache: disabled" in out
    assert out.count("DRAM-Only") >= 2


def test_figures_subcommand_writes_json(capsys, tmp_path):
    out_dir = tmp_path / "figs"
    rc = main(["figures", "fig2", "--workloads", "bc", "--records", R,
               "--no-cache", "--output", str(out_dir), "--quiet"])
    assert rc == 0
    data = json.loads((out_dir / "fig2.json").read_text())
    assert data["bc"]["slowdown"] > 1.0


def test_figures_rejects_unknown_name(capsys, tmp_path):
    rc = main(["figures", "fig999", "--output", str(tmp_path)])
    assert rc == 2
    assert "unknown figure" in capsys.readouterr().err


def test_figures_registry_covers_every_driver():
    expected = {"fig2", "fig3", "fig4", "fig5", "fig6", "fig9", "fig10",
                "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
                "fig20", "fig21", "fig22", "fig23", "table3", "cost"}
    assert expected <= set(FIGURES)


def test_cache_stats_path_and_clear(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    main(["sweep", "--workloads", "bc", "--variants", "Base-CSSD",
          "--records", R, "--cache-dir", str(cache_dir), "--quiet"])
    capsys.readouterr()

    assert main(["cache", "path", "--cache-dir", str(cache_dir)]) == 0
    assert capsys.readouterr().out.strip() == str(cache_dir)

    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    assert "entries:   1" in capsys.readouterr().out

    assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
    assert "removed 1 cached result(s)" in capsys.readouterr().out

    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    assert "entries:   0" in capsys.readouterr().out


def test_cache_dir_env_override(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
    assert main(["cache", "path"]) == 0
    assert capsys.readouterr().out.strip() == str(tmp_path / "env-cache")


def test_records_env_default(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RECORDS", R)
    rc = main(["sweep", "--workloads", "bc", "--variants", "Base-CSSD",
               "--no-cache", "--quiet"])
    assert rc == 0
    assert f"{R} records/thread" in capsys.readouterr().out


@pytest.mark.parametrize("argv", [[], ["bogus"]])
def test_bad_invocations_exit_nonzero(argv):
    with pytest.raises(SystemExit):
        main(argv)
