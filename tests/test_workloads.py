"""Tests for the Table I workload models and trace generation."""

import pytest

from repro.config import GB, PAGE_SIZE
from repro.workloads.suites import TABLE_I, WORKLOAD_NAMES, get_model, get_spec
from repro.workloads.trace import (
    trace_mpki,
    trace_write_ratio,
)

#: Table I ground truth: (footprint GB, write ratio, MPKI).
TABLE_I_EXPECTED = {
    "bfs-dense": (9.13, 0.25, 122.9),
    "bc": (8.18, 0.11, 39.4),
    "radix": (9.60, 0.29, 7.1),
    "srad": (8.16, 0.24, 7.5),
    "ycsb": (9.61, 0.05, 92.2),
    "tpcc": (15.77, 0.36, 1.0),
    "dlrm": (12.35, 0.32, 5.1),
}


class TestTableI:
    def test_all_seven_workloads_present(self):
        assert set(TABLE_I) == set(TABLE_I_EXPECTED)
        assert sorted(WORKLOAD_NAMES) == sorted(TABLE_I)

    @pytest.mark.parametrize("name", sorted(TABLE_I_EXPECTED))
    def test_spec_matches_table(self, name):
        gbs, ratio, mpki = TABLE_I_EXPECTED[name]
        spec = get_spec(name)
        assert spec.footprint_bytes == pytest.approx(gbs * GB, rel=0.01)
        assert spec.write_ratio == pytest.approx(ratio)
        assert spec.mpki == pytest.approx(mpki)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            get_spec("spec2017")

    def test_footprint_scaling(self):
        spec = get_spec("bc")
        assert spec.footprint_pages(512) == pytest.approx(
            spec.footprint_bytes / 512 / PAGE_SIZE, rel=0.01
        )


class TestTraceGeneration:
    def test_deterministic_by_seed(self):
        a = get_model("bc", seed=7).generate_thread(0, 4, 500)
        b = get_model("bc", seed=7).generate_thread(0, 4, 500)
        assert a == b

    def test_different_seeds_differ(self):
        a = get_model("bc", seed=7).generate_thread(0, 4, 500)
        b = get_model("bc", seed=8).generate_thread(0, 4, 500)
        assert a != b

    def test_threads_get_distinct_streams(self):
        model = get_model("bc")
        t0 = model.generate_thread(0, 4, 300)
        t1 = model.generate_thread(1, 4, 300)
        assert t0 != t1

    def test_record_count(self):
        trace = get_model("ycsb").generate_thread(0, 1, 1000)
        assert len(trace) == 1000

    def test_addresses_within_footprint(self):
        model = get_model("tpcc")
        trace = model.generate_thread(0, 1, 2000)
        limit = model.pages * PAGE_SIZE
        assert all(0 <= addr < limit for _, _, addr in trace)

    def test_addresses_cacheline_aligned(self):
        trace = get_model("bc").generate_thread(0, 1, 500)
        assert all(addr % 64 == 0 for _, _, addr in trace)

    @pytest.mark.parametrize("name", sorted(TABLE_I_EXPECTED))
    def test_write_ratio_approximated(self, name):
        trace = get_model(name).generate_thread(0, 1, 4000)
        expected = get_spec(name).write_ratio
        assert trace_write_ratio(trace) == pytest.approx(expected, abs=0.06)

    @pytest.mark.parametrize("name", ["bc", "tpcc", "ycsb"])
    def test_mpki_approximated(self, name):
        trace = get_model(name).generate_thread(0, 1, 4000)
        expected = get_spec(name).mpki
        assert trace_mpki(trace) == pytest.approx(expected, rel=0.35)

    def test_partitioned_threads_disjoint_reads(self):
        model = get_model("radix")
        t0 = model.generate_thread(0, 4, 800)
        t3 = model.generate_thread(3, 4, 800)
        # Reads stay in each thread's partition (hot writes are shared).
        p0 = {a // PAGE_SIZE for _, w, a in t0 if not w}
        p3 = {a // PAGE_SIZE for _, w, a in t3 if not w}
        assert not (p0 & p3)

    def test_hot_writes_concentrate(self):
        """A large share of writes lands on a small shared line set."""
        model = get_model("tpcc")
        trace = model.generate_thread(0, 1, 4000)
        writes = [a for _, w, a in trace if w]
        distinct = len(set(writes))
        assert distinct < len(writes) * 0.5

    def test_zipf_skews_page_popularity(self):
        model = get_model("ycsb")
        trace = model.generate_thread(0, 1, 6000)
        from collections import Counter

        counts = Counter(a // PAGE_SIZE for _, _, a in trace)
        top = sum(c for _, c in counts.most_common(len(counts) // 20))
        assert top / len(trace) > 0.25  # top 5% of pages >25% of traffic

    def test_generate_returns_per_thread_traces(self):
        traces = get_model("bc").generate(3, 200)
        assert len(traces) == 3
        assert all(len(t) == 200 for t in traces)
