"""Tests for statistics collection: histograms, locality, AMAT."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    HOST_DRAM,
    LatencyHistogram,
    LocalityTracker,
    REQUEST_CLASSES,
    SimStats,
    SSD_READ_HIT,
    SSD_READ_MISS,
    SSD_WRITE,
)


class TestLatencyHistogram:
    def test_mean_and_count(self):
        h = LatencyHistogram()
        for v in (100, 200, 300):
            h.record(v)
        assert h.count == 3
        assert h.mean == pytest.approx(200.0)

    def test_percentile_brackets_value(self):
        h = LatencyHistogram()
        for _ in range(99):
            h.record(100.0)
        h.record(1_000_000.0)
        # p50 should be near 100ns (upper bucket edge), p100 near 1ms.
        assert h.percentile(50) <= 200.0
        assert h.percentile(100) >= 1_000_000.0 * 0.7

    def test_fraction_below(self):
        h = LatencyHistogram()
        for _ in range(90):
            h.record(100.0)
        for _ in range(10):
            h.record(100_000.0)
        assert h.fraction_below(300.0) == pytest.approx(0.9)
        assert h.fraction_below(1e9) == pytest.approx(1.0)

    def test_cdf_monotone(self):
        h = LatencyHistogram()
        for v in (10, 100, 1000, 10_000, 100_000):
            for _ in range(5):
                h.record(v)
        cdf = h.cdf()
        xs = [p[0] for p in cdf]
        ys = [p[1] for p in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_sub_nanosecond_clamped(self):
        h = LatencyHistogram()
        h.record(0.0)
        assert h.count == 1
        assert h.min >= 1.0

    @given(st.lists(st.floats(min_value=1.0, max_value=1e8), min_size=1, max_size=200))
    def test_percentiles_monotone_property(self, values):
        h = LatencyHistogram()
        for v in values:
            h.record(v)
        ps = [h.percentile(p) for p in (10, 25, 50, 75, 90, 99, 100)]
        assert ps == sorted(ps)

    @given(st.lists(st.floats(min_value=1.0, max_value=1e7), min_size=1, max_size=100))
    def test_mean_within_range_property(self, values):
        h = LatencyHistogram()
        for v in values:
            h.record(v)
        assert min(values) * 0.99 <= h.mean <= max(values) * 1.01

    # -- percentile edges (the QoS figure's p99 source) ---------------------

    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram().percentile(99) == 0.0
        assert LatencyHistogram().count_above(1.0) == 0

    def test_single_sample_every_percentile_is_its_bucket_edge(self):
        h = LatencyHistogram()
        h.record(5000.0)
        edges = {h.percentile(p) for p in (1, 50, 99, 100)}
        assert len(edges) == 1
        (edge,) = edges
        assert 5000.0 <= edge <= 5000.0 * 10 ** (1 / h.BUCKETS_PER_DECADE)

    def test_bucket_boundary_exactness(self):
        """A sample exactly on a decade boundary lands in bucket
        ``log10(v) * 10`` and reports that bucket's upper edge."""
        h = LatencyHistogram()
        h.record(100.0)  # bucket int(2.0 * 10) = 20
        assert h.percentile(50) == pytest.approx(10 ** 2.1)
        assert h.percentile(99) == pytest.approx(10 ** 2.1)

    def test_p50_p99_ordering_with_heavy_tail(self):
        h = LatencyHistogram()
        for _ in range(98):
            h.record(100.0)
        h.record(50_000.0)
        h.record(60_000.0)
        assert h.percentile(50) < h.percentile(99)
        assert h.percentile(99) >= 50_000.0

    def test_count_above_is_slo_violation_counter(self):
        h = LatencyHistogram()
        for _ in range(9):
            h.record(100.0)
        h.record(1_000_000.0)
        assert h.count_above(20_000.0) == 1
        assert h.count_above(1e9) == 0
        # Threshold below every bucket edge counts everything.
        assert h.count_above(0.5) == 10

    @given(
        a=st.lists(st.floats(min_value=1.0, max_value=1e8), max_size=80),
        b=st.lists(st.floats(min_value=1.0, max_value=1e8), max_size=80),
    )
    def test_merge_is_bucket_exact(self, a, b):
        """merge(other) then querying == recording every sample here."""
        left, right, both = (LatencyHistogram() for _ in range(3))
        for v in a:
            left.record(v)
            both.record(v)
        for v in b:
            right.record(v)
            both.record(v)
        left.merge(right)
        assert left.count == both.count
        assert left.cdf() == both.cdf()
        assert left.mean == pytest.approx(both.mean)
        assert left.max == both.max
        for p in (50, 99):
            assert left.percentile(p) == both.percentile(p)


class TestLocalityTracker:
    def test_cdf_counts_pages(self):
        t = LocalityTracker()
        t.record(1)
        t.record(1)
        t.record(64)
        assert t.count == 3
        assert t.fraction_of_pages_below(0.4) == pytest.approx(2 / 3)

    def test_mean_ratio(self):
        t = LocalityTracker()
        t.record(32)
        assert t.mean_ratio() == pytest.approx(0.5)

    def test_clamping(self):
        t = LocalityTracker()
        t.record(1000)
        t.record(-5)
        assert t.count == 2
        assert t.fraction_of_pages_below(0.0) == pytest.approx(0.5)

    @given(st.lists(st.integers(min_value=0, max_value=64), min_size=1, max_size=300))
    def test_cdf_reaches_one(self, touches):
        t = LocalityTracker()
        for k in touches:
            t.record(k)
        cdf = t.cdf()
        assert cdf[-1][1] == pytest.approx(1.0)


class TestSimStats:
    def test_warmup_gating(self):
        s = SimStats()
        s.enabled = False
        s.add_instructions(100)
        s.add_compute(5.0)
        s.count_request(SSD_WRITE)
        s.record_amat(flash=100.0)
        assert s.instructions == 0
        assert s.compute_ns == 0
        assert s.request_counts[SSD_WRITE] == 0
        assert s.amat_accesses == 0

    def test_amat_breakdown_sums_to_amat(self):
        s = SimStats()
        s.record_amat(host_dram=70.0)
        s.record_amat(indexing=49.0, ssd_dram=95.0)
        bd = s.amat_breakdown()
        assert sum(bd.values()) == pytest.approx(s.amat_ns)

    def test_boundedness_fractions_sum_to_one(self):
        s = SimStats()
        s.add_compute(30.0)
        s.add_memory_stall(60.0)
        s.add_context_switch(10.0)
        bd = s.boundedness()
        assert sum(bd.values()) == pytest.approx(1.0)
        assert bd["memory"] == pytest.approx(0.6)

    def test_request_breakdown_normalized(self):
        s = SimStats()
        for _ in range(3):
            s.count_request(SSD_READ_HIT)
        s.count_request(HOST_DRAM)
        bd = s.request_breakdown()
        assert sum(bd.values()) == pytest.approx(1.0)
        assert bd[SSD_READ_HIT] == pytest.approx(0.75)
        assert set(bd) == set(REQUEST_CLASSES)

    def test_unrecord_reverses_access(self):
        s = SimStats()
        s.count_request(SSD_READ_MISS)
        s.record_amat(indexing=72.0, flash=3000.0, ssd_dram=95.0)
        s.unrecord_access(
            SSD_READ_MISS, {"indexing": 72.0, "flash": 3000.0, "ssd_dram": 95.0}
        )
        assert s.amat_accesses == 0
        assert s.request_counts[SSD_READ_MISS] == 0
        assert s.amat_flash_ns == pytest.approx(0.0)

    def test_write_amplification(self):
        s = SimStats()
        s.host_lines_written = 64  # one page worth of lines
        s.flash_page_writes = 4
        assert s.write_amplification == pytest.approx(4.0)

    def test_throughput_requires_time(self):
        s = SimStats()
        s.instructions = 100
        assert s.throughput_ipns == 0.0
        s.start_ns, s.end_ns = 0.0, 50.0
        assert s.throughput_ipns == pytest.approx(2.0)

    def test_summary_keys(self):
        s = SimStats()
        summary = s.summary()
        for key in ("execution_ns", "amat_ns", "write_amplification",
                    "memory_bound_frac", "flash_page_writes"):
            assert key in summary


class TestSimStatsMerge:
    def test_scalars_sum_and_window_unions(self):
        a, b = SimStats(), SimStats()
        a.add_instructions(100)
        b.add_instructions(50)
        a.count_request(SSD_READ_HIT)
        b.count_request(SSD_READ_HIT)
        b.count_request(HOST_DRAM)
        a.record_amat(flash=3000.0)
        b.record_amat(host_dram=70.0)
        a.start_ns, a.end_ns = 100.0, 900.0
        b.start_ns, b.end_ns = 50.0, 500.0
        a.merge(b)
        assert a.instructions == 150
        assert a.request_counts[SSD_READ_HIT] == 2
        assert a.request_counts[HOST_DRAM] == 1
        assert a.amat_accesses == 2
        assert a.amat_flash_ns == pytest.approx(3000.0)
        assert a.amat_host_dram_ns == pytest.approx(70.0)
        assert (a.start_ns, a.end_ns) == (50.0, 900.0)

    def test_histograms_and_locality_merge(self):
        a, b = SimStats(), SimStats()
        a.record_offchip(100.0)
        b.record_offchip(50_000.0)
        a.read_locality.record(4)
        b.read_locality.record(60)
        a.merge(b)
        assert a.offchip_latency.count == 2
        assert a.offchip_latency.count_above(20_000.0) == 1
        assert a.read_locality.count == 2


class TestTenantConservation:
    """Summing the per-tenant SimStats of a colocated run reproduces the
    aggregate host-side view exactly -- per-tenant attribution neither
    drops nor double-counts (docs/QOS.md).

    Holds without context-switch squashes: Base-CSSD with at most as
    many threads as cores never reverses an access.
    """

    TAB1 = ("bfs-dense", "bc", "radix", "srad", "ycsb", "tpcc", "dlrm")

    @pytest.mark.parametrize("workload", TAB1)
    def test_tab1_mix_conserves(self, workload):
        from repro.experiments.colocation import run_colocation
        from repro.scenarios.colocate import Tenant

        tenants = [
            Tenant(name="t0", scenario=workload, threads=2, seed=11),
            Tenant(name="t1", scenario="log-ingest", threads=2, seed=12),
        ]
        system = run_colocation(tenants, variant="Base-CSSD",
                                records_per_thread=60)
        merged = SimStats()
        for stats in system.tenant_stats:
            merged.merge(stats)
        aggregate = system.stats
        assert merged.request_counts == aggregate.request_counts
        assert merged.amat_accesses == aggregate.amat_accesses
        for key in ("amat_host_dram_ns", "amat_protocol_ns",
                    "amat_indexing_ns", "amat_ssd_dram_ns", "amat_flash_ns"):
            assert getattr(merged, key) == pytest.approx(
                getattr(aggregate, key))
        assert merged.offchip_latency.count == aggregate.offchip_latency.count
        assert merged.offchip_latency.cdf() == aggregate.offchip_latency.cdf()
        assert merged.offchip_latency.mean == pytest.approx(
            aggregate.offchip_latency.mean)
