"""Tests for the context-switch trigger policy (Algorithm 1)."""

import pytest

from repro.config import FLASH_TIMINGS, FlashGeometry, SSDConfig
from repro.core.trigger import ContextSwitchTrigger
from repro.sim.engine import Engine
from repro.sim.stats import SimStats
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import PageFTL
from repro.ssd.gc import GarbageCollector

ULL = FLASH_TIMINGS["ULL"]


def build(threshold_ns=2000.0, enabled=True):
    geometry = FlashGeometry(
        channels=2, chips_per_channel=1, dies_per_chip=2, planes_per_die=1,
        blocks_per_plane=8, pages_per_block=4,
    )
    config = SSDConfig(geometry=geometry, dram_bytes=64 * 1024,
                       write_log_bytes=8 * 1024)
    engine = Engine()
    stats = SimStats()
    ftl = PageFTL(geometry, seed=0)
    flash = FlashArray(geometry, ULL, engine, stats)
    gc = GarbageCollector(config, ftl, flash, engine, stats)
    trigger = ContextSwitchTrigger(threshold_ns, flash, gc, enabled=enabled)
    return trigger, flash, gc, ftl, engine


def test_algorithm1_formula_exact():
    """Lines 5-6 of Algorithm 1, verbatim."""
    est = ContextSwitchTrigger.estimate_from_counters(ULL, 2, 1, 1)
    assert est == pytest.approx(ULL.read_ns * 3 + ULL.program_ns + ULL.erase_ns)


def test_triggers_when_estimate_exceeds_threshold():
    """The paper's default: flash read (3 us) > threshold (2 us), so even
    an idle channel's read triggers a switch."""
    trigger, flash, gc, ftl, _ = build(threshold_ns=2000.0)
    decision = trigger.should_context_switch(0)
    assert decision.trigger
    assert decision.estimated_ns >= ULL.read_ns


def test_no_trigger_with_high_threshold():
    trigger, flash, gc, ftl, _ = build(threshold_ns=80_000.0)
    decision = trigger.should_context_switch(0)
    assert not decision.trigger


def test_trigger_scales_with_queue_depth():
    trigger, flash, gc, ftl, _ = build(threshold_ns=50_000.0)
    channel = flash.channels[0]
    for _ in range(40):
        channel.submit_read(0.0)
    decision = trigger.should_context_switch(0)
    assert decision.trigger


def test_gc_active_triggers_immediately():
    """§III-A: "If a request is blocked by an ongoing garbage collection,
    SkyByte will immediately trigger a context switch"."""
    trigger, flash, gc, ftl, engine = build(threshold_ns=1e12)
    for i in range(4):
        ftl.write(i, channel=0)
    for i in range(4):
        ftl.write(i, channel=0)
    gc.collect(0, 0.0)
    assert gc.is_active(0)
    decision = trigger.should_context_switch(0)
    assert decision.trigger


def test_disabled_never_triggers():
    trigger, flash, gc, ftl, _ = build(enabled=False)
    decision = trigger.should_context_switch(0)
    assert not decision.trigger
    assert decision.estimated_ns > 0  # estimate still computed


def test_channel_selection_by_ppa():
    trigger, flash, gc, ftl, _ = build(threshold_ns=50_000.0)
    # Load only channel 1's queue.
    busy_ppa = flash.geometry.pages_per_channel  # first page of channel 1
    for _ in range(40):
        flash.channels[1].submit_read(0.0)
    assert not trigger.should_context_switch(0).trigger
    assert trigger.should_context_switch(busy_ppa).trigger
