"""Tests for the ResultCache storage layer.

Exercises the index file, size caps with LRU eviction, exact hit/miss/
evict accounting, prune, legacy-entry adoption, index-corruption
recovery, and multi-process writers sharing one cache directory.
"""

import json
import multiprocessing

from repro.config import SimConfig
from repro.experiments.orchestrator import ResultCache
from repro.experiments.runner import RunResult
from repro.sim.stats import SimStats


def fake_result(workload: str = "bc") -> RunResult:
    """A minimal, cheap RunResult (no simulation) for storage tests."""
    return RunResult(workload=workload, variant="Base-CSSD", threads=8,
                     stats=SimStats(), config=SimConfig())


def entry_size(tmp_path) -> int:
    probe = ResultCache(tmp_path / "probe")
    probe.put("probe", fake_result())
    return probe.size_bytes()


class TestBasics:
    def test_round_trip_and_counters(self, tmp_path):
        store = ResultCache(tmp_path)
        assert store.get("missing") is None
        store.put("k1", fake_result())
        hit = store.get("k1")
        assert hit is not None
        assert hit.workload == "bc"
        assert (store.hits, store.misses) == (1, 1)

    def test_index_file_is_not_an_entry(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("k1", fake_result())
        assert (tmp_path / ResultCache.INDEX_NAME).is_file()
        assert [p.stem for p in store.entries()] == ["k1"]
        assert store.stats()["entries"] == 1

    def test_max_bytes_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "4096")
        assert ResultCache(tmp_path).max_bytes == 4096
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "junk")
        assert ResultCache(tmp_path).max_bytes == 0
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
        assert ResultCache(tmp_path).max_bytes == 0
        assert ResultCache(tmp_path, max_bytes=123).max_bytes == 123


class TestEviction:
    def test_cap_evicts_oldest_first(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c", max_bytes=3 * unit + unit // 2)
        for i in range(5):
            store.put(f"k{i}", fake_result())
        assert store.evictions == 2
        assert {p.stem for p in store.entries()} == {"k2", "k3", "k4"}
        assert store.size_bytes() <= store.max_bytes
        stats = store.stats()
        assert stats["puts"] == 5
        assert stats["evictions"] == 2
        assert stats["entries"] == 3

    def test_get_refreshes_lru_order(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c", max_bytes=3 * unit + unit // 2)
        for key in ("k0", "k1", "k2"):
            store.put(key, fake_result())
        assert store.get("k0") is not None  # touch: k0 is now most recent
        store.put("k3", fake_result())
        assert {p.stem for p in store.entries()} == {"k0", "k2", "k3"}
        assert store.evictions == 1

    def test_fresh_key_never_self_evicts(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c", max_bytes=unit // 2)
        store.put("k0", fake_result())
        assert [p.stem for p in store.entries()] == ["k0"]
        assert store.evictions == 0
        store.put("k1", fake_result())  # now k0 must go
        assert [p.stem for p in store.entries()] == ["k1"]
        assert store.evictions == 1

    def test_evicted_entry_is_a_miss_not_corruption(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c", max_bytes=unit)
        store.put("k0", fake_result())
        store.put("k1", fake_result())
        assert store.get("k0") is None
        assert store.get("k1") is not None


class TestPrune:
    def test_prune_to_explicit_cap(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c")  # unbounded
        for i in range(4):
            store.put(f"k{i}", fake_result())
        removed = store.prune(2 * unit)
        assert removed == 2
        assert {p.stem for p in store.entries()} == {"k2", "k3"}
        assert store.evictions == 2

    def test_prune_defaults_to_configured_cap(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c")
        for i in range(3):
            store.put(f"k{i}", fake_result())
        assert store.prune() == 0  # unbounded: nothing to do
        capped = ResultCache(tmp_path / "c", max_bytes=unit)
        assert capped.prune() == 2
        assert len(capped.entries()) == 1

    def test_clear_resets_index_and_stats(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("k0", fake_result())
        store.put("k1", fake_result())
        assert store.clear() == 2
        stats = store.stats()
        assert stats["entries"] == 0
        assert stats["puts"] == 0
        assert store.size_bytes() == 0


class TestResilience:
    def test_corrupt_index_recovers(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("k0", fake_result())
        store.put("k1", fake_result())
        (tmp_path / ResultCache.INDEX_NAME).write_text("{not json")
        assert store.stats()["entries"] == 2  # rebuilt from data files
        assert store.get("k0") is not None

    def test_adopts_legacy_unindexed_entries(self, tmp_path):
        """Data files written before the index existed are adopted and
        are first in line for eviction (least recently used)."""
        legacy = tmp_path / "legacykey.json"
        legacy.write_text(json.dumps(fake_result().to_dict()))
        store = ResultCache(tmp_path)
        assert store.stats()["entries"] == 1
        store.put("fresh", fake_result())
        store.prune(store.size_bytes() - 1)
        assert [p.stem for p in store.entries()] == ["fresh"]

    def test_index_dropped_when_file_vanishes(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("k0", fake_result())
        store.path_for("k0").unlink()
        assert store.stats()["entries"] == 0


def _hammer(root, worker_id, n, max_bytes):
    store = ResultCache(root, max_bytes=max_bytes)
    result = fake_result()
    for i in range(n):
        store.put(f"w{worker_id}k{i:03d}", result)
        store.get(f"w{worker_id}k{i:03d}")
        store.get(f"w{(worker_id + 1) % 4}k{i:03d}")


def _run_hammers(root, max_bytes, workers=4, n=20):
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_hammer, args=(root, w, n, max_bytes))
        for w in range(workers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    return workers * n


class TestConcurrency:
    def test_concurrent_writers_exact_accounting(self, tmp_path):
        """Unbounded cache: no update may be lost under contention."""
        puts = _run_hammers(tmp_path, max_bytes=0)
        store = ResultCache(tmp_path)
        stats = store.stats()
        # Exact counters prove index updates were never lost: every put
        # registered, every get resolved to exactly one hit or miss.
        assert stats["puts"] == puts
        assert stats["entries"] == puts
        assert stats["evictions"] == 0
        assert stats["hits"] + stats["misses"] == 2 * puts
        assert stats["hits"] >= puts  # each writer re-reads its own key

    def test_concurrent_writers_capped_never_corrupt(self, tmp_path):
        unit = entry_size(tmp_path / "probe-dir")
        cap = 5 * unit
        _run_hammers(tmp_path / "shared", max_bytes=cap)
        with open(tmp_path / "shared" / ResultCache.INDEX_NAME) as fh:
            index = json.load(fh)  # must parse: writers never corrupt it
        store = ResultCache(tmp_path / "shared", max_bytes=cap)
        stats = store.stats()
        assert stats["size_bytes"] <= cap
        assert stats["puts"] == 80
        # Every surviving index entry must be a readable result.
        for key in index["entries"]:
            assert store.get(key) is not None
