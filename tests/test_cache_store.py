"""Tests for the ResultCache storage layer.

Exercises the index file, size caps with LRU eviction, exact hit/miss/
evict accounting, prune, legacy-entry adoption, index-corruption
recovery, and multi-process writers sharing one cache directory.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.config import SimConfig
from repro.experiments import orchestrator as orchestrator_mod
from repro.experiments.orchestrator import ResultCache
from repro.experiments.runner import RunResult
from repro.sim.stats import SimStats


def fake_result(workload: str = "bc") -> RunResult:
    """A minimal, cheap RunResult (no simulation) for storage tests."""
    return RunResult(workload=workload, variant="Base-CSSD", threads=8,
                     stats=SimStats(), config=SimConfig())


def entry_size(tmp_path) -> int:
    probe = ResultCache(tmp_path / "probe")
    probe.put("probe", fake_result())
    return probe.size_bytes()


class TestBasics:
    def test_round_trip_and_counters(self, tmp_path):
        store = ResultCache(tmp_path)
        assert store.get("missing") is None
        store.put("k1", fake_result())
        hit = store.get("k1")
        assert hit is not None
        assert hit.workload == "bc"
        assert (store.hits, store.misses) == (1, 1)

    def test_index_file_is_not_an_entry(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("k1", fake_result())
        assert (tmp_path / ResultCache.INDEX_NAME).is_file()
        assert [p.stem for p in store.entries()] == ["k1"]
        assert store.stats()["entries"] == 1

    def test_max_bytes_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "4096")
        assert ResultCache(tmp_path).max_bytes == 4096
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "junk")
        assert ResultCache(tmp_path).max_bytes == 0
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
        assert ResultCache(tmp_path).max_bytes == 0
        assert ResultCache(tmp_path, max_bytes=123).max_bytes == 123


class TestEviction:
    def test_cap_evicts_oldest_first(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c", max_bytes=3 * unit + unit // 2)
        for i in range(5):
            store.put(f"k{i}", fake_result())
        assert store.evictions == 2
        assert {p.stem for p in store.entries()} == {"k2", "k3", "k4"}
        assert store.size_bytes() <= store.max_bytes
        stats = store.stats()
        assert stats["puts"] == 5
        assert stats["evictions"] == 2
        assert stats["entries"] == 3

    def test_get_refreshes_lru_order(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c", max_bytes=3 * unit + unit // 2)
        for key in ("k0", "k1", "k2"):
            store.put(key, fake_result())
        assert store.get("k0") is not None  # touch: k0 is now most recent
        store.put("k3", fake_result())
        assert {p.stem for p in store.entries()} == {"k0", "k2", "k3"}
        assert store.evictions == 1

    def test_fresh_key_never_self_evicts(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c", max_bytes=unit // 2)
        store.put("k0", fake_result())
        assert [p.stem for p in store.entries()] == ["k0"]
        assert store.evictions == 0
        store.put("k1", fake_result())  # now k0 must go
        assert [p.stem for p in store.entries()] == ["k1"]
        assert store.evictions == 1

    def test_evicted_entry_is_a_miss_not_corruption(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c", max_bytes=unit)
        store.put("k0", fake_result())
        store.put("k1", fake_result())
        assert store.get("k0") is None
        assert store.get("k1") is not None


class TestPrune:
    def test_prune_to_explicit_cap(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c")  # unbounded
        for i in range(4):
            store.put(f"k{i}", fake_result())
        removed = store.prune(2 * unit)
        assert removed == 2
        assert {p.stem for p in store.entries()} == {"k2", "k3"}
        assert store.evictions == 2

    def test_prune_defaults_to_configured_cap(self, tmp_path):
        unit = entry_size(tmp_path)
        store = ResultCache(tmp_path / "c")
        for i in range(3):
            store.put(f"k{i}", fake_result())
        assert store.prune() == 0  # unbounded: nothing to do
        capped = ResultCache(tmp_path / "c", max_bytes=unit)
        assert capped.prune() == 2
        assert len(capped.entries()) == 1

    def test_clear_resets_index_and_stats(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("k0", fake_result())
        store.put("k1", fake_result())
        assert store.clear() == 2
        stats = store.stats()
        assert stats["entries"] == 0
        assert stats["puts"] == 0
        assert store.size_bytes() == 0


class TestResilience:
    def test_corrupt_index_recovers(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("k0", fake_result())
        store.put("k1", fake_result())
        (tmp_path / ResultCache.INDEX_NAME).write_text("{not json")
        assert store.stats()["entries"] == 2  # rebuilt from data files
        assert store.get("k0") is not None

    def test_adopts_legacy_unindexed_entries(self, tmp_path):
        """Data files written before the index existed are adopted and
        are first in line for eviction (least recently used)."""
        legacy = tmp_path / "legacykey.json"
        legacy.write_text(json.dumps(fake_result().to_dict()))
        store = ResultCache(tmp_path)
        assert store.stats()["entries"] == 1
        store.put("fresh", fake_result())
        store.prune(store.size_bytes() - 1)
        assert [p.stem for p in store.entries()] == ["fresh"]

    def test_index_dropped_when_file_vanishes(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("k0", fake_result())
        store.path_for("k0").unlink()
        assert store.stats()["entries"] == 0


def _hammer(root, worker_id, n, max_bytes):
    store = ResultCache(root, max_bytes=max_bytes)
    result = fake_result()
    for i in range(n):
        store.put(f"w{worker_id}k{i:03d}", result)
        store.get(f"w{worker_id}k{i:03d}")
        store.get(f"w{(worker_id + 1) % 4}k{i:03d}")


def _run_hammers(root, max_bytes, workers=4, n=20):
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_hammer, args=(root, w, n, max_bytes))
        for w in range(workers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    return workers * n


class TestConcurrency:
    def test_concurrent_writers_exact_accounting(self, tmp_path):
        """Unbounded cache: no update may be lost under contention."""
        puts = _run_hammers(tmp_path, max_bytes=0)
        store = ResultCache(tmp_path)
        stats = store.stats()
        # Exact counters prove index updates were never lost: every put
        # registered, every get resolved to exactly one hit or miss.
        assert stats["puts"] == puts
        assert stats["entries"] == puts
        assert stats["evictions"] == 0
        assert stats["hits"] + stats["misses"] == 2 * puts
        assert stats["hits"] >= puts  # each writer re-reads its own key

    def test_concurrent_writers_capped_never_corrupt(self, tmp_path):
        unit = entry_size(tmp_path / "probe-dir")
        cap = 5 * unit
        _run_hammers(tmp_path / "shared", max_bytes=cap)
        with open(tmp_path / "shared" / ResultCache.INDEX_NAME) as fh:
            index = json.load(fh)  # must parse: writers never corrupt it
        store = ResultCache(tmp_path / "shared", max_bytes=cap)
        stats = store.stats()
        assert stats["size_bytes"] <= cap
        assert stats["puts"] == 80
        # Every surviving index entry must be a readable result.
        for key in index["entries"]:
            assert store.get(key) is not None


class TestIndexSalvage:
    def test_version_mismatch_preserves_stats_and_entries(self, tmp_path):
        """A foreign-version index is salvaged, not zeroed: lifetime
        counters and entries carry over into the fresh format."""
        store = ResultCache(tmp_path)
        store.put("k0", fake_result())
        store.put("k1", fake_result())
        assert store.get("k0") is not None   # hits = 1
        assert store.get("gone") is None     # misses = 1
        index_path = tmp_path / ResultCache.INDEX_NAME
        index = json.loads(index_path.read_text())
        index["version"] = 999
        index_path.write_text(json.dumps(index))

        fresh = ResultCache(tmp_path)
        stats = fresh.stats()
        assert stats["entries"] == 2
        assert stats["puts"] == 2
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert fresh.get("k1") is not None

    def test_mangled_entries_reconciled_from_disk(self, tmp_path):
        """Damaged entry records are dropped but the blobs they pointed
        at are re-adopted from the directory -- nothing is orphaned."""
        store = ResultCache(tmp_path)
        store.put("k0", fake_result())
        store.put("k1", fake_result())
        index_path = tmp_path / ResultCache.INDEX_NAME
        index = json.loads(index_path.read_text())
        index["entries"]["k0"] = "garbage"
        index_path.write_text(json.dumps(index))

        stats = ResultCache(tmp_path).stats()
        assert stats["entries"] == 2           # k0 came back via reconcile
        assert stats["puts"] == 2              # counters survived

    def test_salvaged_blobs_stay_evictable(self, tmp_path):
        """After index damage every blob must stay visible to the LRU --
        the old reset-to-fresh behaviour hid them from eviction."""
        unit = entry_size(tmp_path)
        root = tmp_path / "c"
        store = ResultCache(root, max_bytes=10 * unit)
        for i in range(3):
            store.put(f"k{i}", fake_result())
        (root / ResultCache.INDEX_NAME).write_text("{not json")
        capped = ResultCache(root, max_bytes=unit + unit // 2)
        capped.put("fresh", fake_result())
        assert capped.size_bytes() <= capped.max_bytes
        assert "fresh" in {p.stem for p in capped.entries()}


class TestLockfileFallback:
    @pytest.fixture
    def no_fcntl(self, monkeypatch):
        """Simulate a host without fcntl (e.g. Windows)."""
        monkeypatch.setattr(orchestrator_mod, "fcntl", None)

    def test_lockfile_created_and_removed(self, tmp_path, no_fcntl):
        store = ResultCache(tmp_path)
        lockfile = tmp_path / ResultCache.LOCKFILE_NAME
        with store._lock():
            assert lockfile.is_file()
            assert lockfile.read_text() == str(multiprocessing.current_process().pid)
        assert not lockfile.exists()

    def test_lockfile_excludes_second_acquirer(self, tmp_path, no_fcntl):
        store = ResultCache(tmp_path)
        order = []
        entered = threading.Event()
        with store._lock():
            def contender():
                entered.set()
                with store._lock():
                    order.append("second")
            thread = threading.Thread(target=contender, daemon=True)
            thread.start()
            assert entered.wait(timeout=5)
            time.sleep(0.3)  # give the contender time to (wrongly) enter
            order.append("first")
        thread.join(timeout=10)
        assert order == ["first", "second"]

    def test_stale_lockfile_is_broken(self, tmp_path, no_fcntl, monkeypatch):
        monkeypatch.setattr(ResultCache, "LOCK_STALE_SECONDS", 0.2)
        store = ResultCache(tmp_path)
        lockfile = tmp_path / ResultCache.LOCKFILE_NAME
        tmp_path.mkdir(exist_ok=True)
        lockfile.write_text("99999")  # a crashed holder's leftover
        old = time.time() - 5.0
        os.utime(lockfile, (old, old))
        start = time.monotonic()
        store.put("k0", fake_result())  # must break the stale lock
        assert time.monotonic() - start < 5.0
        assert store.get("k0") is not None
        assert not lockfile.exists()

    def test_concurrent_writers_exact_accounting_without_fcntl(
        self, tmp_path, no_fcntl
    ):
        """The fallback lock provides real mutual exclusion: the exact
        counter invariants hold across forked writers (which inherit
        the fcntl=None patch).  The silent no-op it replaced failed
        this by losing index updates."""
        puts = _run_hammers(tmp_path, max_bytes=0)
        stats = ResultCache(tmp_path).stats()
        assert stats["puts"] == puts
        assert stats["entries"] == puts
        assert stats["hits"] + stats["misses"] == 2 * puts
