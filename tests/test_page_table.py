"""Tests for the host page table."""

import pytest

from repro.host.page_table import Location, PageTable


def test_default_location_is_cxl():
    pt = PageTable()
    assert not pt.is_promoted(5)
    assert pt.entry(5).location == Location.CXL


def test_promote_assigns_frame():
    pt = PageTable()
    entry = pt.promote(5)
    assert entry.location == Location.HOST
    assert entry.host_frame is not None
    assert pt.is_promoted(5)
    assert pt.promoted_count == 1


def test_double_promotion_rejected():
    pt = PageTable()
    pt.promote(5)
    with pytest.raises(ValueError):
        pt.promote(5)


def test_demote_returns_dirty_mask():
    pt = PageTable()
    pt.promote(5, carried_dirty_mask=0b100)
    pt.record_host_access(5, 0, True, 10.0)
    entry, dirty = pt.demote(5)
    assert dirty == 0b101
    assert not pt.is_promoted(5)
    assert pt.promoted_count == 0
    assert entry.dirty_mask == 0


def test_demote_unpromoted_rejected():
    pt = PageTable()
    with pytest.raises(ValueError):
        pt.demote(7)


def test_carried_dirty_mask_preserved():
    """Dirty-versus-flash state dropped by the SSD must survive in the
    host copy so no write is ever lost across a promotion."""
    pt = PageTable()
    pt.promote(3, carried_dirty_mask=0b1010)
    _, dirty = pt.demote(3)
    assert dirty == 0b1010


def test_coldest_promoted_by_last_access():
    pt = PageTable()
    for vpn in (1, 2, 3):
        pt.promote(vpn)
    pt.record_host_access(1, 0, False, 300.0)
    pt.record_host_access(2, 0, False, 100.0)
    pt.record_host_access(3, 0, False, 200.0)
    assert pt.coldest_promoted() == 2


def test_coldest_none_when_nothing_promoted():
    pt = PageTable()
    assert pt.coldest_promoted() is None


def test_promoted_pages_iteration():
    pt = PageTable()
    pt.promote(1)
    pt.promote(9)
    pt.promote(4)
    pt.demote(9)
    assert sorted(pt.promoted_pages()) == [1, 4]


def test_frames_unique():
    pt = PageTable()
    frames = {pt.promote(v).host_frame for v in range(10)}
    assert len(frames) == 10
