"""Tests for the interval core model and coordinated context switching,
exercised through small end-to-end systems."""

import pytest

from repro.config import scaled_config
from repro.sim.system import System
from repro.variants import get_variant


def run_system(variant, traces, threads=None, mlp=8, **cfg_kwargs):
    config = scaled_config(scale=512, threads=threads or len(traces))
    for key, value in cfg_kwargs.items():
        config = config.replace(**{key: value})
    system = System(config, traces, get_variant(variant), workload_mlp=mlp)
    stats = system.run()
    return system, stats


def uniform_trace(n, pages, gap=50, write_every=0, stride=1):
    trace = []
    for i in range(n):
        is_write = write_every > 0 and i % write_every == 0
        trace.append((gap, is_write, ((i * stride) % pages) * 4096))
    return trace


class TestDramOnly:
    def test_executes_all_instructions(self):
        traces = [uniform_trace(100, 10)]
        _, stats = run_system("DRAM-Only", traces)
        expected = sum(r[0] for r in traces[0]) + 0  # gaps (ops not counted)
        assert stats.instructions == expected

    def test_memory_stall_positive(self):
        _, stats = run_system("DRAM-Only", [uniform_trace(100, 10)])
        assert stats.memory_stall_ns > 0
        assert stats.compute_ns > 0

    def test_no_flash_activity(self):
        _, stats = run_system("DRAM-Only", [uniform_trace(50, 4)])
        assert stats.flash_page_reads == 0
        assert stats.flash_page_writes == 0

    def test_all_requests_host_class(self):
        _, stats = run_system("DRAM-Only", [uniform_trace(50, 4)])
        assert stats.request_breakdown()["H-R/W"] == pytest.approx(1.0)


class TestContextSwitching:
    def test_no_switches_without_extra_threads(self):
        """With threads == cores and a full run queue, the exception
        handler finds nobody else to run."""
        traces = [uniform_trace(60, 200) for _ in range(8)]
        _, stats = run_system("SkyByte-C", traces)
        # switches possible only via quantum preemption; with short traces
        # there should be essentially none
        assert stats.context_switches <= 8

    def test_switches_with_oversubscription(self):
        traces = [uniform_trace(60, 400) for _ in range(16)]
        _, stats = run_system("SkyByte-C", traces, threads=16,
                              warmup_fraction=0.0)
        assert stats.context_switches > 0
        assert stats.context_switch_ns > 0

    def test_switch_cost_is_kernel_cost(self):
        traces = [uniform_trace(60, 400) for _ in range(16)]
        system, stats = run_system("SkyByte-C", traces, threads=16)
        assert system.switch_cost_ns == system.config.os.context_switch_ns
        if stats.context_switches:
            per_switch = stats.context_switch_ns / stats.context_switches
            assert per_switch == pytest.approx(system.config.os.context_switch_ns)

    def test_base_cssd_never_delay_switches(self):
        traces = [uniform_trace(60, 400) for _ in range(16)]
        _, stats_base = run_system("Base-CSSD", traces, threads=16,
                                   warmup_fraction=0.0)
        _, stats_c = run_system("SkyByte-C", traces, threads=16,
                                warmup_fraction=0.0)
        assert stats_c.context_switches > stats_base.context_switches

    def test_all_threads_complete_under_switching(self):
        traces = [uniform_trace(40, 300) for _ in range(12)]
        system, stats = run_system("SkyByte-C", traces, threads=12)
        assert all(t.done for t in system.threads)


class TestMLPModel:
    def test_low_mlp_serialises_misses(self):
        """Pointer-chasing (MLP=1) exposes more stall than streaming
        (MLP=8) on the same trace."""
        traces = [uniform_trace(64, 500, gap=10)]
        _, serial = run_system("Base-CSSD", traces, mlp=1)
        _, parallel = run_system("Base-CSSD", traces, mlp=8)
        assert serial.execution_ns > parallel.execution_ns

    def test_mlp_capped_by_l1_mshrs(self):
        traces = [uniform_trace(16, 100)]
        system, _ = run_system("Base-CSSD", traces, mlp=64)
        assert system.cores[0]._mlp <= system.config.cpu.l1_mshrs


class TestAccounting:
    def test_offchip_latencies_recorded(self):
        _, stats = run_system("Base-CSSD", [uniform_trace(60, 30)])
        assert stats.offchip_latency.count > 0

    def test_boundedness_sums_to_one(self):
        _, stats = run_system("Base-CSSD", [uniform_trace(60, 30)])
        assert sum(stats.boundedness().values()) == pytest.approx(1.0)

    def test_execution_time_positive_and_finite(self):
        _, stats = run_system("Base-CSSD", [uniform_trace(60, 30)])
        assert 0 < stats.execution_ns < 1e12
