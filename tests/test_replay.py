"""Tests for detailed-mode trace filtering (raw refs -> LLC misses)."""

import pytest

from repro.config import CPUConfig
from repro.cpu.replay import filter_threads, filter_trace


def repeated_trace(lines, repeats, gap=3):
    trace = []
    for _ in range(repeats):
        for line in lines:
            trace.append((gap, False, line * 64))
    return trace


def test_first_touch_misses_then_hits():
    trace = repeated_trace(range(10), repeats=3)
    result = filter_trace(trace)
    assert len(result.miss_trace) == 10  # compulsory misses only
    assert result.hits["L1"] == 20


def test_gaps_fold_into_next_miss():
    # hit, hit, miss: the miss's gap carries all three gaps.
    trace = [(5, False, 0), (7, False, 0), (9, False, 64 * 1000)]
    result = filter_trace(trace)
    # First access misses (gap 5), then one hit, then second miss with
    # folded gap 7+9.
    assert result.miss_trace[0] == (5, False, 0)
    assert result.miss_trace[1] == (16, False, 64 * 1000)


def test_miss_rate_and_mpki():
    trace = repeated_trace(range(4), repeats=5, gap=10)
    result = filter_trace(trace)
    assert result.miss_rate == pytest.approx(4 / 20)
    assert result.llc_mpki > 0


def test_capacity_misses_beyond_l3():
    # Stream far more lines than the 16MB L3 holds.
    lines = 300_000
    trace = [(1, False, i * 64) for i in range(lines)]
    result = filter_trace(trace)
    assert len(result.miss_trace) == lines  # no reuse at all


def test_writes_propagate_dirty():
    trace = [(1, True, 0)]
    result = filter_trace(trace)
    assert result.miss_trace[0][1] is True


def test_shared_l3_across_threads():
    """The second thread reuses lines the first brought into the L3."""
    t0 = repeated_trace(range(50), repeats=1)
    t1 = repeated_trace(range(50), repeats=1)
    outputs, results = filter_threads([t0, t1], CPUConfig(cores=2))
    assert len(outputs[0]) == 50  # cold
    assert len(outputs[1]) == 0  # all L3 hits
    assert results[1].hits["L3"] == 50


def test_empty_trace():
    result = filter_trace([])
    assert result.miss_trace == []
    assert result.miss_rate == 0.0
